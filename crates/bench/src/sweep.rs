//! Parameter-sweep infrastructure: run the suite across configuration
//! variants and emit machine-readable series (CSV) for plotting.

use crate::{run_suite, SuiteRow};
use dmt_core::SystemConfig;
use std::fmt::Write as _;

/// One point of a sweep: a label (the x value) and the suite measured
/// under that configuration.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable x value (e.g. "16" for a buffer size).
    pub label: String,
    /// Per-benchmark measurements at this point.
    pub rows: Vec<SuiteRow>,
}

/// Runs the full suite once per configuration variant.
pub fn sweep<I, F>(values: I, seed: u64, mut configure: F) -> Vec<SweepPoint>
where
    I: IntoIterator,
    I::Item: std::fmt::Display,
    F: FnMut(&I::Item, &mut SystemConfig),
{
    values
        .into_iter()
        .map(|v| {
            let mut cfg = SystemConfig::default();
            configure(&v, &mut cfg);
            SweepPoint {
                label: v.to_string(),
                rows: run_suite(cfg, seed),
            }
        })
        .collect()
}

/// Renders a sweep as CSV: one line per (x, benchmark) with cycles and
/// energy for all three machines plus the derived ratios.
#[must_use]
pub fn to_csv(points: &[SweepPoint], x_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{x_name},benchmark,fermi_cycles,mt_cycles,dmt_cycles,\
         fermi_uj,mt_uj,dmt_uj,mt_speedup,dmt_speedup,mt_eff,dmt_eff"
    );
    for p in points {
        for r in &p.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                p.label,
                r.name,
                r.fermi.cycles(),
                r.mt.cycles(),
                r.dmt.cycles(),
                r.fermi.total_joules() * 1e6,
                r.mt.total_joules() * 1e6,
                r.dmt.total_joules() * 1e6,
                r.mt_speedup(),
                r.dmt_speedup(),
                r.mt_efficiency(),
                r.dmt_efficiency(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_a_row_per_point_and_benchmark() {
        let points = sweep([16u32], 1, |&tb, cfg| {
            cfg.fabric.token_buffer_entries = tb;
        });
        let csv = to_csv(&points, "token_buffer");
        assert_eq!(csv.lines().count(), 1 + 9, "header + nine benchmarks");
        assert!(csv.starts_with("token_buffer,benchmark,"));
        assert!(csv.contains("16,scan,"));
    }
}
