//! Parameter-sweep infrastructure: run the suite across configuration
//! variants and emit machine-readable series (CSV) for plotting.
//!
//! A sweep is flattened into one `dmt-runner` job grid — every
//! `(point, benchmark, arch)` triple is an independent job — so the
//! whole sweep parallelizes across the worker pool at once instead of
//! point by point. Aggregation is by job index: CSV output is identical
//! for any thread count.

use crate::{suite_jobs, RowOutcome, SuiteRun};
use dmt_core::SystemConfig;
use dmt_runner::{Cache, Progress};
use std::fmt::Write as _;

/// One point of a sweep: a label (the x value) and the suite measured
/// under that configuration. Rows may contain infeasible points (e.g. a
/// kernel whose |ΔTID| exceeds a swept window) — CSV emission skips
/// them, [`skipped`] reports them.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable x value (e.g. "16" for a buffer size).
    pub label: String,
    /// Per-benchmark outcomes at this point.
    pub rows: Vec<RowOutcome>,
}

/// Runs the full suite once per configuration variant, flattened across
/// the worker pool.
pub fn sweep<I, F>(values: I, seed: u64, mut configure: F, threads: usize) -> Vec<SweepPoint>
where
    I: IntoIterator,
    I::Item: std::fmt::Display,
    F: FnMut(&I::Item, &mut SystemConfig),
{
    sweep_with_progress(values, seed, &mut configure, threads, None)
}

/// [`sweep`] with an optional live progress ticker.
pub fn sweep_with_progress<I, F>(
    values: I,
    seed: u64,
    configure: &mut F,
    threads: usize,
    progress: Option<&Progress>,
) -> Vec<SweepPoint>
where
    I: IntoIterator,
    I::Item: std::fmt::Display,
    F: ?Sized + FnMut(&I::Item, &mut SystemConfig),
{
    sweep_run(values, seed, configure, threads, progress, None).1
}

/// Like [`sweep_with_progress`], but also returns the underlying pool
/// run, so callers can record the per-job JSON artifact. With a
/// [`Cache`], previously-completed points are served from disk and a
/// killed sweep resumes from the jobs it had finished.
pub fn sweep_run<I, F>(
    values: I,
    seed: u64,
    configure: &mut F,
    threads: usize,
    progress: Option<&Progress>,
    cache: Option<&Cache>,
) -> (SuiteRun, Vec<SweepPoint>)
where
    I: IntoIterator,
    I::Item: std::fmt::Display,
    F: ?Sized + FnMut(&I::Item, &mut SystemConfig),
{
    sweep_run_limited(values, seed, configure, threads, progress, cache, None)
}

/// [`sweep_run`] with an optional per-job simulated-cycle budget
/// (`--deadline-cycles`); timed-out points render like infeasible ones
/// (omitted from the CSV, reported by [`skipped`]).
#[allow(clippy::too_many_arguments)]
pub fn sweep_run_limited<I, F>(
    values: I,
    seed: u64,
    configure: &mut F,
    threads: usize,
    progress: Option<&Progress>,
    cache: Option<&Cache>,
    deadline_cycles: Option<u64>,
) -> (SuiteRun, Vec<SweepPoint>)
where
    I: IntoIterator,
    I::Item: std::fmt::Display,
    F: ?Sized + FnMut(&I::Item, &mut SystemConfig),
{
    let mut labels = Vec::new();
    let mut jobs = Vec::new();
    for v in values {
        let mut cfg = SystemConfig::default();
        configure(&v, &mut cfg);
        labels.push(v.to_string());
        jobs.extend(suite_jobs(cfg, seed, usize::MAX));
    }
    let per_point = if labels.is_empty() {
        0
    } else {
        jobs.len() / labels.len()
    };
    let run = crate::run_jobs_pooled_limited(jobs, seed, threads, progress, cache, deadline_cycles);
    let points = regroup(&run, &labels, per_point);
    (run, points)
}

fn regroup(run: &SuiteRun, labels: &[String], per_point: usize) -> Vec<SweepPoint> {
    labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            let lo = i * per_point;
            let hi = lo + per_point;
            SweepPoint {
                label: label.clone(),
                rows: RowOutcome::from_jobs(&run.jobs[lo..hi], &run.outcomes[lo..hi]),
            }
        })
        .collect()
}

/// Renders a sweep as CSV: one line per fully-feasible (x, benchmark)
/// pair with cycles and energy for all three machines plus the derived
/// ratios. Rows with an infeasible architecture are omitted (see
/// [`skipped`]).
#[must_use]
pub fn to_csv(points: &[SweepPoint], x_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{x_name},benchmark,fermi_cycles,mt_cycles,dmt_cycles,\
         fermi_uj,mt_uj,dmt_uj,mt_speedup,dmt_speedup,mt_eff,dmt_eff"
    );
    for p in points {
        for r in &p.rows {
            let (Some(fermi), Some(mt), Some(dmt)) =
                (r.fermi.metrics(), r.mt.metrics(), r.dmt.metrics())
            else {
                continue;
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                p.label,
                r.name,
                fermi.cycles(),
                mt.cycles(),
                dmt.cycles(),
                fermi.total_joules() * 1e6,
                mt.total_joules() * 1e6,
                dmt.total_joules() * 1e6,
                // All three metrics are bound above, so every ratio is
                // defined — compute them directly from the operands.
                fermi.cycles() as f64 / mt.cycles() as f64,
                fermi.cycles() as f64 / dmt.cycles() as f64,
                fermi.total_joules() / mt.total_joules(),
                fermi.total_joules() / dmt.total_joules(),
            );
        }
    }
    out
}

/// The points [`to_csv`] omitted: `(x label, benchmark, arch, error)`.
#[must_use]
pub fn skipped(points: &[SweepPoint]) -> Vec<(String, String, String, String)> {
    points
        .iter()
        .flat_map(|p| {
            p.rows.iter().flat_map(|r| {
                r.failures()
                    .into_iter()
                    .map(|(arch, err)| (p.label.clone(), r.name.clone(), arch.to_string(), err))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_a_row_per_point_and_benchmark() {
        let points = sweep(
            [16u32],
            1,
            |&tb, cfg| {
                cfg.fabric.token_buffer_entries = tb;
            },
            1,
        );
        let csv = to_csv(&points, "token_buffer");
        assert_eq!(csv.lines().count(), 1 + 9, "header + nine benchmarks");
        assert!(csv.starts_with("token_buffer,benchmark,"));
        assert!(csv.contains("16,scan,"));
        assert!(skipped(&points).is_empty());
    }

    #[test]
    fn infeasible_rows_are_skipped_and_reported() {
        // A 64-thread window breaks reduce's 128-wide log-tree.
        let points = sweep(
            [64u32],
            crate::SEED,
            |&w, cfg| {
                cfg.fabric.inflight_threads = w;
            },
            2,
        );
        let csv = to_csv(&points, "inflight_threads");
        assert!(!csv.contains(",reduce,"), "{csv}");
        let sk = skipped(&points);
        assert!(
            sk.iter().any(|(x, b, _, _)| x == "64" && b == "reduce"),
            "{sk:?}"
        );
    }
}
