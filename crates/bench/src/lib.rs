//! The experiment harness: runs the Table 3 suite on all three machines
//! and regenerates every table and figure of the paper's evaluation
//! (§5.2). One binary per artifact:
//!
//! | Binary | Artifact |
//! |---|---|
//! | `fig05_delta_cdf` | Fig 5 — CDF of ΔTID transmission distances |
//! | `fig11_speedup` | Fig 11 — speedup over the Fermi SM |
//! | `fig12_energy` | Fig 12 — energy efficiency over the Fermi SM |
//! | `table2_config` | Table 2 — system configuration |
//! | `table3_benchmarks` | Table 3 — benchmark inventory |
//! | `ablate_token_buffer` | §4.3 — token-buffer size vs cascades/spills |
//! | `ablate_inflight` | §3 — in-flight thread window sweep |
//! | `ablate_replication` | §3 — graph replication on/off |
//! | `ablate_window` | §3.2 — transmission-window sweep |
//!
//! Criterion benches under `benches/` wrap the same harness entry points.
//!
//! Every experiment binary accepts the shared runner flags (`--threads N`
//! / `DMT_THREADS`, `--json PATH`, `--progress`, `--smoke` where
//! supported): the grid of `(benchmark, arch, config, seed)` points is
//! expressed as `dmt-runner` jobs and executed on its shared-nothing
//! worker pool, with [`execute_job`] as the one bridge back into the
//! leaf [`run_one`]/[`try_run_one`] API. Aggregation is by job index, so
//! stdout and artifact contents are identical for any thread count.

pub mod sweep;

use dmt_core::common::RunLimits;
use dmt_core::{experiment, Arch, Machine, RunReport, SystemConfig};
use dmt_kernels::{suite, Benchmark};
use dmt_obs::Obs;
use dmt_runner::{Artifact, Cache, JobMetrics, JobOutcome, JobSpec, Json, Progress, RunnerArgs};
use std::time::Instant;

/// Seed used by every headline experiment (results are deterministic).
pub const SEED: u64 = 42;

/// Runs one benchmark on one architecture, validating the output against
/// the CPU reference.
///
/// # Panics
///
/// Panics when simulation or validation fails — experiments must not
/// silently report numbers from wrong results.
#[must_use]
pub fn run_one(bench: &dyn Benchmark, arch: Arch, cfg: SystemConfig, seed: u64) -> RunReport {
    try_run_one(bench, arch, cfg, seed)
        .unwrap_or_else(|e| panic!("{} on {arch}: {e}", bench.info().name))
}

/// Like [`run_one`], but surfaces simulation errors — e.g. a swept config
/// on which a kernel legitimately cannot compile — instead of panicking.
/// A *wrong result* still panics: experiments must never silently report
/// numbers from incorrect runs.
///
/// # Errors
///
/// Returns the compiler or machine error for infeasible configurations.
///
/// # Panics
///
/// Panics when the run completes but output validation fails.
pub fn try_run_one(
    bench: &dyn Benchmark,
    arch: Arch,
    cfg: SystemConfig,
    seed: u64,
) -> dmt_core::Result<RunReport> {
    try_run_one_observed(bench, arch, cfg, seed, &mut Obs::disabled())
}

/// [`try_run_one`] with an observation handle: the engine reports its
/// event stream into `obs` (see `dmt_obs`). Output validation is
/// unchanged — observed runs compute the same results.
///
/// # Errors
///
/// As [`try_run_one`].
///
/// # Panics
///
/// As [`try_run_one`].
pub fn try_run_one_observed(
    bench: &dyn Benchmark,
    arch: Arch,
    cfg: SystemConfig,
    seed: u64,
    obs: &mut Obs,
) -> dmt_core::Result<RunReport> {
    try_run_one_limited(bench, arch, cfg, seed, obs, &RunLimits::unlimited())
}

/// [`try_run_one_observed`] under cooperative run limits: the engines
/// check the simulated-cycle deadline and the cancellation token at
/// every cycle boundary and return `Error::TimedOut`/`Error::Cancelled`
/// instead of running to completion. Output validation only runs for
/// completed runs (a cut-short run has no result to validate).
///
/// # Errors
///
/// As [`try_run_one`], plus `TimedOut`/`Cancelled` from the limits.
///
/// # Panics
///
/// As [`try_run_one`].
pub fn try_run_one_limited(
    bench: &dyn Benchmark,
    arch: Arch,
    cfg: SystemConfig,
    seed: u64,
    obs: &mut Obs,
    limits: &RunLimits<'_>,
) -> dmt_core::Result<RunReport> {
    let kernel = match arch {
        Arch::DmtCgra => bench.dmt_kernel(),
        Arch::FermiSm | Arch::MtCgra => bench.shared_kernel(),
    };
    let report =
        Machine::new(arch, cfg).run_limited(&kernel, bench.workload(seed).launch(), obs, limits)?;
    bench
        .check(seed, &report.memory)
        .unwrap_or_else(|e| panic!("{} on {arch}: wrong result: {e}", bench.info().name));
    Ok(report)
}

/// A text bar for figure-style output (one `#` per 0.25×).
#[must_use]
pub fn bar(value: f64) -> String {
    "#".repeat((value * 4.0).round().max(0.0) as usize)
}

/// The leaf job executor: resolves the named benchmark from the Table 3
/// suite and runs the point through [`try_run_one`].
///
/// This is the only bridge between the `dmt-runner` orchestration layer
/// and the simulators; every worker calls it with nothing shared but the
/// spec, and it builds its own kernels, workload and `Machine` from
/// scratch (shared-nothing parallelism).
///
/// # Panics
///
/// Panics on an unknown benchmark name (a harness bug, not data) and on
/// validation failures (wrong results must never become numbers).
#[must_use]
pub fn execute_job(spec: &JobSpec) -> JobOutcome {
    execute_job_observed(spec, &mut Obs::disabled())
}

/// [`execute_job`] with an observation handle (see
/// [`try_run_one_observed`]).
///
/// # Panics
///
/// As [`execute_job`].
#[must_use]
pub fn execute_job_observed(spec: &JobSpec, obs: &mut Obs) -> JobOutcome {
    execute_job_inner(spec, obs, &RunLimits::unlimited())
}

/// The limit-aware leaf executor `ExecPlan::run_limited` expects: maps
/// `Error::TimedOut` to [`JobOutcome::TimedOut`] (permanent under this
/// budget), `Error::Cancelled` to [`JobOutcome::Failed`] (transient —
/// the same job may be resubmitted), and every other leaf error to
/// [`JobOutcome::Infeasible`] as before.
///
/// # Panics
///
/// As [`execute_job`].
#[must_use]
pub fn execute_job_limited(spec: &JobSpec, limits: &RunLimits<'_>) -> JobOutcome {
    execute_job_inner(spec, &mut Obs::disabled(), limits)
}

fn execute_job_inner(spec: &JobSpec, obs: &mut Obs, limits: &RunLimits<'_>) -> JobOutcome {
    let bench = suite::all()
        .into_iter()
        .find(|b| b.info().name == spec.bench)
        .unwrap_or_else(|| panic!("unknown benchmark {:?}", spec.bench));
    match try_run_one_limited(bench.as_ref(), spec.arch, spec.cfg, spec.seed, obs, limits) {
        Ok(report) => JobOutcome::completed(JobMetrics::from_report(&report)),
        Err(e @ dmt_core::Error::TimedOut { .. }) => JobOutcome::TimedOut(e.to_string()),
        Err(e @ dmt_core::Error::Cancelled { .. }) => JobOutcome::Failed(e.to_string()),
        Err(e) => JobOutcome::Infeasible(e.to_string()),
    }
}

/// The job grid for the first `take` Table 3 benchmarks on all three
/// machines: benchmark-major, architecture-minor (`Arch::ALL` order), so
/// consecutive triples form one suite row.
#[must_use]
pub fn suite_jobs(cfg: SystemConfig, seed: u64, take: usize) -> Vec<JobSpec> {
    suite::all()
        .into_iter()
        .take(take)
        .flat_map(|b| {
            let name = b.info().name;
            Arch::ALL.map(|arch| JobSpec::new(name, arch, cfg, seed))
        })
        .collect()
}

/// One suite row measured through the runner: per-architecture outcomes,
/// any of which may be infeasible at a swept configuration point.
#[derive(Debug, Clone, PartialEq)]
pub struct RowOutcome {
    /// Benchmark name (Table 3).
    pub name: String,
    /// Fermi SM outcome.
    pub fermi: JobOutcome,
    /// MT-CGRA outcome.
    pub mt: JobOutcome,
    /// dMT-CGRA outcome.
    pub dmt: JobOutcome,
}

impl RowOutcome {
    /// Regroups a [`suite_jobs`]-ordered outcome list into rows.
    ///
    /// # Panics
    ///
    /// Panics when the lists disagree or are not whole rows in
    /// [`suite_jobs`] order.
    #[must_use]
    pub fn from_jobs(jobs: &[JobSpec], outcomes: &[JobOutcome]) -> Vec<RowOutcome> {
        assert_eq!(jobs.len(), outcomes.len());
        assert_eq!(jobs.len() % Arch::ALL.len(), 0, "partial suite row");
        jobs.chunks_exact(Arch::ALL.len())
            .zip(outcomes.chunks_exact(Arch::ALL.len()))
            .map(|(specs, outs)| {
                assert_eq!(
                    [specs[0].arch, specs[1].arch, specs[2].arch],
                    Arch::ALL,
                    "jobs not in suite order"
                );
                RowOutcome {
                    name: specs[0].bench.clone(),
                    fermi: outs[0].clone(),
                    mt: outs[1].clone(),
                    dmt: outs[2].clone(),
                }
            })
            .collect()
    }

    /// The outcome for one architecture.
    #[must_use]
    pub fn outcome(&self, arch: Arch) -> &JobOutcome {
        match arch {
            Arch::FermiSm => &self.fermi,
            Arch::MtCgra => &self.mt,
            Arch::DmtCgra => &self.dmt,
        }
    }

    /// True when all three architectures completed.
    #[must_use]
    pub fn complete(&self) -> bool {
        Arch::ALL
            .iter()
            .all(|&a| self.outcome(a).metrics().is_some())
    }

    /// The infeasible architectures with their leaf errors.
    #[must_use]
    pub fn failures(&self) -> Vec<(Arch, String)> {
        Arch::ALL
            .iter()
            .filter_map(|&a| self.outcome(a).error().map(|e| (a, e.to_owned())))
            .collect()
    }

    fn ratio(&self, base: Arch, test: Arch, f: impl Fn(&JobMetrics) -> f64) -> Option<f64> {
        Some(f(self.outcome(base).metrics()?) / f(self.outcome(test).metrics()?))
    }

    /// MT-CGRA speedup over the SM (Fig 11), when both ran.
    #[must_use]
    pub fn mt_speedup(&self) -> Option<f64> {
        self.ratio(Arch::FermiSm, Arch::MtCgra, |m| m.cycles() as f64)
    }

    /// dMT-CGRA speedup over the SM (Fig 11), when both ran.
    #[must_use]
    pub fn dmt_speedup(&self) -> Option<f64> {
        self.ratio(Arch::FermiSm, Arch::DmtCgra, |m| m.cycles() as f64)
    }

    /// MT-CGRA energy efficiency over the SM (Fig 12), when both ran.
    #[must_use]
    pub fn mt_efficiency(&self) -> Option<f64> {
        self.ratio(Arch::FermiSm, Arch::MtCgra, JobMetrics::total_joules)
    }

    /// dMT-CGRA energy efficiency over the SM (Fig 12), when both ran.
    #[must_use]
    pub fn dmt_efficiency(&self) -> Option<f64> {
        self.ratio(Arch::FermiSm, Arch::DmtCgra, JobMetrics::total_joules)
    }
}

/// A completed pool run: the grid, its outcomes and the run metadata an
/// artifact records.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// The job grid, in submission order.
    pub jobs: Vec<JobSpec>,
    /// Per-job outcomes, index-aligned with `jobs`.
    pub outcomes: Vec<JobOutcome>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock of the pool run, in milliseconds.
    pub wall_ms: u64,
    /// Headline seed.
    pub seed: u64,
}

impl SuiteRun {
    /// Regroups the outcomes into suite rows (only valid for
    /// [`suite_jobs`]-shaped grids).
    #[must_use]
    pub fn rows(&self) -> Vec<RowOutcome> {
        RowOutcome::from_jobs(&self.jobs, &self.outcomes)
    }

    /// Packages the run as a versioned JSON artifact.
    #[must_use]
    pub fn artifact(&self, suite: &str) -> Artifact {
        Artifact::new(
            suite,
            self.threads,
            self.wall_ms,
            self.seed,
            self.jobs.clone(),
            self.outcomes.clone(),
        )
    }

    /// The shared `--json` epilogue of every grid-shaped binary: when the
    /// flag was given, writes the artifact and logs one uniform stderr
    /// line.
    ///
    /// # Panics
    ///
    /// Panics when the artifact cannot be written — a requested recording
    /// that fails must not exit 0.
    pub fn write_artifact(&self, args: &RunnerArgs, suite: &str) {
        if let Some(path) = &args.json {
            self.artifact(suite)
                .write(path)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            eprintln!(
                "[dmt-runner] wrote {} ({} jobs, {} threads, {} ms)",
                path.display(),
                self.jobs.len(),
                self.threads,
                self.wall_ms
            );
        }
    }
}

/// Executes an arbitrary job grid on the worker pool (wall-clock
/// measured, progress optional). With a [`Cache`], hits skip simulation,
/// misses run longest-expected-first and are persisted as they complete
/// (killed runs resume), and every aggregate — stdout, artifacts — is
/// byte-identical to the uncached run. The building block behind every
/// experiment binary; [`run_suite_pooled`] is the common suite-shaped
/// case.
#[must_use]
pub fn run_jobs_pooled(
    jobs: Vec<JobSpec>,
    seed: u64,
    threads: usize,
    progress: Option<&Progress>,
    cache: Option<&Cache>,
) -> SuiteRun {
    run_jobs_pooled_limited(jobs, seed, threads, progress, cache, None)
}

/// [`run_jobs_pooled`] with an optional per-job simulated-cycle budget
/// (`--deadline-cycles`): jobs whose simulation reaches the budget end
/// as [`JobOutcome::TimedOut`] instead of running on, and are never
/// cached (the budget is not part of the job hash). `None` is exactly
/// [`run_jobs_pooled`].
#[must_use]
pub fn run_jobs_pooled_limited(
    jobs: Vec<JobSpec>,
    seed: u64,
    threads: usize,
    progress: Option<&Progress>,
    cache: Option<&Cache>,
    deadline_cycles: Option<u64>,
) -> SuiteRun {
    let start = Instant::now();
    let outcomes = dmt_runner::ExecPlan::new(&jobs)
        .threads(threads)
        .progress(progress)
        .cache(cache)
        .deadline_cycles(deadline_cycles)
        .run_limited(execute_job_limited);
    SuiteRun {
        jobs,
        outcomes,
        threads,
        wall_ms: u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX),
        seed,
    }
}

/// Executes a job grid with per-job observation: every job gets its own
/// [`Obs`] handle (tracing and/or profiling per the flags) and the
/// handles are returned index-aligned with the outcomes, for any thread
/// count — `run_indexed` aggregates by job index, and each handle lives
/// on exactly one worker. Observation bypasses the [`Cache`]
/// deliberately: tracing a run means actually running it.
#[must_use]
pub fn run_jobs_observed(
    jobs: Vec<JobSpec>,
    seed: u64,
    threads: usize,
    trace: bool,
    profile: bool,
) -> (SuiteRun, Vec<Obs>) {
    let start = Instant::now();
    let mut pairs = dmt_runner::run_indexed(jobs.len(), threads, |i| {
        let mut obs = Obs::new(trace, profile);
        let outcome = execute_job_observed(&jobs[i], &mut obs);
        (outcome, obs)
    });
    let mut outcomes = Vec::with_capacity(pairs.len());
    let mut observations = Vec::with_capacity(pairs.len());
    for (outcome, obs) in pairs.drain(..) {
        outcomes.push(outcome);
        observations.push(obs);
    }
    let run = SuiteRun {
        jobs,
        outcomes,
        threads,
        wall_ms: u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX),
        seed,
    };
    (run, observations)
}

/// A job's stable label in observation artifacts: `bench/arch`.
#[must_use]
pub fn job_label(spec: &JobSpec) -> String {
    format!("{}/{}", spec.bench, spec.arch.key())
}

/// Assembles `BENCH_profile.json`: one deterministic per-job profile
/// document (labelled `bench/arch`, top-`k` rankings) plus volatile run
/// metadata under `"meta"`. The `"jobs"` array is byte-stable across
/// thread counts and hosts; comparisons (goldens, cross-thread checks)
/// should render only that part.
#[must_use]
pub fn profile_artifact(run: &SuiteRun, observations: &[Obs], top_k: usize) -> Json {
    Json::obj()
        .with("profile_schema_version", 1u64)
        .with("suite", "profile")
        .with(
            "jobs",
            Json::Arr(
                run.jobs
                    .iter()
                    .zip(observations)
                    .map(|(spec, obs)| {
                        Json::obj()
                            .with("job", job_label(spec))
                            .with("seed", spec.seed)
                            .with("profile", obs.profile.to_json(top_k))
                    })
                    .collect(),
            ),
        )
        .with(
            "meta",
            Json::obj()
                .with("threads", run.threads)
                .with("wall_ms", run.wall_ms),
        )
}

/// Renders the `profile_hotspots` stdout report: per job, the traffic
/// totals and the top-`k` node/edge rankings. Deterministic for any
/// thread count (rankings are total-ordered; see
/// [`dmt_obs::RunProfile::top_nodes`]).
#[must_use]
pub fn profile_report(run: &SuiteRun, observations: &[Obs], k: usize) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "Hot-spot profile (top {k} per job, seed {})", run.seed);
    for (spec, obs) in run.jobs.iter().zip(observations) {
        let p = &obs.profile;
        let _ = writeln!(s, "\n== {} ==", job_label(spec));
        let _ = writeln!(
            s,
            "cycles {}  phases {}  tokens {} (direct {}, elevator {}, eldst {})",
            p.cycles,
            p.phases,
            p.total_tokens(),
            p.class_tokens[dmt_obs::EdgeClass::Direct as usize],
            p.class_tokens[dmt_obs::EdgeClass::Elevator as usize],
            p.class_tokens[dmt_obs::EdgeClass::Eldst as usize],
        );
        let _ = writeln!(
            s,
            "spills: matching_store {}, eldst {}; calendar high-water {}, scheduled {}; \
             ring occupancy max {}",
            p.spills[dmt_obs::StoreKind::Match as usize],
            p.spills[dmt_obs::StoreKind::Eldst as usize],
            p.calendar_high_water,
            p.calendar_scheduled,
            p.ring_occupancy.max(),
        );
        let _ = writeln!(s, "top nodes (fires):");
        for ((phase, node), fires) in p.top_nodes(k) {
            let _ = writeln!(s, "  phase {phase} node {node:<4} {fires:>10}");
        }
        let _ = writeln!(s, "top edges (tokens):");
        for ((phase, src, dst), tokens) in p.top_edges(k) {
            let _ = writeln!(s, "  phase {phase} edge {src:>3} -> {dst:<4} {tokens:>10}");
        }
    }
    s
}

/// Runs the first `take` Table 3 benchmarks on all three machines via
/// the worker pool. Infeasible points are annotated in the outcomes, not
/// panicked on — headline binaries render them as such.
#[must_use]
pub fn run_suite_pooled(
    cfg: SystemConfig,
    seed: u64,
    take: usize,
    threads: usize,
    progress: Option<&Progress>,
    cache: Option<&Cache>,
) -> SuiteRun {
    run_jobs_pooled(suite_jobs(cfg, seed, take), seed, threads, progress, cache)
}

/// [`run_suite_pooled`] with an optional per-job simulated-cycle budget;
/// see [`run_jobs_pooled_limited`].
#[must_use]
pub fn run_suite_pooled_limited(
    cfg: SystemConfig,
    seed: u64,
    take: usize,
    threads: usize,
    progress: Option<&Progress>,
    cache: Option<&Cache>,
    deadline_cycles: Option<u64>,
) -> SuiteRun {
    run_jobs_pooled_limited(
        suite_jobs(cfg, seed, take),
        seed,
        threads,
        progress,
        cache,
        deadline_cycles,
    )
}

/// The headline binaries' shared failure policy: they run the *default*
/// configuration, where an infeasible point is a simulator regression,
/// not a swept-out design point. The caller's report has already
/// annotated the failures; this exits 1 so scripts and CI cannot read
/// success off wrong or missing data.
pub fn exit_on_incomplete(rows: &[RowOutcome]) {
    let incomplete = rows.iter().filter(|r| !r.complete()).count();
    if incomplete > 0 {
        eprintln!("error: {incomplete} suite row(s) failed at the default configuration");
        std::process::exit(1);
    }
}

/// Geomean across rows of a per-row ratio, skipping rows where the ratio
/// is undefined (an architecture was infeasible).
#[must_use]
pub fn geomean_rows(rows: &[RowOutcome], f: impl Fn(&RowOutcome) -> Option<f64>) -> f64 {
    let v: Vec<f64> = rows.iter().filter_map(f).collect();
    experiment::geomean(&v).unwrap_or(f64::NAN)
}

fn fmt_opt(v: Option<f64>, width: usize, prec: usize) -> String {
    match v {
        Some(x) => format!("{x:>width$.prec$}"),
        None => format!("{:>width$}", "-"),
    }
}

fn fmt_cycles(o: &JobOutcome, width: usize) -> String {
    match o.metrics() {
        Some(m) => format!("{:>width$}", m.cycles()),
        None => format!("{:>width$}", "-"),
    }
}

/// Renders Fig 11 (speedup over the Fermi SM) from runner rows —
/// deterministic for any thread count, with infeasible points annotated
/// inline instead of aborting the suite.
#[must_use]
pub fn fig11_report(rows: &[RowOutcome]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 11: speedup over the Fermi SM (one '#' = 0.25x)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "benchmark", "fermi cyc", "mt cyc", "dmt cyc", "MT [x]", "dMT [x]"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {} {} {} {} {}",
            r.name,
            fmt_cycles(&r.fermi, 10),
            fmt_cycles(&r.mt, 10),
            fmt_cycles(&r.dmt, 10),
            fmt_opt(r.mt_speedup(), 8, 2),
            fmt_opt(r.dmt_speedup(), 8, 2),
        );
        if let Some(s) = r.mt_speedup() {
            let _ = writeln!(out, "{:>14} MT  |{}", "", bar(s));
        }
        if let Some(s) = r.dmt_speedup() {
            let _ = writeln!(out, "{:>14} dMT |{}", "", bar(s));
        }
        for (arch, err) in r.failures() {
            let _ = writeln!(out, "{:>14} infeasible on {arch}: {err}", "");
        }
    }
    let gm_mt = geomean_rows(rows, RowOutcome::mt_speedup);
    let gm_dmt = geomean_rows(rows, RowOutcome::dmt_speedup);
    let _ = writeln!(out, "\ngeomean: MT-CGRA {gm_mt:.2}x, dMT-CGRA {gm_dmt:.2}x");
    let skipped = rows.iter().filter(|r| !r.complete()).count();
    if skipped > 0 {
        let _ = writeln!(
            out,
            "         (each geomean covers the rows where its ratio is defined; \
             {skipped} of {} rows annotated above)",
            rows.len()
        );
    }
    let _ = writeln!(out, "paper:   MT-CGRA 2.3x,  dMT-CGRA 4.5x (max 13.5x)");
    out
}

/// Renders Fig 12 (energy efficiency over the Fermi SM) from runner rows.
#[must_use]
pub fn fig12_report(rows: &[RowOutcome]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 12: energy efficiency over the Fermi SM (one '#' = 0.25x)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "benchmark", "fermi [uJ]", "mt [uJ]", "dmt [uJ]", "MT [x]", "dMT [x]"
    );
    for r in rows {
        let uj = |o: &JobOutcome| o.metrics().map(|m| m.total_joules() * 1e6);
        let eff_bar = r
            .dmt_efficiency()
            .map(|e| format!("  dMT |{}", bar(e)))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<12} {} {} {} {} {}{}",
            r.name,
            fmt_opt(uj(&r.fermi), 12, 2),
            fmt_opt(uj(&r.mt), 12, 2),
            fmt_opt(uj(&r.dmt), 12, 2),
            fmt_opt(r.mt_efficiency(), 8, 2),
            fmt_opt(r.dmt_efficiency(), 8, 2),
            eff_bar,
        );
        for (arch, err) in r.failures() {
            let _ = writeln!(out, "{:>14} infeasible on {arch}: {err}", "");
        }
    }
    let gm_mt = geomean_rows(rows, RowOutcome::mt_efficiency);
    let gm_dmt = geomean_rows(rows, RowOutcome::dmt_efficiency);
    let _ = writeln!(out, "\ngeomean: MT-CGRA {gm_mt:.2}x, dMT-CGRA {gm_dmt:.2}x");
    let _ = writeln!(out, "paper:   MT-CGRA 3.5x,  dMT-CGRA 7.4x (max 33x)");

    // Per-category breakdown for the most energy-interesting kernel (the
    // paper highlights scan: large energy win without a speedup win).
    if let Some(scan) = rows.iter().find(|r| r.name == "scan") {
        if let (Some(fermi), Some(dmt)) = (scan.fermi.metrics(), scan.dmt.metrics()) {
            let _ = writeln!(out, "\nscan energy breakdown:");
            let _ = writeln!(out, "-- Fermi SM --\n{}", fermi.energy);
            let _ = writeln!(out, "-- dMT-CGRA --\n{}", dmt.energy);
        }
    }
    out
}

/// Collects Fig 5 communication sites across every dMT kernel in the
/// suite.
#[must_use]
pub fn suite_comm_sites() -> Vec<dmt_core::dfg::delta_stats::CommSite> {
    suite::all()
        .iter()
        .flat_map(|b| dmt_core::dfg::delta_stats::comm_sites(&b.dmt_kernel()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_validates() {
        let b = dmt_kernels::convolution::Convolution::default();
        let r = run_one(&b, Arch::DmtCgra, SystemConfig::default(), 1);
        assert!(r.cycles() > 0);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0).len(), 4);
        assert_eq!(bar(4.5).len(), 18);
    }

    #[test]
    fn suite_jobs_shape_matches_rows() {
        let jobs = suite_jobs(SystemConfig::default(), SEED, 2);
        assert_eq!(jobs.len(), 6);
        assert_eq!(jobs[0].bench, "scan");
        assert_eq!(jobs[0].arch, Arch::FermiSm);
        assert_eq!(jobs[2].arch, Arch::DmtCgra);
        assert_eq!(jobs[3].bench, "matrixMul");
    }

    #[test]
    fn execute_job_matches_leaf_runner() {
        let spec =
            dmt_runner::JobSpec::new("convolution", Arch::DmtCgra, SystemConfig::default(), 1);
        let outcome = execute_job(&spec);
        let m = outcome.metrics().expect("feasible");
        let b = dmt_kernels::convolution::Convolution::default();
        let r = run_one(&b, Arch::DmtCgra, SystemConfig::default(), 1);
        assert_eq!(m.stats, r.stats);
        assert_eq!(m.kernel, r.kernel);
    }

    #[test]
    fn execute_job_reports_infeasible_points() {
        // reduce's log-tree needs |ΔTID| up to 128: a 64-thread window is
        // infeasible, which the outcome must carry instead of panicking.
        let mut cfg = SystemConfig::default();
        cfg.fabric.inflight_threads = 64;
        let spec = dmt_runner::JobSpec::new("reduce", Arch::DmtCgra, cfg, SEED);
        match execute_job(&spec) {
            JobOutcome::Infeasible(e) => assert!(!e.is_empty()),
            other => panic!("expected an infeasible point, got {other:?}"),
        }
    }

    #[test]
    fn deadline_times_out_and_a_generous_budget_does_not() {
        let spec =
            dmt_runner::JobSpec::new("convolution", Arch::DmtCgra, SystemConfig::default(), 1);
        let full = execute_job(&spec);
        let cycles = full.metrics().expect("feasible").cycles();

        // A one-cycle budget cannot finish any real kernel.
        match execute_job_limited(&spec, &RunLimits::deadline(1)) {
            JobOutcome::TimedOut(e) => {
                assert!(e.contains("deadline exceeded"), "{e}");
                assert!(e.contains("budget 1 cycles"), "{e}");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }

        // A budget past the real run length changes nothing.
        let roomy = execute_job_limited(&spec, &RunLimits::deadline(cycles + 1));
        assert_eq!(roomy, full, "an unexercised deadline must not perturb");
    }

    #[test]
    fn cancellation_fails_the_job_transiently() {
        use std::sync::atomic::AtomicBool;
        let spec =
            dmt_runner::JobSpec::new("convolution", Arch::DmtCgra, SystemConfig::default(), 1);
        let token = AtomicBool::new(true);
        match execute_job_limited(&spec, &RunLimits::unlimited().with_cancel(&token)) {
            JobOutcome::Failed(e) => assert!(e.contains("cancelled"), "{e}"),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn pooled_run_with_deadline_types_every_outcome() {
        let run =
            run_suite_pooled_limited(SystemConfig::default(), SEED, 2, 2, None, None, Some(1));
        assert!(
            run.outcomes
                .iter()
                .all(|o| matches!(o, JobOutcome::TimedOut(_))),
            "{:?}",
            run.outcomes
        );
        // And the unlimited run through the same limited entry point is
        // byte-identical to the plain pooled run.
        let a = run_suite_pooled_limited(SystemConfig::default(), SEED, 2, 2, None, None, None);
        let b = run_suite_pooled(SystemConfig::default(), SEED, 2, 2, None, None);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn row_ratios_are_none_on_infeasible_arches() {
        let cycles = |c: u64| {
            JobOutcome::completed(JobMetrics {
                kernel: "k".into(),
                stats: dmt_core::common::stats::RunStats {
                    cycles: c,
                    ..Default::default()
                },
                energy: dmt_core::EnergyReport::default(),
            })
        };
        let row = RowOutcome {
            name: "x".into(),
            fermi: cycles(100),
            mt: JobOutcome::Infeasible("no".into()),
            dmt: cycles(25),
        };
        assert_eq!(row.mt_speedup(), None);
        assert_eq!(row.dmt_speedup(), Some(4.0));
        assert!(!row.complete());
        assert_eq!(row.failures().len(), 1);
        let report = fig11_report(&[row]);
        assert!(report.contains("infeasible on MT-CGRA: no"), "{report}");
    }
}
