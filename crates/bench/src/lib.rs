//! The experiment harness: runs the Table 3 suite on all three machines
//! and regenerates every table and figure of the paper's evaluation
//! (§5.2). One binary per artifact:
//!
//! | Binary | Artifact |
//! |---|---|
//! | `fig05_delta_cdf` | Fig 5 — CDF of ΔTID transmission distances |
//! | `fig11_speedup` | Fig 11 — speedup over the Fermi SM |
//! | `fig12_energy` | Fig 12 — energy efficiency over the Fermi SM |
//! | `table2_config` | Table 2 — system configuration |
//! | `table3_benchmarks` | Table 3 — benchmark inventory |
//! | `ablate_token_buffer` | §4.3 — token-buffer size vs cascades/spills |
//! | `ablate_inflight` | §3 — in-flight thread window sweep |
//! | `ablate_replication` | §3 — graph replication on/off |
//! | `ablate_window` | §3.2 — transmission-window sweep |
//!
//! Criterion benches under `benches/` wrap the same harness entry points.

pub mod sweep;

use dmt_core::{experiment, Arch, Machine, RunReport, SystemConfig};
use dmt_kernels::{suite, Benchmark};

/// Seed used by every headline experiment (results are deterministic).
pub const SEED: u64 = 42;

/// One suite row: a benchmark measured on all three machines.
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// Benchmark name (Table 3).
    pub name: &'static str,
    /// Fermi SM run.
    pub fermi: RunReport,
    /// MT-CGRA run (shared-memory variant).
    pub mt: RunReport,
    /// dMT-CGRA run (inter-thread-communication variant).
    pub dmt: RunReport,
}

impl SuiteRow {
    /// MT-CGRA speedup over the SM (Fig 11, left bars).
    #[must_use]
    pub fn mt_speedup(&self) -> f64 {
        experiment::speedup(&self.fermi, &self.mt)
    }

    /// dMT-CGRA speedup over the SM (Fig 11, right bars).
    #[must_use]
    pub fn dmt_speedup(&self) -> f64 {
        experiment::speedup(&self.fermi, &self.dmt)
    }

    /// MT-CGRA energy efficiency over the SM (Fig 12).
    #[must_use]
    pub fn mt_efficiency(&self) -> f64 {
        experiment::energy_efficiency(&self.fermi, &self.mt)
    }

    /// dMT-CGRA energy efficiency over the SM (Fig 12).
    #[must_use]
    pub fn dmt_efficiency(&self) -> f64 {
        experiment::energy_efficiency(&self.fermi, &self.dmt)
    }
}

/// Runs one benchmark on one architecture, validating the output against
/// the CPU reference.
///
/// # Panics
///
/// Panics when simulation or validation fails — experiments must not
/// silently report numbers from wrong results.
#[must_use]
pub fn run_one(bench: &dyn Benchmark, arch: Arch, cfg: SystemConfig, seed: u64) -> RunReport {
    try_run_one(bench, arch, cfg, seed)
        .unwrap_or_else(|e| panic!("{} on {arch}: {e}", bench.info().name))
}

/// Like [`run_one`], but surfaces simulation errors — e.g. a swept config
/// on which a kernel legitimately cannot compile — instead of panicking.
/// A *wrong result* still panics: experiments must never silently report
/// numbers from incorrect runs.
///
/// # Errors
///
/// Returns the compiler or machine error for infeasible configurations.
///
/// # Panics
///
/// Panics when the run completes but output validation fails.
pub fn try_run_one(
    bench: &dyn Benchmark,
    arch: Arch,
    cfg: SystemConfig,
    seed: u64,
) -> dmt_core::Result<RunReport> {
    let kernel = match arch {
        Arch::DmtCgra => bench.dmt_kernel(),
        Arch::FermiSm | Arch::MtCgra => bench.shared_kernel(),
    };
    let report = Machine::new(arch, cfg).run(&kernel, bench.workload(seed).launch())?;
    bench
        .check(seed, &report.memory)
        .unwrap_or_else(|e| panic!("{} on {arch}: wrong result: {e}", bench.info().name));
    Ok(report)
}

/// A [`try_suite_row`] failure: the underlying error plus which
/// architecture produced it.
#[derive(Debug, Clone)]
pub struct SuiteRowError {
    /// Architecture on which the run failed.
    pub arch: Arch,
    /// The underlying compiler or machine error.
    pub error: dmt_core::Error,
}

impl std::fmt::Display for SuiteRowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "on {}: {}", self.arch, self.error)
    }
}

impl std::error::Error for SuiteRowError {}

/// Builds one suite row, surfacing simulation errors instead of panicking
/// (see [`try_run_one`]). Ablation sweeps use this to skip benchmarks
/// that are infeasible at a given configuration point.
///
/// # Errors
///
/// Returns the first per-architecture error, tagged with its [`Arch`].
pub fn try_suite_row(
    bench: &dyn Benchmark,
    cfg: SystemConfig,
    seed: u64,
) -> Result<SuiteRow, SuiteRowError> {
    let one = |arch: Arch| {
        try_run_one(bench, arch, cfg, seed).map_err(|error| SuiteRowError { arch, error })
    };
    Ok(SuiteRow {
        name: bench.info().name,
        fermi: one(Arch::FermiSm)?,
        mt: one(Arch::MtCgra)?,
        dmt: one(Arch::DmtCgra)?,
    })
}

/// Runs the full Table 3 suite on all three machines.
#[must_use]
pub fn run_suite(cfg: SystemConfig, seed: u64) -> Vec<SuiteRow> {
    run_suite_take(cfg, seed, usize::MAX)
}

/// Runs the first `take` Table 3 benchmarks on all three machines.
///
/// CI smoke jobs use a small `take` to catch runtime regressions without
/// paying for the whole suite; `run_suite` is the `take = all` case.
///
/// # Panics
///
/// Panics when any benchmark fails to run on the default-style config —
/// headline experiments must not silently drop rows (ablation sweeps
/// that expect infeasible points use [`try_suite_row`] directly).
#[must_use]
pub fn run_suite_take(cfg: SystemConfig, seed: u64, take: usize) -> Vec<SuiteRow> {
    suite::all()
        .into_iter()
        .take(take)
        .map(|b| {
            try_suite_row(b.as_ref(), cfg, seed).unwrap_or_else(|e| panic!("{} {e}", b.info().name))
        })
        .collect()
}

/// Geomean across rows of a per-row ratio.
#[must_use]
pub fn geomean_of(rows: &[SuiteRow], f: impl Fn(&SuiteRow) -> f64) -> f64 {
    let v: Vec<f64> = rows.iter().map(f).collect();
    experiment::geomean(&v).unwrap_or(f64::NAN)
}

/// A text bar for figure-style output (one `#` per 0.25×).
#[must_use]
pub fn bar(value: f64) -> String {
    "#".repeat((value * 4.0).round().max(0.0) as usize)
}

/// Collects Fig 5 communication sites across every dMT kernel in the
/// suite.
#[must_use]
pub fn suite_comm_sites() -> Vec<dmt_core::dfg::delta_stats::CommSite> {
    suite::all()
        .iter()
        .flat_map(|b| dmt_core::dfg::delta_stats::comm_sites(&b.dmt_kernel()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_validates() {
        let b = dmt_kernels::convolution::Convolution::default();
        let r = run_one(&b, Arch::DmtCgra, SystemConfig::default(), 1);
        assert!(r.cycles() > 0);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0).len(), 4);
        assert_eq!(bar(4.5).len(), 18);
    }
}
