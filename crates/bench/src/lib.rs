//! The experiment harness: runs the Table 3 suite on all three machines
//! and regenerates every table and figure of the paper's evaluation
//! (§5.2). One binary per artifact:
//!
//! | Binary | Artifact |
//! |---|---|
//! | `fig05_delta_cdf` | Fig 5 — CDF of ΔTID transmission distances |
//! | `fig11_speedup` | Fig 11 — speedup over the Fermi SM |
//! | `fig12_energy` | Fig 12 — energy efficiency over the Fermi SM |
//! | `table2_config` | Table 2 — system configuration |
//! | `table3_benchmarks` | Table 3 — benchmark inventory |
//! | `ablate_token_buffer` | §4.3 — token-buffer size vs cascades/spills |
//! | `ablate_inflight` | §3 — in-flight thread window sweep |
//! | `ablate_replication` | §3 — graph replication on/off |
//! | `ablate_window` | §3.2 — transmission-window sweep |
//!
//! Criterion benches under `benches/` wrap the same harness entry points.

pub mod sweep;

use dmt_core::{experiment, Arch, Machine, RunReport, SystemConfig};
use dmt_kernels::{suite, Benchmark};

/// Seed used by every headline experiment (results are deterministic).
pub const SEED: u64 = 42;

/// One suite row: a benchmark measured on all three machines.
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// Benchmark name (Table 3).
    pub name: &'static str,
    /// Fermi SM run.
    pub fermi: RunReport,
    /// MT-CGRA run (shared-memory variant).
    pub mt: RunReport,
    /// dMT-CGRA run (inter-thread-communication variant).
    pub dmt: RunReport,
}

impl SuiteRow {
    /// MT-CGRA speedup over the SM (Fig 11, left bars).
    #[must_use]
    pub fn mt_speedup(&self) -> f64 {
        experiment::speedup(&self.fermi, &self.mt)
    }

    /// dMT-CGRA speedup over the SM (Fig 11, right bars).
    #[must_use]
    pub fn dmt_speedup(&self) -> f64 {
        experiment::speedup(&self.fermi, &self.dmt)
    }

    /// MT-CGRA energy efficiency over the SM (Fig 12).
    #[must_use]
    pub fn mt_efficiency(&self) -> f64 {
        experiment::energy_efficiency(&self.fermi, &self.mt)
    }

    /// dMT-CGRA energy efficiency over the SM (Fig 12).
    #[must_use]
    pub fn dmt_efficiency(&self) -> f64 {
        experiment::energy_efficiency(&self.fermi, &self.dmt)
    }
}

/// Runs one benchmark on one architecture, validating the output against
/// the CPU reference.
///
/// # Panics
///
/// Panics when simulation or validation fails — experiments must not
/// silently report numbers from wrong results.
#[must_use]
pub fn run_one(bench: &dyn Benchmark, arch: Arch, cfg: SystemConfig, seed: u64) -> RunReport {
    let kernel = match arch {
        Arch::DmtCgra => bench.dmt_kernel(),
        Arch::FermiSm | Arch::MtCgra => bench.shared_kernel(),
    };
    let report = Machine::new(arch, cfg)
        .run(&kernel, bench.workload(seed).launch())
        .unwrap_or_else(|e| panic!("{} on {arch}: {e}", bench.info().name));
    bench
        .check(seed, &report.memory)
        .unwrap_or_else(|e| panic!("{} on {arch}: wrong result: {e}", bench.info().name));
    report
}

/// Runs the full Table 3 suite on all three machines.
#[must_use]
pub fn run_suite(cfg: SystemConfig, seed: u64) -> Vec<SuiteRow> {
    suite::all()
        .into_iter()
        .map(|b| SuiteRow {
            name: b.info().name,
            fermi: run_one(b.as_ref(), Arch::FermiSm, cfg, seed),
            mt: run_one(b.as_ref(), Arch::MtCgra, cfg, seed),
            dmt: run_one(b.as_ref(), Arch::DmtCgra, cfg, seed),
        })
        .collect()
}

/// Geomean across rows of a per-row ratio.
#[must_use]
pub fn geomean_of(rows: &[SuiteRow], f: impl Fn(&SuiteRow) -> f64) -> f64 {
    let v: Vec<f64> = rows.iter().map(f).collect();
    experiment::geomean(&v).unwrap_or(f64::NAN)
}

/// A text bar for figure-style output (one `#` per 0.25×).
#[must_use]
pub fn bar(value: f64) -> String {
    "#".repeat((value * 4.0).round().max(0.0) as usize)
}

/// Collects Fig 5 communication sites across every dMT kernel in the
/// suite.
#[must_use]
pub fn suite_comm_sites() -> Vec<dmt_core::dfg::delta_stats::CommSite> {
    suite::all()
        .iter()
        .flat_map(|b| dmt_core::dfg::delta_stats::comm_sites(&b.dmt_kernel()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_validates() {
        let b = dmt_kernels::convolution::Convolution::default();
        let r = run_one(&b, Arch::DmtCgra, SystemConfig::default(), 1);
        assert!(r.cycles() > 0);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0).len(), 4);
        assert_eq!(bar(4.5).len(), 18);
    }
}
