//! Table 2 — the simulated system configuration.

use dmt_core::SystemConfig;

fn main() {
    println!("Table 2: dMT-CGRA system configuration\n");
    print!("{}", SystemConfig::default().to_table());
    let cfg = SystemConfig::default();
    println!("\nsimulator extensions (see DESIGN.md):");
    println!(
        "  elevator token buffer: {} entries; LDST queue: {} entries",
        cfg.fabric.token_buffer_entries, cfg.fabric.ldst_queue_entries
    );
    println!(
        "  in-flight threads: {}; placement array: {}x{}",
        cfg.fabric.inflight_threads, cfg.fabric.grid_width, cfg.fabric.grid_width
    );
}
