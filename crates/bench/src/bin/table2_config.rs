//! Table 2 — the simulated system configuration.

use dmt_core::SystemConfig;
use dmt_runner::RunnerArgs;

fn main() {
    // Shared-registry parsing for uniform --help and flag rejection; a
    // static table has no grid to thread, cache or record.
    let args = RunnerArgs::from_env();
    args.forbid_trace("table2_config");
    args.forbid_deadline("table2_config");
    args.forbid_threads("table2_config");
    args.forbid_json("table2_config");
    args.forbid_cache("table2_config");
    args.forbid_progress("table2_config");
    args.forbid_smoke("table2_config");
    println!("Table 2: dMT-CGRA system configuration\n");
    print!("{}", SystemConfig::default().to_table());
    let cfg = SystemConfig::default();
    println!("\nsimulator extensions (see DESIGN.md):");
    println!(
        "  elevator token buffer: {} entries; LDST queue: {} entries",
        cfg.fabric.token_buffer_entries, cfg.fabric.ldst_queue_entries
    );
    println!(
        "  in-flight threads: {}; placement array: {}x{}",
        cfg.fabric.inflight_threads, cfg.fabric.grid_width, cfg.fabric.grid_width
    );
}
