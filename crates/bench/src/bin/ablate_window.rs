//! Ablation (§3.2): transmission-window size.
//!
//! A windowed `fromThreadOrMem` broadcast loads one value per window group
//! and forwards it to the rest of the group. Larger windows convert more
//! loads into fabric forwards — the paper's memory-traffic argument in
//! miniature — until forwarding latency starts to bind.
//!
//! One job per window size, run on the `dmt-runner` pool (`--threads N`);
//! the table prints in window order for any worker count.

use dmt_core::common::geom::{Delta, Dim3};
use dmt_core::common::ids::Addr;
use dmt_core::{Arch, KernelBuilder, LaunchInput, Machine, MemImage, SystemConfig, Word};
use dmt_runner::RunnerArgs;

const WINDOWS: [u32; 8] = [2, 4, 8, 16, 32, 64, 128, 256];

fn broadcast_kernel(n: u32, win: u32) -> dmt_core::Kernel {
    let mut kb = KernelBuilder::new("win_broadcast", Dim3::linear(n));
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let w = kb.const_i(win as i32);
    let lane = kb.rem_i(tid, w);
    let zero = kb.const_i(0);
    let lead = kb.eq_i(lane, zero);
    let group = kb.div_i(tid, w);
    let ga = kb.index_addr(inp, group, 4);
    let v = kb.from_thread_or_mem(ga, lead, Delta::new(-1), Some(win));
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, v);
    kb.finish().expect("well-formed")
}

struct Row {
    window: u32,
    cycles: u64,
    loads: u64,
    forwards: u64,
}

fn main() {
    let args = RunnerArgs::from_env();
    args.forbid_trace("ablate_window");
    args.forbid_deadline("ablate_window");
    args.forbid_smoke("ablate_window");
    args.forbid_json("ablate_window");
    args.forbid_progress("ablate_window");
    args.forbid_cache("ablate_window");
    let n = 1024u32;
    let rows = dmt_runner::run_indexed(WINDOWS.len(), args.effective_threads(), |i| {
        let win = WINDOWS[i];
        let kernel = broadcast_kernel(n, win);
        let mut mem = MemImage::with_words(2 * n as usize);
        let groups = n / win;
        mem.write_i32_slice(
            Addr(0),
            &(0..groups as i32).map(|g| g * 7).collect::<Vec<_>>(),
        );
        let report = Machine::new(Arch::DmtCgra, SystemConfig::default())
            .run(
                &kernel,
                LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4 * n)], mem),
            )
            .expect("runs");
        Row {
            window: win,
            cycles: report.cycles(),
            loads: report.stats.global_loads,
            forwards: report.stats.eldst_forwards,
        }
    });

    println!("Ablation: transmission window for a fromThreadOrMem broadcast\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>14}",
        "window", "cycles", "loads", "forwards", "loads avoided"
    );
    for r in &rows {
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>13.1}%",
            r.window,
            r.cycles,
            r.loads,
            r.forwards,
            100.0 * r.forwards as f64 / (r.loads + r.forwards) as f64
        );
    }
    println!("\nEach value is loaded once and reused window/Δ times (§4.2).");
}
