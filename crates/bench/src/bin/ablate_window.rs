//! Ablation (§3.2): transmission-window size.
//!
//! A windowed `fromThreadOrMem` broadcast loads one value per window group
//! and forwards it to the rest of the group. Larger windows convert more
//! loads into fabric forwards — the paper's memory-traffic argument in
//! miniature — until forwarding latency starts to bind.

use dmt_core::common::geom::{Delta, Dim3};
use dmt_core::common::ids::Addr;
use dmt_core::{Arch, KernelBuilder, LaunchInput, Machine, MemImage, SystemConfig, Word};

fn broadcast_kernel(n: u32, win: u32) -> dmt_core::Kernel {
    let mut kb = KernelBuilder::new("win_broadcast", Dim3::linear(n));
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let w = kb.const_i(win as i32);
    let lane = kb.rem_i(tid, w);
    let zero = kb.const_i(0);
    let lead = kb.eq_i(lane, zero);
    let group = kb.div_i(tid, w);
    let ga = kb.index_addr(inp, group, 4);
    let v = kb.from_thread_or_mem(ga, lead, Delta::new(-1), Some(win));
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, v);
    kb.finish().expect("well-formed")
}

fn main() {
    let n = 1024u32;
    println!("Ablation: transmission window for a fromThreadOrMem broadcast\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>14}",
        "window", "cycles", "loads", "forwards", "loads avoided"
    );
    for win in [2u32, 4, 8, 16, 32, 64, 128, 256] {
        let kernel = broadcast_kernel(n, win);
        let mut mem = MemImage::with_words(2 * n as usize);
        let groups = n / win;
        mem.write_i32_slice(
            Addr(0),
            &(0..groups as i32).map(|g| g * 7).collect::<Vec<_>>(),
        );
        let report = Machine::new(Arch::DmtCgra, SystemConfig::default())
            .run(
                &kernel,
                LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4 * n)], mem),
            )
            .expect("runs");
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>13.1}%",
            win,
            report.cycles(),
            report.stats.global_loads,
            report.stats.eldst_forwards,
            100.0 * report.stats.eldst_forwards as f64
                / (report.stats.global_loads + report.stats.eldst_forwards) as f64
        );
    }
    println!("\nEach value is loaded once and reused window/Δ times (§4.2).");
}
