//! §5.2's ILP argument in numbers: "a fully utilized spatial architecture
//! composed of 140 units delivers a 140/32 = 4.375× speedup over a fully
//! utilized 32-wide GPU core".
//!
//! This report shows, per benchmark, how many operations each machine
//! actually retires per cycle and what fraction of its peak that is — the
//! dMT-CGRA's edge is precisely the utilization the elimination of
//! barriers and redundant loads buys back.

use dmt_bench::{run_suite, SEED};
use dmt_core::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let rows = run_suite(cfg, SEED);
    let grid_units = f64::from(cfg.grid.total_units());
    let lanes = f64::from(cfg.gpu.warp_width);
    println!("Functional-unit utilization (peak: SM = 32 lanes, CGRA = 140 units)\n");
    println!(
        "{:<12} {:>12} {:>8} {:>12} {:>8} {:>12} {:>8}",
        "benchmark", "SM ops/cyc", "util", "MT ops/cyc", "util", "dMT ops/cyc", "util"
    );
    for r in &rows {
        let sm = r.fermi.stats.gpu_thread_instructions as f64 / r.fermi.cycles() as f64;
        let mt = r.mt.stats.ops_per_cycle();
        let dmt = r.dmt.stats.ops_per_cycle();
        println!(
            "{:<12} {:>12.1} {:>7.1}% {:>12.1} {:>7.1}% {:>12.1} {:>7.1}%",
            r.name,
            sm,
            100.0 * sm / lanes,
            mt,
            100.0 * mt / grid_units,
            dmt,
            100.0 * dmt / grid_units,
        );
    }
    println!(
        "\nThe spatial fabric needs far lower *relative* utilization to win: its peak\n\
         is 4.375× the SM's, so matching the SM's absolute ops/cycle at 23% grid\n\
         utilization already breaks even (§5.2)."
    );
}
