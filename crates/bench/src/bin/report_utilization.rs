//! §5.2's ILP argument in numbers: "a fully utilized spatial architecture
//! composed of 140 units delivers a 140/32 = 4.375× speedup over a fully
//! utilized 32-wide GPU core".
//!
//! This report shows, per benchmark, how many operations each machine
//! actually retires per cycle and what fraction of its peak that is — the
//! dMT-CGRA's edge is precisely the utilization the elimination of
//! barriers and redundant loads buys back.
//!
//! With `--per-phase`, additionally breaks the multi-phase (barrier-
//! delimited) kernels down phase by phase: cycles, operations per cycle,
//! utilization and energy for every phase on every machine — the view
//! that shows *where* a shared-memory kernel loses its utilization (the
//! drain/reconfigure phases) while the single-phase dMT version streams.
//!
//! Pool-parallel over the suite grid (`--threads N`), deterministic
//! output; `--json PATH` records every job (schema v2: per-job `"phases"`
//! arrays ride along).

use dmt_bench::{run_suite_pooled_limited, RowOutcome, SEED};
use dmt_core::{Arch, EnergyModel, SystemConfig};
use dmt_runner::{Flag, JobMetrics, RunnerArgs};

/// Binary-specific flags, composing with the shared runner registry.
const FLAGS: &[Flag] = &[Flag::switch(
    "--per-phase",
    "phase-by-phase utilization and energy for multi-phase kernels",
)];

fn main() {
    let args = RunnerArgs::from_env_registry(FLAGS);
    args.forbid_trace("report_utilization");
    args.forbid_smoke("report_utilization");
    let per_phase = args.has_flag("--per-phase");
    let progress = args.progress_reporter();
    let cache = args.cache_store();
    let cfg = SystemConfig::default();
    let run = run_suite_pooled_limited(
        cfg,
        SEED,
        usize::MAX,
        args.effective_threads(),
        Some(&progress),
        cache.as_ref(),
        args.deadline_cycles,
    );
    let grid_units = f64::from(cfg.grid.total_units());
    let lanes = f64::from(cfg.gpu.warp_width);
    println!("Functional-unit utilization (peak: SM = 32 lanes, CGRA = 140 units)\n");
    println!(
        "{:<12} {:>12} {:>8} {:>12} {:>8} {:>12} {:>8}",
        "benchmark", "SM ops/cyc", "util", "MT ops/cyc", "util", "dMT ops/cyc", "util"
    );
    let rows = run.rows();
    for r in &rows {
        let (Some(fermi), Some(mt), Some(dmt)) =
            (r.fermi.metrics(), r.mt.metrics(), r.dmt.metrics())
        else {
            println!("{:<12} (infeasible at the default configuration)", r.name);
            continue;
        };
        let sm = fermi.stats.gpu_thread_instructions as f64 / fermi.cycles() as f64;
        let mt_ops = mt.stats.ops_per_cycle();
        let dmt_ops = dmt.stats.ops_per_cycle();
        println!(
            "{:<12} {:>12.1} {:>7.1}% {:>12.1} {:>7.1}% {:>12.1} {:>7.1}%",
            r.name,
            sm,
            100.0 * sm / lanes,
            mt_ops,
            100.0 * mt_ops / grid_units,
            dmt_ops,
            100.0 * dmt_ops / grid_units,
        );
    }
    println!(
        "\nThe spatial fabric needs far lower *relative* utilization to win: its peak\n\
         is 4.375× the SM's, so matching the SM's absolute ops/cycle at 23% grid\n\
         utilization already breaks even (§5.2)."
    );
    if per_phase {
        print_per_phase(&rows, &cfg, lanes, grid_units);
    }
    run.write_artifact(&args, "report_utilization");
    if let Some(c) = &cache {
        c.report();
    }
    dmt_bench::exit_on_incomplete(&rows);
}

/// The `--per-phase` section: phase-by-phase utilization and energy for
/// every benchmark where any machine runs more than one phase (the
/// multi-phase Table 3 kernels; the dMT single-phase row is printed
/// alongside for contrast).
fn print_per_phase(rows: &[RowOutcome], cfg: &SystemConfig, lanes: f64, grid_units: f64) {
    let model = EnergyModel::default();
    let ghz = cfg.clocks.core_ghz;
    println!("\nPer-phase utilization and energy (kernels with barrier-delimited phases)\n");
    for r in rows {
        let multi_phase = Arch::ALL
            .iter()
            .filter_map(|&a| r.outcome(a).metrics())
            .any(|m| m.stats.per_phase.len() > 1);
        if !multi_phase {
            continue;
        }
        for arch in Arch::ALL {
            let Some(m) = r.outcome(arch).metrics() else {
                continue;
            };
            print_machine_phases(&r.name, arch, m, &model, ghz, lanes, grid_units);
        }
    }
    println!(
        "single-phase dMT rows stream the whole launch through one configuration;\n\
         multi-phase rows pay a drain + reconfiguration at every barrier."
    );
}

fn print_machine_phases(
    bench: &str,
    arch: Arch,
    m: &JobMetrics,
    model: &EnergyModel,
    ghz: f64,
    lanes: f64,
    grid_units: f64,
) {
    let phases = &m.stats.per_phase;
    println!(
        "{bench} @ {arch} ({} phase{}, {} cycles total)",
        phases.len(),
        if phases.len() == 1 { "" } else { "s" },
        m.cycles()
    );
    println!(
        "  {:>5} {:>10} {:>6} {:>9} {:>7} {:>12}",
        "phase", "cycles", "cyc%", "ops/cyc", "util", "energy [uJ]"
    );
    let energies = model.evaluate_phases(arch.kind(), &m.stats, ghz);
    for (i, (p, e)) in phases.iter().zip(&energies).enumerate() {
        // The SM retires thread-instructions over 32 lanes; the fabrics
        // fire functional-unit ops over the 140-unit grid.
        let (ops, peak) = match arch {
            Arch::FermiSm => (
                p.gpu_thread_instructions as f64 / p.cycles.max(1) as f64,
                lanes,
            ),
            Arch::MtCgra | Arch::DmtCgra => (p.ops_per_cycle(), grid_units),
        };
        println!(
            "  {:>5} {:>10} {:>5.1}% {:>9.1} {:>6.1}% {:>12.3}",
            i,
            p.cycles,
            100.0 * p.cycles as f64 / m.cycles().max(1) as f64,
            ops,
            100.0 * ops / peak,
            e.total_j() * 1e6,
        );
    }
}
