//! §5.2's ILP argument in numbers: "a fully utilized spatial architecture
//! composed of 140 units delivers a 140/32 = 4.375× speedup over a fully
//! utilized 32-wide GPU core".
//!
//! This report shows, per benchmark, how many operations each machine
//! actually retires per cycle and what fraction of its peak that is — the
//! dMT-CGRA's edge is precisely the utilization the elimination of
//! barriers and redundant loads buys back.
//!
//! Pool-parallel over the suite grid (`--threads N`), deterministic
//! output; `--json PATH` records every job.

use dmt_bench::{run_suite_pooled, SEED};
use dmt_core::SystemConfig;
use dmt_runner::RunnerArgs;

fn main() {
    let args = RunnerArgs::from_env();
    args.forbid_smoke("report_utilization");
    let progress = args.progress_reporter();
    let cache = args.cache_store();
    let cfg = SystemConfig::default();
    let run = run_suite_pooled(
        cfg,
        SEED,
        usize::MAX,
        args.effective_threads(),
        Some(&progress),
        cache.as_ref(),
    );
    let grid_units = f64::from(cfg.grid.total_units());
    let lanes = f64::from(cfg.gpu.warp_width);
    println!("Functional-unit utilization (peak: SM = 32 lanes, CGRA = 140 units)\n");
    println!(
        "{:<12} {:>12} {:>8} {:>12} {:>8} {:>12} {:>8}",
        "benchmark", "SM ops/cyc", "util", "MT ops/cyc", "util", "dMT ops/cyc", "util"
    );
    let rows = run.rows();
    for r in &rows {
        let (Some(fermi), Some(mt), Some(dmt)) =
            (r.fermi.metrics(), r.mt.metrics(), r.dmt.metrics())
        else {
            println!("{:<12} (infeasible at the default configuration)", r.name);
            continue;
        };
        let sm = fermi.stats.gpu_thread_instructions as f64 / fermi.cycles() as f64;
        let mt_ops = mt.stats.ops_per_cycle();
        let dmt_ops = dmt.stats.ops_per_cycle();
        println!(
            "{:<12} {:>12.1} {:>7.1}% {:>12.1} {:>7.1}% {:>12.1} {:>7.1}%",
            r.name,
            sm,
            100.0 * sm / lanes,
            mt_ops,
            100.0 * mt_ops / grid_units,
            dmt_ops,
            100.0 * dmt_ops / grid_units,
        );
    }
    println!(
        "\nThe spatial fabric needs far lower *relative* utilization to win: its peak\n\
         is 4.375× the SM's, so matching the SM's absolute ops/cycle at 23% grid\n\
         utilization already breaks even (§5.2)."
    );
    run.write_artifact(&args, "report_utilization");
    if let Some(c) = &cache {
        c.report();
    }
    dmt_bench::exit_on_incomplete(&rows);
}
