//! Emits the full suite as CSV series over a chosen configuration sweep —
//! the raw data behind the ablation figures, ready for plotting.
//!
//! ```sh
//! cargo run -p dmt-bench --bin sweep_csv -- token_buffer > tb.csv
//! cargo run -p dmt-bench --bin sweep_csv -- inflight     > window.csv
//! cargo run -p dmt-bench --bin sweep_csv -- baseline     > baseline.csv
//! ```
//!
//! The whole sweep is one flat job grid on the `dmt-runner` pool
//! (`--threads N` / `DMT_THREADS`); CSV rows are emitted in grid order,
//! so output is byte-identical for any worker count. Points that are
//! infeasible at a swept configuration are omitted from the CSV and
//! reported on stderr. `--json PATH` records the full per-job artifact.
//! `--cache DIR` (or `DMT_CACHE`) makes the sweep resumable: completed
//! points are served from the result cache, so a killed sweep re-executes
//! only its missing jobs.

use dmt_bench::sweep::{skipped, sweep_run_limited, to_csv, SweepPoint};
use dmt_bench::SuiteRun;
use dmt_bench::SEED;
use dmt_runner::RunnerArgs;

fn main() {
    let args = RunnerArgs::from_env();
    args.forbid_trace("sweep_csv");
    args.forbid_smoke("sweep_csv");
    let threads = args.effective_threads();
    let progress = args.progress_reporter();
    let cache = args.cache_store();
    let which = args.rest.first().map_or("baseline", String::as_str);
    let run = |values: Vec<u32>,
               f: &mut dyn FnMut(&u32, &mut dmt_core::SystemConfig)|
     -> (SuiteRun, Vec<SweepPoint>) {
        sweep_run_limited(
            values,
            SEED,
            f,
            threads,
            Some(&progress),
            cache.as_ref(),
            args.deadline_cycles,
        )
    };
    let ((run, points), x_name) = match which {
        "token_buffer" => (
            run(vec![4, 8, 16, 32, 64], &mut |&tb, cfg| {
                cfg.fabric.token_buffer_entries = tb;
            }),
            "token_buffer",
        ),
        "inflight" => (
            run(vec![128, 512, 2048], &mut |&w, cfg| {
                cfg.fabric.inflight_threads = w;
            }),
            "inflight_threads",
        ),
        "baseline" => (
            sweep_run_limited(
                ["table2"],
                SEED,
                &mut |_, _| {},
                threads,
                Some(&progress),
                cache.as_ref(),
                args.deadline_cycles,
            ),
            "config",
        ),
        other => {
            eprintln!("unknown sweep {other}; use token_buffer | inflight | baseline");
            std::process::exit(1);
        }
    };
    print!("{}", to_csv(&points, x_name));
    for (x, bench, arch, err) in skipped(&points) {
        eprintln!("[sweep] skipped {bench} at {x_name}={x} on {arch}: {err}");
    }
    run.write_artifact(&args, &format!("sweep_csv:{which}"));
    if let Some(c) = &cache {
        c.report();
    }
}
