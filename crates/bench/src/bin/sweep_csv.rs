//! Emits the full suite as CSV series over a chosen configuration sweep —
//! the raw data behind the ablation figures, ready for plotting.
//!
//! ```sh
//! cargo run -p dmt-bench --bin sweep_csv -- token_buffer > tb.csv
//! cargo run -p dmt-bench --bin sweep_csv -- inflight     > window.csv
//! cargo run -p dmt-bench --bin sweep_csv -- baseline     > baseline.csv
//! ```

use dmt_bench::sweep::{sweep, to_csv};
use dmt_bench::SEED;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "baseline".into());
    let csv = match which.as_str() {
        "token_buffer" => {
            let pts = sweep([4u32, 8, 16, 32, 64], SEED, |&tb, cfg| {
                cfg.fabric.token_buffer_entries = tb;
            });
            to_csv(&pts, "token_buffer")
        }
        "inflight" => {
            let pts = sweep([128u32, 512, 2048], SEED, |&w, cfg| {
                cfg.fabric.inflight_threads = w;
            });
            to_csv(&pts, "inflight_threads")
        }
        "baseline" => {
            let pts = sweep(["table2"], SEED, |_, _| {});
            to_csv(&pts, "config")
        }
        other => {
            eprintln!("unknown sweep {other}; use token_buffer | inflight | baseline");
            std::process::exit(1);
        }
    };
    print!("{csv}");
}
