//! Fig 12 — energy efficiency of a dMT-CGRA core over the MT-CGRA and
//! Fermi SM (total task energy ratio, §5.2).
//!
//! Pool-parallel (`--threads` / `DMT_THREADS`), deterministic stdout,
//! infeasible points annotated; `--json PATH` writes the versioned
//! artifact, `--smoke` runs the first three benchmarks, `--cache DIR`
//! (or `DMT_CACHE`) serves completed jobs from the result cache.

use dmt_bench::{fig12_report, run_suite_pooled_limited, SEED};
use dmt_core::SystemConfig;
use dmt_runner::RunnerArgs;

fn main() {
    let args = RunnerArgs::from_env();
    args.forbid_trace("fig12_energy");
    let take = if args.smoke { 3 } else { usize::MAX };
    let threads = args.effective_threads();
    let progress = args.progress_reporter();
    let cache = args.cache_store();
    let run = run_suite_pooled_limited(
        SystemConfig::default(),
        SEED,
        take,
        threads,
        Some(&progress),
        cache.as_ref(),
        args.deadline_cycles,
    );
    let rows = run.rows();
    print!("{}", fig12_report(&rows));
    run.write_artifact(&args, "fig12_energy");
    if let Some(c) = &cache {
        c.report();
    }
    dmt_bench::exit_on_incomplete(&rows);
}
