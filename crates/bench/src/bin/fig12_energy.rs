//! Fig 12 — energy efficiency of a dMT-CGRA core over the MT-CGRA and
//! Fermi SM (total task energy ratio, §5.2).

use dmt_bench::{bar, geomean_of, run_suite, SuiteRow, SEED};
use dmt_core::SystemConfig;

fn main() {
    let rows = run_suite(SystemConfig::default(), SEED);
    println!("Figure 12: energy efficiency over the Fermi SM (one '#' = 0.25x)\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "benchmark", "fermi [uJ]", "mt [uJ]", "dmt [uJ]", "MT [x]", "dMT [x]"
    );
    for r in &rows {
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>8.2} {:>8.2}  dMT |{}",
            r.name,
            r.fermi.total_joules() * 1e6,
            r.mt.total_joules() * 1e6,
            r.dmt.total_joules() * 1e6,
            r.mt_efficiency(),
            r.dmt_efficiency(),
            bar(r.dmt_efficiency()),
        );
    }
    let gm_mt = geomean_of(&rows, |r: &SuiteRow| r.mt_efficiency());
    let gm_dmt = geomean_of(&rows, |r: &SuiteRow| r.dmt_efficiency());
    println!("\ngeomean: MT-CGRA {gm_mt:.2}x, dMT-CGRA {gm_dmt:.2}x");
    println!("paper:   MT-CGRA 3.5x,  dMT-CGRA 7.4x (max 33x)");

    // Per-category breakdown for the most energy-interesting kernel (the
    // paper highlights scan: large energy win without a speedup win).
    if let Some(scan) = rows.iter().find(|r| r.name == "scan") {
        println!("\nscan energy breakdown:");
        println!("-- Fermi SM --\n{}", scan.fermi.energy);
        println!("-- dMT-CGRA --\n{}", scan.dmt.energy);
    }
}
