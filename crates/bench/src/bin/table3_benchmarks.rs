//! Table 3 — the benchmark suite. Pass `--json PATH` for the inventory
//! as a versioned JSON document (current schema_version, suite
//! `table3_benchmarks`).

use dmt_runner::{Json, RunnerArgs, SCHEMA_VERSION};

fn main() {
    let args = RunnerArgs::from_env();
    args.forbid_trace("table3_benchmarks");
    args.forbid_deadline("table3_benchmarks");
    args.forbid_smoke("table3_benchmarks");
    args.forbid_threads("table3_benchmarks");
    args.forbid_progress("table3_benchmarks");
    args.forbid_cache("table3_benchmarks");
    println!("Table 3: benchmarks used to evaluate the system\n");
    print!("{}", dmt_kernels::suite::table3());
    if let Some(path) = &args.json {
        let benchmarks: Vec<Json> = dmt_kernels::suite::all()
            .iter()
            .map(|b| {
                let i = b.info();
                Json::obj()
                    .with("name", i.name)
                    .with("domain", i.domain)
                    .with("kernel", i.kernel)
                    .with("description", i.description)
            })
            .collect();
        let doc = Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("generator", "dmt-runner")
            .with("suite", "table3_benchmarks")
            .with("benchmarks", benchmarks);
        dmt_runner::write_json_logged(path, &doc);
    }
}
