//! Table 3 — the benchmark suite.

fn main() {
    println!("Table 3: benchmarks used to evaluate the system\n");
    print!("{}", dmt_kernels::suite::table3());
}
