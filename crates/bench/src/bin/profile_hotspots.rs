//! `profile_hotspots` — where the suite's token traffic concentrates.
//!
//! Runs the Table 3 suite (first three benchmarks with `--smoke`) on all
//! three machines with the `dmt-obs` profiler attached, and prints per
//! job the top-K hottest nodes (by firings) and edges (by tokens), plus
//! spill counts, calendar-queue marks and ring-occupancy maxima. Writes
//! the versioned profile artifact with `--json PATH` (default
//! `artifacts/BENCH_profile.json`):
//!
//! ```json
//! {
//!   "profile_schema_version": 1,
//!   "suite": "profile",
//!   "jobs": [ {"job": "dot/dmt_cgra", "seed": 42, "profile": {...}}, ... ],
//!   "meta": {"threads": ..., "wall_ms": ...}
//! }
//! ```
//!
//! The `"jobs"` array (and the whole stdout report) is byte-identical
//! for any `--threads N` — per-job observation merges by job index, and
//! the rankings are total-ordered. Profiling bypasses the result cache
//! by construction (a profile requires actually simulating), so
//! `--cache` is rejected.

use dmt_bench::{profile_artifact, profile_report, run_jobs_observed, suite_jobs, SEED};
use dmt_core::SystemConfig;
use dmt_runner::artifact::write_json_logged;
use dmt_runner::{Flag, RunnerArgs};
use std::path::PathBuf;

/// Binary-specific flags, composing with the shared runner registry.
const FLAGS: &[Flag] = &[Flag::with_value(
    "--top",
    "K",
    "rows per ranking (default 10)",
)];

fn main() {
    let args = RunnerArgs::from_env_registry(FLAGS);
    args.forbid_trace("profile_hotspots");
    args.forbid_deadline("profile_hotspots");
    args.forbid_cache("profile_hotspots");
    args.forbid_progress("profile_hotspots");
    let top = match args.flag_value("--top").map(str::parse::<usize>) {
        None => 10,
        Some(Ok(k)) if k > 0 => k,
        Some(_) => {
            eprintln!("error: --top requires a positive integer");
            std::process::exit(2);
        }
    };
    let take = if args.smoke { 3 } else { usize::MAX };
    let threads = args.effective_threads();
    let jobs = suite_jobs(SystemConfig::default(), SEED, take);
    let (run, observations) = run_jobs_observed(jobs, SEED, threads, false, true);
    print!("{}", profile_report(&run, &observations, top));
    let path = args
        .json
        .unwrap_or_else(|| PathBuf::from("artifacts/BENCH_profile.json"));
    write_json_logged(&path, &profile_artifact(&run, &observations, top));
    dmt_bench::exit_on_incomplete(&run.rows());
}
