//! Fig 11 — speedup of the MT-CGRA and dMT-CGRA architectures over the
//! Fermi baseline, per benchmark plus geomean.
//!
//! Runs on the `dmt-runner` worker pool: `--threads N` (or
//! `DMT_THREADS`) picks the worker count, and stdout is byte-identical
//! for any choice. Infeasible points are annotated inline instead of
//! aborting the suite. Pass `--smoke` to run only the first three
//! benchmarks (the CI smoke job uses this), `--json PATH` for the
//! versioned artifact, `--progress` for a live stderr ticker, and
//! `--cache DIR` (or `DMT_CACHE`) to serve completed jobs from the
//! content-addressed result cache — a warm rerun simulates nothing and
//! prints the same bytes. `--trace PATH` (or `DMT_TRACE`) additionally
//! exports a Chrome-trace/Perfetto JSON timeline of every run; tracing
//! bypasses the cache, since a trace requires actually simulating.

use dmt_bench::{
    fig11_report, job_label, run_jobs_observed, run_suite_pooled_limited, suite_jobs, SEED,
};
use dmt_core::SystemConfig;
use dmt_obs::chrome_trace_json;
use dmt_runner::{write_json, RunnerArgs};

fn main() {
    let args = RunnerArgs::from_env();
    let take = if args.smoke { 3 } else { usize::MAX };
    let threads = args.effective_threads();
    let progress = args.progress_reporter();
    let cache = args.cache_store();
    let trace = args.trace_path();
    let run = if let Some(path) = &trace {
        // Observed runs bypass the limit-aware pool; a requested budget
        // must not be silently dropped alongside them.
        args.forbid_deadline("fig11_speedup --trace");
        let jobs = suite_jobs(SystemConfig::default(), SEED, take);
        let (run, observations) = run_jobs_observed(jobs, SEED, threads, true, false);
        let named: Vec<(String, &dmt_obs::Tracer)> = run
            .jobs
            .iter()
            .zip(&observations)
            .map(|(spec, obs)| (job_label(spec), &obs.tracer))
            .collect();
        write_json(path, &chrome_trace_json(&named))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        let events: usize = observations.iter().map(|o| o.tracer.len()).sum();
        let dropped: u64 = observations.iter().map(|o| o.tracer.dropped()).sum();
        eprintln!(
            "[dmt-runner] wrote {} ({} events, {} dropped) — open in chrome://tracing or Perfetto",
            path.display(),
            events,
            dropped,
        );
        run
    } else {
        run_suite_pooled_limited(
            SystemConfig::default(),
            SEED,
            take,
            threads,
            Some(&progress),
            cache.as_ref(),
            args.deadline_cycles,
        )
    };
    let rows = run.rows();
    print!("{}", fig11_report(&rows));
    println!("\nSee EXPERIMENTS.md for the paper-vs-measured discussion.");
    run.write_artifact(&args, "fig11_speedup");
    if trace.is_none() {
        if let Some(c) = &cache {
            c.report();
        }
    }
    dmt_bench::exit_on_incomplete(&rows);
}
