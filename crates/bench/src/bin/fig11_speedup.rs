//! Fig 11 — speedup of the MT-CGRA and dMT-CGRA architectures over the
//! Fermi baseline, per benchmark plus geomean.
//!
//! Runs on the `dmt-runner` worker pool: `--threads N` (or
//! `DMT_THREADS`) picks the worker count, and stdout is byte-identical
//! for any choice. Infeasible points are annotated inline instead of
//! aborting the suite. Pass `--smoke` to run only the first three
//! benchmarks (the CI smoke job uses this), `--json PATH` for the
//! versioned artifact, `--progress` for a live stderr ticker.

use dmt_bench::{fig11_report, run_suite_pooled, SEED};
use dmt_core::SystemConfig;
use dmt_runner::RunnerArgs;

fn main() {
    let args = RunnerArgs::from_env();
    let take = if args.smoke { 3 } else { usize::MAX };
    let threads = args.effective_threads();
    let progress = args.progress_reporter();
    let run = run_suite_pooled(
        SystemConfig::default(),
        SEED,
        take,
        threads,
        Some(&progress),
    );
    let rows = run.rows();
    print!("{}", fig11_report(&rows));
    println!("\nSee EXPERIMENTS.md for the paper-vs-measured discussion.");
    run.write_artifact(&args, "fig11_speedup");
    dmt_bench::exit_on_incomplete(&rows);
}
