//! Fig 11 — speedup of the MT-CGRA and dMT-CGRA architectures over the
//! Fermi baseline, per benchmark plus geomean.
//!
//! Pass `--smoke` to run only the first three benchmarks — the CI smoke
//! job uses this to catch runtime regressions cheaply.

use dmt_bench::{bar, geomean_of, run_suite_take, SuiteRow, SEED};
use dmt_core::SystemConfig;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let take = if smoke { 3 } else { usize::MAX };
    let rows = run_suite_take(SystemConfig::default(), SEED, take);
    println!("Figure 11: speedup over the Fermi SM (one '#' = 0.25x)\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "benchmark", "fermi cyc", "mt cyc", "dmt cyc", "MT [x]", "dMT [x]"
    );
    for r in &rows {
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>8.2} {:>8.2}",
            r.name,
            r.fermi.cycles(),
            r.mt.cycles(),
            r.dmt.cycles(),
            r.mt_speedup(),
            r.dmt_speedup(),
        );
        println!("{:>14} MT  |{}", "", bar(r.mt_speedup()));
        println!("{:>14} dMT |{}", "", bar(r.dmt_speedup()));
    }
    let gm_mt = geomean_of(&rows, |r: &SuiteRow| r.mt_speedup());
    let gm_dmt = geomean_of(&rows, |r: &SuiteRow| r.dmt_speedup());
    println!("\ngeomean: MT-CGRA {gm_mt:.2}x, dMT-CGRA {gm_dmt:.2}x");
    println!("paper:   MT-CGRA 2.3x,  dMT-CGRA 4.5x (max 13.5x)");
    println!("\nSee EXPERIMENTS.md for the paper-vs-measured discussion.");
}
