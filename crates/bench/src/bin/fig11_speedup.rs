//! Fig 11 — speedup of the MT-CGRA and dMT-CGRA architectures over the
//! Fermi baseline, per benchmark plus geomean.
//!
//! Runs on the `dmt-runner` worker pool: `--threads N` (or
//! `DMT_THREADS`) picks the worker count, and stdout is byte-identical
//! for any choice. Infeasible points are annotated inline instead of
//! aborting the suite. Pass `--smoke` to run only the first three
//! benchmarks (the CI smoke job uses this), `--json PATH` for the
//! versioned artifact, `--progress` for a live stderr ticker, and
//! `--cache DIR` (or `DMT_CACHE`) to serve completed jobs from the
//! content-addressed result cache — a warm rerun simulates nothing and
//! prints the same bytes.

use dmt_bench::{fig11_report, run_suite_pooled, SEED};
use dmt_core::SystemConfig;
use dmt_runner::RunnerArgs;

fn main() {
    let args = RunnerArgs::from_env();
    let take = if args.smoke { 3 } else { usize::MAX };
    let threads = args.effective_threads();
    let progress = args.progress_reporter();
    let cache = args.cache_store();
    let run = run_suite_pooled(
        SystemConfig::default(),
        SEED,
        take,
        threads,
        Some(&progress),
        cache.as_ref(),
    );
    let rows = run.rows();
    print!("{}", fig11_report(&rows));
    println!("\nSee EXPERIMENTS.md for the paper-vs-measured discussion.");
    run.write_artifact(&args, "fig11_speedup");
    if let Some(c) = &cache {
        c.report();
    }
    dmt_bench::exit_on_incomplete(&rows);
}
