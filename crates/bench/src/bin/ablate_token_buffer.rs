//! Ablation (§4.3 / Fig 10): elevator token-buffer size.
//!
//! Sweeps the per-node token buffer and reports, for the two kernels with
//! the longest ΔTIDs (reduce's log-tree and matmul's column forwarding),
//! how many elevator nodes the compiler materializes, how many
//! communications spill to the Live Value Cache, and the resulting
//! performance.

use dmt_core::{compiler, Arch, SystemConfig};
use dmt_kernels::{matmul::MatMul, reduce::Reduce, Benchmark};

fn main() {
    println!("Ablation: elevator token-buffer size (Fig 10 machinery)\n");
    println!(
        "{:>7} | {:<10} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "buffer", "kernel", "cycles", "comm", "spilled", "lvc writes", "cascades"
    );
    for tb in [2u32, 4, 8, 16, 32, 64, 128] {
        let mut cfg = SystemConfig::default();
        cfg.fabric.token_buffer_entries = tb;
        for bench in [&Reduce::default() as &dyn Benchmark, &MatMul] {
            let kernel = bench.dmt_kernel();
            let program = compiler::compile(&kernel, &cfg).expect("compiles at every size");
            let comm_nodes = program.phases[0]
                .graph
                .node_ids()
                .filter(|&id| program.phases[0].graph.kind(id).comm().is_some())
                .count();
            let original = dmt_core::dfg::delta_stats::comm_sites(&kernel).len();
            let report = dmt_bench::run_one(bench, Arch::DmtCgra, cfg, dmt_bench::SEED);
            println!(
                "{:>7} | {:<10} {:>10} {:>8} {:>8} {:>10} {:>10}",
                tb,
                bench.info().name,
                report.cycles(),
                comm_nodes,
                program.phases[0].lvc_spilled.len(),
                report.stats.lvc_writes,
                comm_nodes.saturating_sub(original),
            );
        }
    }
    println!(
        "\nSmall buffers force cascades (extra elevator nodes) and, once the \
         control-unit pool\nis exhausted, Live-Value-Cache spills — at a \
         latency and energy cost. 16 entries\ncovers the common case (Fig 5)."
    );
}
