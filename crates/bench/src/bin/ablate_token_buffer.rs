//! Ablation (§4.3 / Fig 10): elevator token-buffer size.
//!
//! Sweeps the per-node token buffer and reports, for the two kernels with
//! the longest ΔTIDs (reduce's log-tree and matmul's column forwarding),
//! how many elevator nodes the compiler materializes, how many
//! communications spill to the Live Value Cache, and the resulting
//! performance.
//!
//! The 7 × 2 (buffer, kernel) grid runs on the `dmt-runner` pool
//! (`--threads N`); output order is fixed by the grid, not by completion.

use dmt_core::{compiler, Arch, SystemConfig};
use dmt_kernels::{matmul::MatMul, reduce::Reduce, Benchmark};
use dmt_runner::RunnerArgs;

const BUFFERS: [u32; 7] = [2, 4, 8, 16, 32, 64, 128];

struct Row {
    buffer: u32,
    kernel: &'static str,
    cycles: u64,
    comm_nodes: usize,
    spilled: usize,
    lvc_writes: u64,
    cascades: usize,
}

fn benches() -> [Box<dyn Benchmark>; 2] {
    [Box::new(Reduce::default()), Box::new(MatMul)]
}

fn main() {
    let args = RunnerArgs::from_env();
    args.forbid_trace("ablate_token_buffer");
    args.forbid_deadline("ablate_token_buffer");
    args.forbid_smoke("ablate_token_buffer");
    args.forbid_json("ablate_token_buffer");
    args.forbid_progress("ablate_token_buffer");
    args.forbid_cache("ablate_token_buffer");
    let per_buffer = benches().len();
    let n = BUFFERS.len() * per_buffer;
    let rows = dmt_runner::run_indexed(n, args.effective_threads(), |i| {
        let tb = BUFFERS[i / per_buffer];
        let bench = &benches()[i % per_buffer];
        let mut cfg = SystemConfig::default();
        cfg.fabric.token_buffer_entries = tb;
        let kernel = bench.dmt_kernel();
        let program = compiler::compile(&kernel, &cfg).expect("compiles at every size");
        let comm_nodes = program.phases[0]
            .graph
            .node_ids()
            .filter(|&id| program.phases[0].graph.kind(id).comm().is_some())
            .count();
        let original = dmt_core::dfg::delta_stats::comm_sites(&kernel).len();
        let report = dmt_bench::run_one(bench.as_ref(), Arch::DmtCgra, cfg, dmt_bench::SEED);
        Row {
            buffer: tb,
            kernel: bench.info().name,
            cycles: report.cycles(),
            comm_nodes,
            spilled: program.phases[0].lvc_spilled.len(),
            lvc_writes: report.stats.lvc_writes,
            cascades: comm_nodes.saturating_sub(original),
        }
    });

    println!("Ablation: elevator token-buffer size (Fig 10 machinery)\n");
    println!(
        "{:>7} | {:<10} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "buffer", "kernel", "cycles", "comm", "spilled", "lvc writes", "cascades"
    );
    for r in &rows {
        println!(
            "{:>7} | {:<10} {:>10} {:>8} {:>8} {:>10} {:>10}",
            r.buffer, r.kernel, r.cycles, r.comm_nodes, r.spilled, r.lvc_writes, r.cascades,
        );
    }
    println!(
        "\nSmall buffers force cascades (extra elevator nodes) and, once the \
         control-unit pool\nis exhausted, Live-Value-Cache spills — at a \
         latency and energy cost. 16 entries\ncovers the common case (Fig 5)."
    );
}
