//! `bench_hotpath` — simulator-throughput benchmark for the cycle engines.
//!
//! Measures *simulator wall-clock*, not architectural cycles: how many
//! simulated cycles per second each engine sustains on the smoke suite
//! (the first three Table 3 benchmarks × all three machines), plus the
//! end-to-end serial wall time of `fig11_speedup --smoke --threads 1` —
//! the quantity the hot-path overhaul (window-indexed matching stores,
//! calendar-queue events, active-node firing) is gated on.
//!
//! Emits `BENCH_hotpath.json` (default `artifacts/BENCH_hotpath.json`;
//! override with `--json PATH`):
//!
//! ```json
//! {
//!   "schema_version": 3,
//!   "kind": "bench_hotpath",
//!   "iters": 3,
//!   "baseline": { ... the vendored pre-overhaul measurement ... },
//!   "total": {
//!     "wall_us": ...,            // best-of-iters serial smoke wall time
//!     "sim_cycles": ...,         // summed per-job cycles (deterministic)
//!     "sim_cycles_per_sec": ...,
//!     "speedup_vs_baseline": ...  // baseline.wall_us / total.wall_us
//!   },
//!   "archs": {                   // smoke-scope per-arch aggregates
//!     "fermi_sm":  {"sim_cycles": ..., "wall_us": ..., "sim_cycles_per_sec": ...,
//!                   "fire_mode": "n/a", "delivery_mode": "n/a"},
//!     "mt_cgra":   { ..., "fire_mode": "per_token", "delivery_mode": "per_token",
//!                   "fire_event_share": 0.27 },
//!     "dmt_cgra":  { ... }
//!   },
//!   "mt_vs_sm_slowdown": ...,    // fermi_sm cyc/s ÷ mt_cgra cyc/s
//!   "jobs": [ {"bench", "arch", "cycles", "wall_us", "sim_cycles_per_sec"}, ... ]
//! }
//! ```
//!
//! Schema v2 added the `archs` block and the `mt_vs_sm_slowdown` ratio
//! (every v1 field unchanged): per-architecture sim-throughput over the
//! smoke per-job set, the series `ci/arch_gate.py` gates on and
//! `ci/trajectory.py` records push over push. Like `total`, the block
//! keeps the smoke scope even under `--full` so history stays
//! like-for-like.
//!
//! Schema v3 (every v2 field unchanged) annotates each fabric arch with
//! the *active* fire and delivery modes — `"batched"`, `"per_token"`, or
//! `"mixed"` when the smoke benches resolve the auto gates differently —
//! resolved exactly as the engine does: from the `DMT_*_FIRE` /
//! `DMT_*_DELIVERY` environment and each compiled program's replication
//! factor. It also records `fire_event_share`, a fire-loop share
//! estimate from the hot-spot profiler's counters on one untimed
//! observed pass: node firings ÷ (node firings + calendar-scheduled
//! logical events) — the fraction of per-cycle engine work spent firing
//! nodes as opposed to handling scheduled events (token deliveries,
//! unit releases, thread retirements). `fermi_sm` reports `"n/a"` modes
//! and no share (the SM engine has neither gate nor calendar).
//!
//! The baseline block is the pre-rewrite engine measured on the same
//! suite (`crates/bench/baselines/hotpath_serial.json`); the recorded
//! speedup is meaningful on comparable hardware and indicative anywhere.
//! `--iters N` (default 3) controls the best-of-N repetition.
//!
//! `--full` extends per-job coverage from the smoke trio to the whole
//! Table 3 suite (all nine benchmarks × three machines). The headline
//! `total` block and its baseline comparison always stay the serial
//! *smoke* measurement — the quantity the vendored baseline was captured
//! for and CI trends — so `--full` adds information without moving the
//! comparable number. It is intended for local profiling and scheduled
//! (non-gating) CI, not the push-path `bench-artifact` job.

use dmt_bench::{run_jobs_observed, run_suite_pooled, suite_jobs, try_run_one, SEED};
use dmt_core::fabric::{DeliveryMode, FireMode};
use dmt_core::{Arch, SystemConfig};
use dmt_kernels::suite;
use dmt_runner::artifact::{write_json_logged, Json};
use dmt_runner::{Flag, RunnerArgs};
use std::path::PathBuf;
use std::time::Instant;

/// The pre-overhaul serial measurement this binary reports speedup over.
const BASELINE: &str = include_str!("../../baselines/hotpath_serial.json");

/// Benchmarks in the smoke per-job set (the vendored baseline's scope).
const SMOKE_BENCHES: usize = 3;

/// Binary-specific flags, composing with the shared runner registry.
const FLAGS: &[Flag] = &[
    Flag::with_value("--iters", "N", "best-of-N timing repetitions (default 3)"),
    Flag::switch("--full", "per-job coverage of the whole Table 3 suite"),
];

struct Args {
    json: PathBuf,
    iters: u32,
    full: bool,
}

fn parse_args() -> Args {
    let args = RunnerArgs::from_env_registry(FLAGS);
    args.forbid_trace("bench_hotpath");
    args.forbid_deadline("bench_hotpath");
    // A throughput benchmark is serial and uncached by construction:
    // a cache hit or a second worker would time the wrong thing.
    args.forbid_threads("bench_hotpath");
    args.forbid_cache("bench_hotpath");
    args.forbid_progress("bench_hotpath");
    args.forbid_smoke("bench_hotpath");
    if let Some(first) = args.rest.first() {
        eprintln!("error: unknown argument {first:?}");
        std::process::exit(2);
    }
    let iters = match args.flag_value("--iters").map(str::parse::<u32>) {
        None => 3,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("error: --iters requires a positive integer");
            std::process::exit(2);
        }
    };
    let full = args.has_flag("--full");
    Args {
        json: args
            .json
            .unwrap_or_else(|| PathBuf::from("artifacts/BENCH_hotpath.json")),
        iters,
        full,
    }
}

fn main() {
    let args = parse_args();
    let baseline = Json::parse(BASELINE).expect("vendored baseline parses");
    let base_wall = baseline
        .get("wall_us")
        .and_then(Json::as_u64)
        .expect("baseline wall_us");
    let cfg = SystemConfig::default();

    // Per-job throughput: best-of-iters wall time for each (bench, arch)
    // — the smoke trio by default, the full Table 3 suite with --full.
    let take = if args.full { usize::MAX } else { SMOKE_BENCHES };
    let mut jobs = Vec::new();
    // Per-arch smoke-scope aggregates (cycles, wall) in Arch::ALL order.
    let mut arch_cycles = [0u64; Arch::ALL.len()];
    let mut arch_us = [0u64; Arch::ALL.len()];
    for (bi, b) in suite::all().into_iter().take(take).enumerate() {
        let name = b.info().name;
        for (ai, arch) in Arch::ALL.into_iter().enumerate() {
            let mut best_us = u64::MAX;
            let mut cycles = 0u64;
            for _ in 0..args.iters {
                let t = Instant::now();
                let report = try_run_one(b.as_ref(), arch, cfg, SEED)
                    .unwrap_or_else(|e| panic!("{name} on {arch}: {e}"));
                best_us = best_us.min(elapsed_us(t));
                cycles = report.stats.cycles;
            }
            println!(
                "{name:>12} {arch:<8} {cycles:>8} cycles in {best_us:>7} us ({:>10.0} cyc/s)",
                cps(cycles, best_us)
            );
            // The aggregates keep the smoke scope even under --full, like
            // the headline total, so the gated series is like-for-like.
            if bi < SMOKE_BENCHES {
                arch_cycles[ai] += cycles;
                arch_us[ai] += best_us;
            }
            jobs.push(
                Json::obj()
                    .with("bench", name)
                    .with("arch", arch.key())
                    .with("cycles", cycles)
                    .with("wall_us", best_us)
                    .with("sim_cycles_per_sec", cps(cycles, best_us)),
            );
        }
    }

    // Schema v3: the active fire/delivery modes per fabric arch and a
    // fire-loop share estimate from one untimed observed pass over the
    // smoke grid (profiling is excluded from every timed measurement).
    let (obs_run, observations) =
        run_jobs_observed(suite_jobs(cfg, SEED, SMOKE_BENCHES), SEED, 1, false, true);
    let mut arch_fires = [0u64; Arch::ALL.len()];
    let mut arch_sched = [0u64; Arch::ALL.len()];
    for (spec, obs) in obs_run.jobs.iter().zip(&observations) {
        let ai = Arch::ALL
            .iter()
            .position(|a| *a == spec.arch)
            .expect("suite arch");
        arch_fires[ai] += obs.profile.node_fires.values().sum::<u64>();
        arch_sched[ai] += obs.profile.calendar_scheduled;
    }

    let mut archs = Json::obj();
    for (ai, arch) in Arch::ALL.into_iter().enumerate() {
        let (fire_mode, delivery_mode) = arch_modes(arch, &cfg);
        let mut rec = Json::obj()
            .with("sim_cycles", arch_cycles[ai])
            .with("wall_us", arch_us[ai])
            .with("sim_cycles_per_sec", cps(arch_cycles[ai], arch_us[ai]))
            .with("fire_mode", fire_mode)
            .with("delivery_mode", delivery_mode);
        if arch != Arch::FermiSm {
            let denom = arch_fires[ai] + arch_sched[ai];
            if denom > 0 {
                rec = rec.with("fire_event_share", arch_fires[ai] as f64 / denom as f64);
            }
        }
        archs = archs.with(arch.key(), rec);
    }
    let sm_cps = cps(arch_cycles[0], arch_us[0]);
    let mt_cps = cps(arch_cycles[1], arch_us[1]);
    let mt_vs_sm = if mt_cps > 0.0 { sm_cps / mt_cps } else { 0.0 };
    let (mt_fire, mt_delivery) = arch_modes(Arch::MtCgra, &cfg);
    println!(
        "per-arch smoke throughput: SM {sm_cps:.0} cyc/s, MT-CGRA {mt_cps:.0} cyc/s \
         ({mt_vs_sm:.2}x slower, fire {mt_fire}, delivery {mt_delivery}), \
         dMT-CGRA {:.0} cyc/s",
        cps(arch_cycles[2], arch_us[2])
    );

    // The headline quantity: the whole smoke suite, serially, in-process —
    // the same work `fig11_speedup --smoke --threads 1` performs. This
    // stays the smoke scope even under --full so the baseline comparison
    // and the CI trajectory remain like-for-like.
    let mut total_us = u64::MAX;
    let mut total_cycles = 0u64;
    for _ in 0..args.iters {
        let t = Instant::now();
        let run = run_suite_pooled(cfg, SEED, SMOKE_BENCHES, 1, None, None);
        total_us = total_us.min(elapsed_us(t));
        total_cycles = run
            .outcomes
            .iter()
            .filter_map(|o| o.metrics().map(|m| m.cycles()))
            .sum();
    }
    let speedup = base_wall as f64 / total_us as f64;
    println!(
        "\nsmoke suite serial: {total_cycles} sim cycles in {total_us} us \
         ({:.0} cyc/s) — {speedup:.2}x vs pre-overhaul baseline ({base_wall} us)",
        cps(total_cycles, total_us)
    );

    let doc = Json::obj()
        .with("schema_version", 3u64)
        .with("generator", "bench_hotpath")
        .with("kind", "bench_hotpath")
        .with("iters", u64::from(args.iters))
        .with("full", args.full)
        .with("baseline", baseline)
        .with(
            "total",
            Json::obj()
                .with("wall_us", total_us)
                .with("sim_cycles", total_cycles)
                .with("sim_cycles_per_sec", cps(total_cycles, total_us))
                .with("speedup_vs_baseline", speedup),
        )
        .with("archs", archs)
        .with("mt_vs_sm_slowdown", mt_vs_sm)
        .with("jobs", Json::Arr(jobs));
    write_json_logged(&args.json, &doc);
}

/// The active fire/delivery mode keys a fabric arch resolves over the
/// smoke benches: the engine's own gates (environment override, else
/// auto by each compiled program's replication factor), aggregated to
/// one key — or `"mixed"` when the benches disagree. The Fermi SM has
/// neither gate and reports `"n/a"`.
fn arch_modes(arch: Arch, cfg: &SystemConfig) -> (String, String) {
    if arch == Arch::FermiSm {
        return ("n/a".into(), "n/a".into());
    }
    let (fire, delivery) = (FireMode::from_env(), DeliveryMode::from_env());
    let mut keys: Option<(&'static str, &'static str)> = None;
    let mut mixed = (false, false);
    for b in suite::all().into_iter().take(SMOKE_BENCHES) {
        let kernel = match arch {
            Arch::DmtCgra => b.dmt_kernel(),
            Arch::FermiSm | Arch::MtCgra => b.shared_kernel(),
        };
        let program = dmt_core::compiler::compile(&kernel, cfg).expect("smoke kernels compile");
        let fk = fire.key_for(program.replication);
        let dk = delivery.key_for(program.replication);
        match keys {
            None => keys = Some((fk, dk)),
            Some((f0, d0)) => {
                mixed.0 |= f0 != fk;
                mixed.1 |= d0 != dk;
            }
        }
    }
    let (f0, d0) = keys.expect("smoke set is non-empty");
    (
        if mixed.0 { "mixed" } else { f0 }.into(),
        if mixed.1 { "mixed" } else { d0 }.into(),
    )
}

fn elapsed_us(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn cps(cycles: u64, us: u64) -> f64 {
    if us == 0 {
        0.0
    } else {
        cycles as f64 * 1e6 / us as f64
    }
}
