//! Ablation (§3): dataflow-graph replication.
//!
//! "Replicating the kernel's dataflow graph enables the architecture to
//! better utilize the MT-CGRF grid" — this sweep runs the dMT suite with
//! the computed replication factor versus replication forced to 1.

use dmt_core::fabric::FabricMachine;
use dmt_core::{compiler, SystemConfig};
use dmt_kernels::suite;

fn main() {
    let cfg = SystemConfig::default();
    println!("Ablation: graph replication (computed R vs forced R = 1)\n");
    println!(
        "{:<12} {:>4} {:>12} {:>12} {:>8}",
        "benchmark", "R", "cycles (R)", "cycles (1)", "gain"
    );
    for b in suite::all() {
        let kernel = b.dmt_kernel();
        let program = compiler::compile(&kernel, &cfg).expect("suite kernels compile");
        let mut serial = program.clone();
        serial.replication = 1;
        let machine = FabricMachine::new(cfg);
        let w = b.workload(dmt_bench::SEED);
        let with_r = machine.run(&program, w.launch()).expect("runs");
        let without = machine.run(&serial, w.launch()).expect("runs");
        b.check(dmt_bench::SEED, &with_r.memory).expect("correct");
        b.check(dmt_bench::SEED, &without.memory).expect("correct");
        println!(
            "{:<12} {:>4} {:>12} {:>12} {:>7.2}x",
            b.info().name,
            program.replication,
            with_r.stats.cycles,
            without.stats.cycles,
            without.stats.cycles as f64 / with_r.stats.cycles as f64
        );
    }
    println!("\nReplication matters exactly where the kernel graph is small relative");
    println!("to the 140-unit grid; large graphs (matmul, lud, srad) run at R = 1.");
}
