//! Ablation (§3): dataflow-graph replication.
//!
//! "Replicating the kernel's dataflow graph enables the architecture to
//! better utilize the MT-CGRF grid" — this sweep runs the dMT suite with
//! the computed replication factor versus replication forced to 1.
//!
//! The per-benchmark measurements are independent, so they run on the
//! `dmt-runner` pool (`--threads N`); each worker compiles and simulates
//! its benchmark from scratch, and rows print in suite order regardless
//! of completion order.

use dmt_core::fabric::FabricMachine;
use dmt_core::{compiler, SystemConfig};
use dmt_kernels::suite;
use dmt_runner::RunnerArgs;

struct Row {
    name: &'static str,
    replication: u32,
    cycles_r: u64,
    cycles_1: u64,
}

fn main() {
    let args = RunnerArgs::from_env();
    args.forbid_trace("ablate_replication");
    args.forbid_deadline("ablate_replication");
    args.forbid_smoke("ablate_replication");
    args.forbid_json("ablate_replication");
    args.forbid_progress("ablate_replication");
    args.forbid_cache("ablate_replication");
    let cfg = SystemConfig::default();
    let n = suite::all().len();
    let rows = dmt_runner::run_indexed(n, args.effective_threads(), |i| {
        // Shared-nothing: each worker re-creates the benchmark, compiles
        // both program variants and builds its own machine.
        let b = &suite::all()[i];
        let kernel = b.dmt_kernel();
        let program = compiler::compile(&kernel, &cfg).expect("suite kernels compile");
        let mut serial = program.clone();
        serial.replication = 1;
        let machine = FabricMachine::new(cfg);
        let w = b.workload(dmt_bench::SEED);
        let with_r = machine.run(&program, w.launch()).expect("runs");
        let without = machine.run(&serial, w.launch()).expect("runs");
        b.check(dmt_bench::SEED, &with_r.memory).expect("correct");
        b.check(dmt_bench::SEED, &without.memory).expect("correct");
        Row {
            name: b.info().name,
            replication: program.replication,
            cycles_r: with_r.stats.cycles,
            cycles_1: without.stats.cycles,
        }
    });

    println!("Ablation: graph replication (computed R vs forced R = 1)\n");
    println!(
        "{:<12} {:>4} {:>12} {:>12} {:>8}",
        "benchmark", "R", "cycles (R)", "cycles (1)", "gain"
    );
    for r in &rows {
        println!(
            "{:<12} {:>4} {:>12} {:>12} {:>7.2}x",
            r.name,
            r.replication,
            r.cycles_r,
            r.cycles_1,
            r.cycles_1 as f64 / r.cycles_r as f64
        );
    }
    println!("\nReplication matters exactly where the kernel graph is small relative");
    println!("to the 140-unit grid; large graphs (matmul, lud, srad) run at R = 1.");
}
