//! Ablation (§3): in-flight thread window.
//!
//! The matching stores admit `inflight_threads` concurrent threads; the
//! window must cover memory latency × issue rate or the fabric stalls on
//! retirement. This sweep shows throughput saturating as the window grows
//! — massive multithreading is what hides the memory system on a CGRA.
//!
//! A kernel whose |ΔTID| reaches the window cannot compile at that point
//! (the fabric would deadlock), so such benchmarks are skipped and the
//! geomean is taken over the compilable subset, with a note.
//!
//! The whole sweep (7 windows × 9 benchmarks × 3 machines = 189 jobs) is
//! one flat `dmt-runner` grid: `--threads N` parallelizes it while the
//! printed table stays byte-identical. `--json PATH` records every job;
//! `--cache DIR` (or `DMT_CACHE`) makes the sweep resumable and skips
//! previously-completed points.

use dmt_bench::{geomean_rows, RowOutcome, SEED};
use dmt_core::SystemConfig;
use dmt_runner::RunnerArgs;

const WINDOWS: [u32; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

fn main() {
    let args = RunnerArgs::from_env();
    args.forbid_trace("ablate_inflight");
    args.forbid_smoke("ablate_inflight");
    let progress = args.progress_reporter();
    let cache = args.cache_store();
    let jobs: Vec<_> = WINDOWS
        .iter()
        .flat_map(|&w| {
            let mut cfg = SystemConfig::default();
            cfg.fabric.inflight_threads = w;
            dmt_bench::suite_jobs(cfg, SEED, usize::MAX)
        })
        .collect();
    let per_window = jobs.len() / WINDOWS.len();
    let run = dmt_bench::run_jobs_pooled_limited(
        jobs,
        SEED,
        args.effective_threads(),
        Some(&progress),
        cache.as_ref(),
        args.deadline_cycles,
    );

    println!("Ablation: in-flight thread window\n");
    println!("{:>8} {:>12} {:>12}", "window", "dMT geomean", "MT geomean");
    for (i, w) in WINDOWS.iter().enumerate() {
        let lo = i * per_window;
        let rows = RowOutcome::from_jobs(
            &run.jobs[lo..lo + per_window],
            &run.outcomes[lo..lo + per_window],
        );
        let (ok, skipped): (Vec<_>, Vec<_>) = rows.into_iter().partition(RowOutcome::complete);
        let note = if skipped.is_empty() {
            String::new()
        } else {
            let names: Vec<&str> = skipped.iter().map(|r| r.name.as_str()).collect();
            format!("  (skipped: {})", names.join(", "))
        };
        println!(
            "{:>8} {:>11.2}x {:>11.2}x{}",
            w,
            geomean_rows(&ok, RowOutcome::dmt_speedup),
            geomean_rows(&ok, RowOutcome::mt_speedup),
            note,
        );
    }
    run.write_artifact(&args, "ablate_inflight");
    if let Some(c) = &cache {
        c.report();
    }
}
