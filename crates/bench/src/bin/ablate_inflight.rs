//! Ablation (§3): in-flight thread window.
//!
//! The matching stores admit `inflight_threads` concurrent threads; the
//! window must cover memory latency × issue rate or the fabric stalls on
//! retirement. This sweep shows throughput saturating as the window grows
//! — massive multithreading is what hides the memory system on a CGRA.
//!
//! A kernel whose |ΔTID| reaches the window cannot compile at that point
//! (the fabric would deadlock), so such benchmarks are skipped and the
//! geomean is taken over the compilable subset, with a note.

use dmt_bench::{geomean_of, try_suite_row, SuiteRow, SEED};
use dmt_core::SystemConfig;
use dmt_kernels::suite;

fn main() {
    println!("Ablation: in-flight thread window\n");
    println!("{:>8} {:>12} {:>12}", "window", "dMT geomean", "MT geomean");
    for w in [64u32, 128, 256, 512, 1024, 2048, 4096] {
        let mut cfg = SystemConfig::default();
        cfg.fabric.inflight_threads = w;
        let mut rows = Vec::new();
        let mut skipped = Vec::new();
        for b in suite::all() {
            match try_suite_row(b.as_ref(), cfg, SEED) {
                Ok(row) => rows.push(row),
                Err(_) => skipped.push(b.info().name),
            }
        }
        let note = if skipped.is_empty() {
            String::new()
        } else {
            format!("  (skipped: {})", skipped.join(", "))
        };
        println!(
            "{:>8} {:>11.2}x {:>11.2}x{}",
            w,
            geomean_of(&rows, |r: &SuiteRow| r.dmt_speedup()),
            geomean_of(&rows, |r: &SuiteRow| r.mt_speedup()),
            note,
        );
    }
}
