//! Ablation (§3): in-flight thread window.
//!
//! The matching stores admit `inflight_threads` concurrent threads; the
//! window must cover memory latency × issue rate or the fabric stalls on
//! retirement. This sweep shows throughput saturating as the window grows
//! — massive multithreading is what hides the memory system on a CGRA.

use dmt_bench::{geomean_of, run_suite, SuiteRow, SEED};
use dmt_core::SystemConfig;

fn main() {
    println!("Ablation: in-flight thread window\n");
    println!(
        "{:>8} {:>12} {:>12}",
        "window", "dMT geomean", "MT geomean"
    );
    for w in [64u32, 128, 256, 512, 1024, 2048, 4096] {
        let mut cfg = SystemConfig::default();
        cfg.fabric.inflight_threads = w;
        let rows = run_suite(cfg, SEED);
        println!(
            "{:>8} {:>11.2}x {:>11.2}x",
            w,
            geomean_of(&rows, |r: &SuiteRow| r.dmt_speedup()),
            geomean_of(&rows, |r: &SuiteRow| r.mt_speedup()),
        );
    }
}
