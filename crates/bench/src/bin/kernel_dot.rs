//! Dumps a benchmark kernel's dataflow graph as Graphviz DOT (elevator
//! nodes in blue, eLDST in green, memory in wheat — compare with the
//! paper's Fig 6a / Fig 3).
//!
//! ```sh
//! cargo run -p dmt-bench --bin kernel_dot -- scan dmt > scan.dot
//! dot -Tsvg scan.dot -o scan.svg
//! ```

use dmt_core::dfg::pretty;
use dmt_kernels::suite;
use dmt_runner::RunnerArgs;

fn main() {
    // Shared-registry parsing for uniform --help and flag rejection; the
    // runner flags themselves are meaningless for a one-graph dump.
    let args = RunnerArgs::from_env();
    args.forbid_trace("kernel_dot");
    args.forbid_deadline("kernel_dot");
    args.forbid_threads("kernel_dot");
    args.forbid_json("kernel_dot");
    args.forbid_cache("kernel_dot");
    args.forbid_progress("kernel_dot");
    args.forbid_smoke("kernel_dot");
    let name = args.rest.first().map(String::as_str).unwrap_or("scan");
    let variant = args.rest.get(1).map(String::as_str).unwrap_or("dmt");
    let Some(bench) = suite::all()
        .into_iter()
        .find(|b| b.info().name.eq_ignore_ascii_case(name))
    else {
        eprintln!(
            "unknown benchmark {name}; available: {}",
            suite::all()
                .iter()
                .map(|b| b.info().name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };
    let kernel = match variant {
        "shared" => bench.shared_kernel(),
        _ => bench.dmt_kernel(),
    };
    print!("{}", pretty::to_dot(&kernel));
}
