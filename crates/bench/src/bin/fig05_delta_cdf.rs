//! Fig 5 — cumulative distribution of ΔTID transmission distances across
//! the benchmark suite. The paper reports that 87% of communicated tokens
//! travel a distance a 16-entry token buffer can cover without cascading.
//!
//! Pass `--json PATH` to also write the sites and CDFs as a versioned
//! JSON document (current schema_version, suite `fig05_delta_cdf`).

use dmt_bench::suite_comm_sites;
use dmt_core::dfg::delta_stats::{cdf, fraction_within, DistanceMetric};
use dmt_runner::{Json, RunnerArgs, SCHEMA_VERSION};

const METRICS: [(DistanceMetric, &str, &str); 2] = [
    (
        DistanceMetric::Euclidean,
        "euclidean",
        "Euclidean (paper's Fig 5 metric)",
    ),
    (
        DistanceMetric::Linear,
        "linear",
        "linear TID shift (buffer sizing)",
    ),
];

fn main() {
    let args = RunnerArgs::from_env();
    args.forbid_trace("fig05_delta_cdf");
    args.forbid_deadline("fig05_delta_cdf");
    args.forbid_smoke("fig05_delta_cdf");
    args.forbid_threads("fig05_delta_cdf");
    args.forbid_progress("fig05_delta_cdf");
    args.forbid_cache("fig05_delta_cdf");
    let sites = suite_comm_sites();
    println!(
        "Figure 5: CDF of transmission distances ({} communication sites, \
         dynamic-token weighted)\n",
        sites.len()
    );
    for (metric, _, name) in METRICS {
        println!("-- {name} --");
        println!("{:>10} {:>12}", "distance", "cumulative");
        for p in cdf(&sites, metric) {
            println!("{:>10.1} {:>11.1}%", p.distance, p.cumulative * 100.0);
        }
        let f16 = fraction_within(&sites, metric, 16.0);
        println!(
            "fraction within a 16-entry token buffer: {:.1}%  (paper: 87%)\n",
            f16 * 100.0
        );
    }
    println!("per-benchmark sites:");
    for s in &sites {
        println!(
            "  {:<12} {:<9} Δ{:<14} linear {:>3}  window {:>4}  tokens {}",
            s.kernel,
            s.primitive,
            format!("({},{},{})", s.delta.dx, s.delta.dy, s.delta.dz),
            s.linear_distance,
            s.window,
            s.dynamic_tokens
        );
    }

    if let Some(path) = &args.json {
        let metrics_json = Json::Obj(
            METRICS
                .iter()
                .map(|&(metric, key, _)| {
                    let points: Vec<Json> = cdf(&sites, metric)
                        .into_iter()
                        .map(|p| {
                            Json::obj()
                                .with("distance", p.distance)
                                .with("cumulative", p.cumulative)
                        })
                        .collect();
                    (
                        key.to_owned(),
                        Json::obj()
                            .with("cdf", points)
                            .with("fraction_within_16", fraction_within(&sites, metric, 16.0)),
                    )
                })
                .collect(),
        );
        let sites_json: Vec<Json> = sites
            .iter()
            .map(|s| {
                Json::obj()
                    .with("kernel", s.kernel.as_str())
                    .with("primitive", s.primitive)
                    .with(
                        "delta",
                        vec![
                            Json::F64(f64::from(s.delta.dx)),
                            Json::F64(f64::from(s.delta.dy)),
                            Json::F64(f64::from(s.delta.dz)),
                        ],
                    )
                    .with("euclidean", s.euclidean)
                    .with("linear_distance", s.linear_distance)
                    .with("window", s.window)
                    .with("dynamic_tokens", s.dynamic_tokens)
            })
            .collect();
        let doc = Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("generator", "dmt-runner")
            .with("suite", "fig05_delta_cdf")
            .with("site_count", sites.len())
            .with("metrics", metrics_json)
            .with("sites", sites_json);
        dmt_runner::write_json_logged(path, &doc);
    }
}
