//! Fig 5 — cumulative distribution of ΔTID transmission distances across
//! the benchmark suite. The paper reports that 87% of communicated tokens
//! travel a distance a 16-entry token buffer can cover without cascading.

use dmt_bench::suite_comm_sites;
use dmt_core::dfg::delta_stats::{cdf, fraction_within, DistanceMetric};

fn main() {
    let sites = suite_comm_sites();
    println!(
        "Figure 5: CDF of transmission distances ({} communication sites, \
         dynamic-token weighted)\n",
        sites.len()
    );
    for (metric, name) in [
        (
            DistanceMetric::Euclidean,
            "Euclidean (paper's Fig 5 metric)",
        ),
        (DistanceMetric::Linear, "linear TID shift (buffer sizing)"),
    ] {
        println!("-- {name} --");
        println!("{:>10} {:>12}", "distance", "cumulative");
        for p in cdf(&sites, metric) {
            println!("{:>10.1} {:>11.1}%", p.distance, p.cumulative * 100.0);
        }
        let f16 = fraction_within(&sites, metric, 16.0);
        println!(
            "fraction within a 16-entry token buffer: {:.1}%  (paper: 87%)\n",
            f16 * 100.0
        );
    }
    println!("per-benchmark sites:");
    for s in &sites {
        println!(
            "  {:<12} {:<9} Δ{:<14} linear {:>3}  window {:>4}  tokens {}",
            s.kernel,
            s.primitive,
            format!("({},{},{})", s.delta.dx, s.delta.dy, s.delta.dz),
            s.linear_distance,
            s.window,
            s.dynamic_tokens
        );
    }
}
