//! Criterion benches regenerating each evaluation artifact.
//!
//! * `fig11/<kernel>/<arch>` — the per-benchmark kernel runs behind the
//!   paper's Fig 11 (speedup) and Fig 12 (energy; same runs, the energy
//!   model is evaluated on the counters).
//! * `fig05/delta_cdf` — the ΔTID statistics sweep behind Fig 5.
//! * `table2/render`, `table3/render` — the table generators.
//!
//! The measured quantity is simulator wall-time; the architectural numbers
//! (cycles, joules) are printed by the corresponding `--bin` harnesses and
//! recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use dmt_bench::{run_one, run_suite_pooled, suite_comm_sites, SEED};
use dmt_core::dfg::delta_stats::{cdf, DistanceMetric};
use dmt_core::{Arch, SystemConfig};
use dmt_kernels::suite;
use std::time::Duration;

fn fig11_fig12_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for b in suite::all() {
        let name = b.info().name;
        for arch in [Arch::FermiSm, Arch::MtCgra, Arch::DmtCgra] {
            g.bench_function(format!("{name}/{arch}"), |bench| {
                bench.iter(|| run_one(b.as_ref(), arch, SystemConfig::default(), SEED));
            });
        }
    }
    g.finish();
}

fn fig05_delta_stats(c: &mut Criterion) {
    c.bench_function("fig05/delta_cdf", |bench| {
        bench.iter(|| {
            let sites = suite_comm_sites();
            (
                cdf(&sites, DistanceMetric::Euclidean),
                cdf(&sites, DistanceMetric::Linear),
            )
        });
    });
}

fn tables(c: &mut Criterion) {
    c.bench_function("table2/render", |bench| {
        bench.iter(|| SystemConfig::default().to_table());
    });
    c.bench_function("table3/render", |bench| {
        bench.iter(suite::table3);
    });
}

/// The hot-path headline: the serial smoke suite end to end — the same
/// quantity `bench_hotpath` records in `BENCH_hotpath.json` and the
/// engine overhaul is gated on.
fn hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(2500));
    g.bench_function("fig11_smoke_serial", |bench| {
        bench.iter(|| run_suite_pooled(SystemConfig::default(), SEED, 3, 1, None, None));
    });
    g.finish();
}

criterion_group!(
    benches,
    fig11_fig12_runs,
    fig05_delta_stats,
    tables,
    hotpath
);
criterion_main!(benches);
