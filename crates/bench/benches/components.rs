//! Micro-benchmarks of the simulator's building blocks: compiler
//! pipeline, fabric execution, the reference interpreter, and the memory
//! hierarchy booking machine.

use criterion::{criterion_group, criterion_main, Criterion};

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}
use dmt_core::common::config::WritePolicy;
use dmt_core::common::geom::{Delta, Dim3};
use dmt_core::common::ids::Addr;
use dmt_core::fabric::FabricMachine;
use dmt_core::mem::{AccessOutcome, MemSystem};
use dmt_core::{compiler, dfg, KernelBuilder, LaunchInput, MemImage, SystemConfig, Word};

fn sample_kernel() -> dmt_core::Kernel {
    let n = 256u32;
    let mut kb = KernelBuilder::new("sample", Dim3::linear(n));
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let a = kb.index_addr(inp, tid, 4);
    let x = kb.load_global(a);
    let prev = kb.from_thread_or_const(x, Delta::new(-1), Word::from_i32(0), None);
    let s = kb.add_i(prev, x);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, s);
    kb.finish().expect("well-formed")
}

fn sample_input() -> LaunchInput {
    let mut mem = MemImage::with_words(512);
    mem.write_i32_slice(Addr(0), &(0..256).collect::<Vec<_>>());
    LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(1024)], mem)
}

fn bench_compiler(c: &mut Criterion) {
    let kernel = sample_kernel();
    let cfg = SystemConfig::default();
    c.bench_function("compiler/compile", |b| {
        b.iter(|| compiler::compile(&kernel, &cfg).expect("compiles"));
    });
}

fn bench_fabric(c: &mut Criterion) {
    let kernel = sample_kernel();
    let cfg = SystemConfig::default();
    let program = compiler::compile(&kernel, &cfg).expect("compiles");
    let machine = FabricMachine::new(cfg);
    c.bench_function("fabric/neighbour_sum_256", |b| {
        b.iter(|| machine.run(&program, sample_input()).expect("runs"));
    });
}

fn bench_interp(c: &mut Criterion) {
    let kernel = sample_kernel();
    c.bench_function("interp/neighbour_sum_256", |b| {
        b.iter(|| dfg::interp::run(&kernel, sample_input()).expect("runs"));
    });
}

fn bench_memory(c: &mut Criterion) {
    c.bench_function("mem/streaming_loads_4k", |b| {
        b.iter(|| {
            let mut m =
                MemSystem::new(&SystemConfig::default().mem, WritePolicy::WriteBackAllocate);
            let mut last = 0;
            for i in 0..4096u64 {
                if let AccessOutcome::Done(t) = m.load(Addr(i * 4), i) {
                    last = t;
                }
            }
            last
        });
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_compiler, bench_fabric, bench_interp, bench_memory
}
criterion_main!(benches);
