//! In-memory job table, admission queue and retry schedule.
//!
//! Everything mutable lives in [`Inner`] behind one mutex (see
//! [`crate::server`]); the cache on disk is the durable half — this
//! table only tracks the current process's view.

use dmt_obs::Histogram;
use dmt_runner::JobSpec;
use std::collections::HashMap;
use std::time::Instant;

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker (including waiting on a retry
    /// backoff after a transient failure).
    Queued,
    /// An executor is simulating it now.
    Running,
    /// Finished; its artifact is in the cache.
    Done,
    /// Every attempt failed transiently (panic, cancellation or an
    /// injected fault) and the retry budget is spent; nothing was
    /// cached, so a resubmission after restart tries again.
    Failed,
    /// The run exceeded its simulated-cycle deadline. Permanent for the
    /// budget it ran under — retrying the same budget would time out the
    /// same way — and never cached.
    TimedOut,
}

impl JobState {
    /// The wire name of this state.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::TimedOut => "timed_out",
        }
    }
}

/// One finished executor attempt, kept so `status` can report the full
/// retry history of a job.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// The attempt's outcome status (`ok`, `infeasible`, `failed`,
    /// `timed_out`).
    pub status: &'static str,
    /// Executor wall-clock of the attempt, in milliseconds.
    pub wall_ms: u64,
    /// The attempt's error message, when it did not complete.
    pub error: Option<String>,
}

/// Book-keeping for one admitted job.
#[derive(Debug)]
pub struct JobEntry {
    /// The full spec (kept so the dispatcher and the cache can re-derive
    /// paths and costs from the hash alone).
    pub spec: JobSpec,
    /// Where the job is in its lifecycle.
    pub state: JobState,
    /// Executor invocations so far (0 for cache hits).
    pub attempts: u32,
    /// The failure message, when `state` is [`JobState::Failed`] or
    /// [`JobState::TimedOut`] (also set while a retry is pending).
    pub error: Option<String>,
    /// Executor wall-clock of the last attempt, once one has finished
    /// (`None` while queued/running and for cache hits).
    pub wall_ms: Option<u64>,
    /// Per-job simulated-cycle budget from the submit request; `None`
    /// falls back to the daemon default.
    pub deadline_cycles: Option<u64>,
    /// Every finished attempt, oldest first.
    pub history: Vec<AttemptRecord>,
}

/// A transiently-failed job waiting out its retry backoff.
#[derive(Debug)]
pub struct Retry {
    /// The job's content hash.
    pub hash: u64,
    /// When the dispatcher may re-queue it.
    pub due: Instant,
}

/// The mutable server state, guarded by the server's mutex.
#[derive(Debug, Default)]
pub struct Inner {
    /// Every job this process has seen, by content hash.
    pub jobs: HashMap<u64, JobEntry>,
    /// Hashes admitted but not yet handed to the worker pool, in
    /// admission order.
    pub queue: Vec<u64>,
    /// Transiently-failed jobs waiting out their backoff; the
    /// dispatcher promotes them back into `queue` when due.
    pub retries: Vec<Retry>,
    /// Jobs admitted and not yet finished (queued + running + awaiting
    /// retry) — the quantity the admission bound applies to.
    pub outstanding: usize,
    /// Set by `drain`: stop admitting, finish what is in flight.
    pub draining: bool,
    /// Jobs executed to completion by this process.
    pub done: u64,
    /// Jobs that exhausted their retry budget.
    pub failed: u64,
    /// Jobs that exceeded their simulated-cycle deadline.
    pub timed_out: u64,
    /// Queue-full submit rejections — also the deterministic ordinal the
    /// `retry_after_ms` jitter is derived from.
    pub rejections: u64,
    /// Per-verb request-latency histograms (microseconds), indexed by
    /// [`crate::protocol::Request::verb_index`].
    pub latency: [Histogram; crate::protocol::VERBS.len()],
    /// Request lines that failed to parse (no verb to attribute).
    pub bad_requests: u64,
}
