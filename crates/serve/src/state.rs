//! In-memory job table and admission queue.
//!
//! Everything mutable lives in [`Inner`] behind one mutex (see
//! [`crate::server`]); the cache on disk is the durable half — this
//! table only tracks the current process's view.

use dmt_obs::Histogram;
use dmt_runner::JobSpec;
use std::collections::HashMap;

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// An executor is simulating it now.
    Running,
    /// Finished; its artifact is in the cache.
    Done,
    /// The executor panicked; nothing was cached.
    Failed,
}

impl JobState {
    /// The wire name of this state.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// Book-keeping for one admitted job.
#[derive(Debug)]
pub struct JobEntry {
    /// The full spec (kept so the dispatcher and the cache can re-derive
    /// paths and costs from the hash alone).
    pub spec: JobSpec,
    /// Where the job is in its lifecycle.
    pub state: JobState,
    /// Executor invocations so far (0 for cache hits).
    pub attempts: u32,
    /// The failure message, when `state` is [`JobState::Failed`].
    pub error: Option<String>,
    /// Executor wall-clock of the last attempt, once one has finished
    /// (`None` while queued/running and for cache hits).
    pub wall_ms: Option<u64>,
}

/// The mutable server state, guarded by the server's mutex.
#[derive(Debug, Default)]
pub struct Inner {
    /// Every job this process has seen, by content hash.
    pub jobs: HashMap<u64, JobEntry>,
    /// Hashes admitted but not yet handed to the worker pool, in
    /// admission order.
    pub queue: Vec<u64>,
    /// Jobs admitted and not yet finished (queued + running) — the
    /// quantity the admission bound applies to.
    pub outstanding: usize,
    /// Set by `drain`: stop admitting, finish what is in flight.
    pub draining: bool,
    /// Jobs executed to completion by this process.
    pub done: u64,
    /// Jobs whose executor panicked.
    pub failed: u64,
    /// Per-verb request-latency histograms (microseconds), indexed by
    /// [`crate::protocol::Request::verb_index`].
    pub latency: [Histogram; crate::protocol::VERBS.len()],
    /// Request lines that failed to parse (no verb to attribute).
    pub bad_requests: u64,
}
