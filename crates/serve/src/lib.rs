//! # dmt-serve — simulation as a service
//!
//! A long-running daemon that exposes the batch runner over TCP: clients
//! speak line-delimited JSON (one request object per line, one compact
//! response object per line), and every simulation the daemon runs is
//! memoized in the runner's content-addressed result
//! [`Cache`](dmt_runner::Cache) — a
//! duplicate `submit` is answered from disk without simulating, across
//! restarts as well as within one process. The five verbs are `submit`,
//! `status`, `result`, `metrics` and `drain`; see [`protocol`] for the
//! wire shapes. `metrics` is the live observability surface: queue
//! pressure, lifecycle totals, cache hit/miss/schema-invalidated
//! counts, and per-verb request-latency histograms
//! ([`dmt_obs::Histogram`], log2-bucketed microseconds); finished jobs
//! also carry their executor wall-clock in `status` responses.
//!
//! Admission is bounded: at most `--queue-depth` jobs may be queued or
//! running, and a `submit` that would exceed the bound is rejected whole
//! with `{"ok":false,...,"retry_after_ms":N}` (the hint carries
//! deterministic jitter so rejected clients spread their retries) —
//! clients back off and retry rather than the daemon buffering
//! unboundedly. Admitted batches are cost-sorted (longest first, from
//! the cache's observed per-key costs) and executed index-ordered on
//! the runner's worker pool, so a grid submitted over the wire is
//! scheduled exactly like `fig11_speedup` would schedule it.
//!
//! ## Robustness
//!
//! Every executor attempt runs under `catch_unwind` with a per-job
//! simulated-cycle budget ([`dmt_common::RunLimits`]): a panicking or
//! transiently-failing job (injected fault, cancellation) is retried
//! with exponential backoff and deterministic jitter up to
//! `--max-retries` extra attempts, then marked `failed`; a job that
//! exceeds its `deadline_cycles` (per-job in the submit, or the
//! daemon's `--deadline-cycles` default) is marked `timed_out` and
//! never retried or cached. `status` reports the full attempt history.
//! Client connections are expendable — a disconnect mid-request or
//! mid-response is logged and the connection recycled. Fault injection
//! (`--faults` / `DMT_FAULTS`, see [`dmt_common::faults`]) covers the
//! daemon's own sites: `serve.conn` drops accepted connections,
//! `serve.request` fails parsed requests.
//!
//! ## Status logging
//!
//! Operational logging follows the runner's cache-report idiom — one
//! terse bracketed-prefix stderr line per event, counters inline,
//! machine-greppable (`[dmt-runner] cache: 7 hits, 2 misses, 2 stored
//! ...` is the model). The daemon's lines:
//!
//! ```text
//! [dmt-serve] listening on 127.0.0.1:7177 (threads 4, queue depth 256, cache artifacts/serve-cache)
//! [dmt-serve] submit: 9 jobs (2 hits, 0 known, 7 queued; depth 7/256)
//! [dmt-serve] 86c1b2... : scan@dMT-CGRA (seed 42) ok in 12 ms (attempt 1)
//! [dmt-serve] drain: 3 outstanding
//! [dmt-serve] drained: 9 done, 0 failed, 0 timed out; exiting
//! ```
//!
//! Requests never get per-line logs beyond these (no access log): the
//! interesting events are admissions, executions and lifecycle edges.

pub mod protocol;
pub mod server;
pub mod state;

pub use protocol::{parse_request, Request, SubmitJob};
pub use server::{Executor, ServeOptions, ServeSummary, Server};
pub use state::{AttemptRecord, Inner, JobEntry, JobState};

/// The seed a submitted job gets when the request omits one — the same
/// seed the paper-figure binaries use for the Table 3 suite.
pub const DEFAULT_SEED: u64 = 42;
