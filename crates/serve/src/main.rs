//! `dmt-serve` — the simulation daemon binary.
//!
//! Serves the Table 3 suite over TCP with the real bench executor.
//! Runner flags `--threads`, `--cache DIR`, `--faults SPEC` and
//! `--deadline-cycles N` (the default per-job budget; a submit may
//! override it per job) apply (cache default: `artifacts/serve-cache`;
//! the daemon *requires* a cache — it is the result store); `--json`,
//! `--progress` and `--smoke` do not. Binary flags: `--addr HOST:PORT`,
//! `--queue-depth N`, `--retry-after-ms MS`, `--max-retries N`,
//! `--retry-backoff-ms MS`.

use dmt_runner::{Flag, RunnerArgs};
use dmt_serve::{ServeOptions, Server};
use std::path::PathBuf;
use std::process::exit;

const FLAGS: &[Flag] = &[
    Flag::with_value(
        "--addr",
        "HOST:PORT",
        "listen address (default 127.0.0.1:7177)",
    ),
    Flag::with_value(
        "--queue-depth",
        "N",
        "admission bound on queued+running jobs (default 256)",
    ),
    Flag::with_value(
        "--retry-after-ms",
        "MS",
        "backoff hint sent with queue-full rejections (default 500)",
    ),
    Flag::with_value(
        "--max-retries",
        "N",
        "extra attempts for transiently-failed jobs (default 2; 0 disables retry)",
    ),
    Flag::with_value(
        "--retry-backoff-ms",
        "MS",
        "base retry backoff, doubled per attempt plus jitter (default 50)",
    ),
];

fn value_or<T: std::str::FromStr>(args: &RunnerArgs, flag: &str, default: T) -> T {
    match args.flag_value(flag) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} got invalid value {raw:?}");
            exit(2);
        }),
    }
}

fn main() {
    let args = RunnerArgs::from_env_registry(FLAGS);
    args.forbid_json("dmt-serve");
    args.forbid_progress("dmt-serve");
    args.forbid_smoke("dmt-serve");
    args.forbid_trace("dmt-serve");
    if args.no_cache {
        eprintln!("error: dmt-serve requires a result cache (it is the result store)");
        exit(2);
    }
    if let Some(first) = args.rest.first() {
        eprintln!("error: unknown argument {first:?}");
        exit(2);
    }
    let addr = args
        .flag_value("--addr")
        .unwrap_or("127.0.0.1:7177")
        .to_owned();
    let queue_depth: usize = value_or(&args, "--queue-depth", 256);
    if queue_depth == 0 {
        eprintln!("error: --queue-depth must be at least 1");
        exit(2);
    }
    let opts = ServeOptions {
        threads: args.effective_threads(),
        queue_depth,
        retry_after_ms: value_or(&args, "--retry-after-ms", 500),
        max_retries: value_or(&args, "--max-retries", 2),
        retry_backoff_ms: value_or(&args, "--retry-backoff-ms", 50),
        deadline_cycles: args.deadline_cycles,
        benches: dmt_kernels::suite::all()
            .iter()
            .map(|b| b.info().name.to_owned())
            .collect(),
    };
    let cache_dir = args
        .cache_dir()
        .unwrap_or_else(|| PathBuf::from("artifacts/serve-cache"));
    let server = Server::bind(
        &*addr,
        &cache_dir,
        opts,
        Box::new(dmt_bench::execute_job_limited),
    )
    .unwrap_or_else(|e| {
        eprintln!("error: cannot start on {addr}: {e}");
        exit(2);
    });
    match server.run() {
        Ok(_) => exit(0),
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}
