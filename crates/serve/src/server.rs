//! The daemon: TCP accept loop, per-connection handlers, and the
//! dispatcher that feeds admitted jobs to the [`ExecPlan`] worker pool.
//!
//! Concurrency shape: one nonblocking accept loop (the thread that
//! called [`Server::run`]), one detached handler thread per connection,
//! and one dispatcher thread. All shared state is [`Inner`] behind a
//! single mutex plus a condvar the dispatcher waits on; executors run
//! outside the lock. The dispatcher takes the whole admission queue as
//! a batch, sorts it by [`cost_order`] (longest first, from the cache's
//! observed costs), and runs it on [`ExecPlan`] — so an idle daemon
//! that receives a grid schedules it exactly like the batch runner
//! would.

use crate::protocol::{self, parse_request, Request};
use crate::state::{Inner, JobEntry, JobState};
use dmt_runner::artifact::{Json, SCHEMA_VERSION};
use dmt_runner::cache::cost_order;
use dmt_runner::{Cache, ExecPlan, JobOutcome, JobSpec};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a job outcome is produced; injected so tests can count or gate
/// executions.
pub type Executor = Box<dyn Fn(&JobSpec) -> JobOutcome + Send + Sync>;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads for the dispatch pool.
    pub threads: usize,
    /// Admission bound: maximum queued + running jobs. A `submit` that
    /// would push `outstanding` past this is rejected whole with a
    /// `retry_after_ms` hint.
    pub queue_depth: usize,
    /// The hint returned with a backpressure rejection.
    pub retry_after_ms: u64,
    /// Accepted benchmark names; empty means accept any.
    pub benches: Vec<String>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 1,
            queue_depth: 256,
            retry_after_ms: 500,
            benches: Vec::new(),
        }
    }
}

/// What the daemon did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs executed to completion.
    pub done: u64,
    /// Jobs whose executor panicked.
    pub failed: u64,
}

struct Shared {
    opts: ServeOptions,
    cache: Cache,
    exec: Executor,
    inner: Mutex<Inner>,
    work: Condvar,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and opens (creating if needed) the result
    /// cache that backs `result` responses and restart memoization.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cache_dir: &Path,
        opts: ServeOptions,
        exec: Executor,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let cache = Cache::open(cache_dir)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                opts,
                cache,
                exec,
                inner: Mutex::new(Inner::default()),
                work: Condvar::new(),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `drain` request has been honored: accepts
    /// connections, finishes all admitted work, then returns the
    /// lifetime summary (and prints the cache report to stderr).
    pub fn run(self) -> io::Result<ServeSummary> {
        let addr = self.listener.local_addr()?;
        eprintln!(
            "[dmt-serve] listening on {addr} (threads {}, queue depth {}, cache {})",
            self.shared.opts.threads,
            self.shared.opts.queue_depth,
            self.shared.cache.dir().display()
        );
        self.listener.set_nonblocking(true)?;
        let dispatcher = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || dispatch(&shared))
        };
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || handle_client(&shared, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.shared.inner.lock().expect("state lock").draining {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) => return Err(e),
            }
        }
        drop(self.listener);
        dispatcher.join().expect("dispatcher thread");
        self.shared.cache.report();
        let inner = self.shared.inner.lock().expect("state lock");
        eprintln!(
            "[dmt-serve] drained: {} done, {} failed; exiting",
            inner.done, inner.failed
        );
        Ok(ServeSummary {
            done: inner.done,
            failed: inner.failed,
        })
    }
}

/// The dispatcher loop: wait for admitted work, take the whole queue as
/// a batch, cost-sort it, run it on the worker pool. Returns once
/// draining is set and the queue is empty.
fn dispatch(shared: &Shared) {
    loop {
        let batch: Vec<JobSpec> = {
            let mut inner = shared.inner.lock().expect("state lock");
            while inner.queue.is_empty() && !inner.draining {
                inner = shared.work.wait(inner).expect("state lock");
            }
            if inner.queue.is_empty() {
                return;
            }
            let hashes = std::mem::take(&mut inner.queue);
            hashes.iter().map(|h| inner.jobs[h].spec.clone()).collect()
        };
        // Longest-first over the whole batch, from the cache's observed
        // costs — the same policy the batch runner applies to misses.
        let refs: Vec<&JobSpec> = batch.iter().collect();
        let order = cost_order(&refs, &shared.cache.cost_index());
        let sorted: Vec<JobSpec> = order.iter().map(|&i| batch[i].clone()).collect();
        ExecPlan::new(&sorted)
            .threads(shared.opts.threads)
            .run(|spec| run_one(shared, spec));
    }
}

/// Executes one admitted job: marks it running, runs the executor under
/// `catch_unwind`, stores successful outcomes to the cache, and updates
/// the table. Panics become `Failed` entries and are never cached.
fn run_one(shared: &Shared, spec: &JobSpec) -> JobOutcome {
    let hash = spec.job_hash();
    let attempt = {
        let mut inner = shared.inner.lock().expect("state lock");
        match inner.jobs.get_mut(&hash) {
            Some(entry) => {
                entry.state = JobState::Running;
                entry.attempts += 1;
                entry.attempts
            }
            None => 1,
        }
    };
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| (shared.exec)(spec)));
    let ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    match result {
        Ok(outcome) => {
            if let Err(e) = shared.cache.store(spec, &outcome) {
                eprintln!(
                    "[dmt-serve] warning: cache store failed for {spec}: {e} ({})",
                    shared.cache.entry_path(spec).display()
                );
            }
            let mut inner = shared.inner.lock().expect("state lock");
            if let Some(entry) = inner.jobs.get_mut(&hash) {
                entry.state = JobState::Done;
                entry.wall_ms = Some(ms);
            }
            inner.outstanding = inner.outstanding.saturating_sub(1);
            inner.done += 1;
            eprintln!(
                "[dmt-serve] {}: {spec} {} in {ms} ms (attempt {attempt})",
                protocol::hash_str(hash),
                outcome.status()
            );
            outcome
        }
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            let mut inner = shared.inner.lock().expect("state lock");
            if let Some(entry) = inner.jobs.get_mut(&hash) {
                entry.state = JobState::Failed;
                entry.error = Some(msg.clone());
                entry.wall_ms = Some(ms);
            }
            inner.outstanding = inner.outstanding.saturating_sub(1);
            inner.failed += 1;
            eprintln!(
                "[dmt-serve] {}: {spec} FAILED after {ms} ms (attempt {attempt}): {msg}",
                protocol::hash_str(hash)
            );
            // Sentinel for the pool's result slot; never stored, so a
            // resubmission after restart retries the job.
            JobOutcome::Infeasible(format!("executor panicked: {msg}"))
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "executor panicked".to_owned()
    }
}

/// One connection: read request lines, write one compact response line
/// each, until the client hangs up.
fn handle_client(shared: &Shared, stream: TcpStream) {
    // The accepted socket must block even though the listener does not.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let mut out = respond(shared, &line).render_compact();
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() {
            break;
        }
    }
}

/// Parses and dispatches one request line, recording its wall-clock
/// into the matching per-verb latency histogram (microseconds). Lines
/// that fail to parse have no verb to attribute and count as
/// `bad_requests`.
fn respond(shared: &Shared, line: &str) -> Json {
    let start = Instant::now();
    let parsed = parse_request(line);
    let verb = parsed.as_ref().ok().map(Request::verb_index);
    let doc = match parsed {
        Err(e) => {
            eprintln!("[dmt-serve] request error: {e}");
            Json::obj().with("ok", false).with("error", e)
        }
        Ok(Request::Submit(specs)) => submit(shared, specs),
        Ok(Request::Status(hash)) => status(shared, hash),
        Ok(Request::Result(hash)) => result(shared, hash),
        Ok(Request::Metrics) => metrics(shared),
        Ok(Request::Drain) => drain(shared),
    };
    let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let mut inner = shared.inner.lock().expect("state lock");
    match verb {
        Some(ix) => inner.latency[ix].record(us),
        None => inner.bad_requests += 1,
    }
    doc
}

/// The `metrics` response: a point-in-time snapshot of queue pressure,
/// job lifecycle totals, cache effectiveness and request latencies.
/// The snapshot is taken under one lock hold, so the queue numbers are
/// mutually consistent; the reporting `metrics` request itself is only
/// recorded after the snapshot (its own latency shows up next call).
fn metrics(shared: &Shared) -> Json {
    let cache = shared.cache.stats();
    let inner = shared.inner.lock().expect("state lock");
    let (mut queued, mut running) = (0u64, 0u64);
    for entry in inner.jobs.values() {
        match entry.state {
            JobState::Queued => queued += 1,
            JobState::Running => running += 1,
            JobState::Done | JobState::Failed => {}
        }
    }
    let mut latency = Json::obj();
    for (name, hist) in protocol::VERBS.iter().zip(&inner.latency) {
        latency = latency.with(name, hist.to_json());
    }
    Json::obj()
        .with("ok", true)
        .with(
            "queue",
            Json::obj()
                .with("queued", queued)
                .with("running", running)
                .with("outstanding", inner.outstanding as u64)
                .with("depth", shared.opts.queue_depth as u64)
                .with("draining", inner.draining),
        )
        .with(
            "jobs",
            Json::obj()
                .with("known", inner.jobs.len() as u64)
                .with("done", inner.done)
                .with("failed", inner.failed),
        )
        .with(
            "cache",
            Json::obj()
                .with("hits", cache.hits)
                .with("misses", cache.misses)
                .with("stores", cache.stores)
                .with("schema_invalidated", cache.schema_invalidated),
        )
        .with(
            "requests",
            Json::obj()
                .with("bad", inner.bad_requests)
                .with("latency_us", latency),
        )
}

/// Admission. The whole request is examined under one lock hold:
/// unknown benchmarks reject it, and if the genuinely-new jobs would
/// push `outstanding` past the bound it is rejected whole (no partial
/// admission) with a `retry_after_ms` hint. Otherwise every job gets a
/// table entry: duplicates of known jobs report their current state,
/// cache hits are born `done` without touching the pool, and the rest
/// join the queue.
fn submit(shared: &Shared, specs: Vec<JobSpec>) -> Json {
    if !shared.opts.benches.is_empty() {
        if let Some(bad) = specs
            .iter()
            .find(|s| !shared.opts.benches.contains(&s.bench))
        {
            return Json::obj().with("ok", false).with(
                "error",
                format!(
                    "unknown benchmark {:?} (available: {})",
                    bad.bench,
                    shared.opts.benches.join(", ")
                ),
            );
        }
    }
    let mut inner = shared.inner.lock().expect("state lock");
    if inner.draining {
        return Json::obj()
            .with("ok", false)
            .with("error", "draining; not accepting new work");
    }
    // Classify before admitting anything: known duplicates and cache
    // hits cost no queue slots, so only genuinely-new jobs count
    // against the bound.
    #[derive(Clone, Copy, PartialEq)]
    enum Class {
        Known,
        Hit,
        New,
    }
    let classes: Vec<(u64, Class)> = specs
        .iter()
        .map(|spec| {
            let hash = spec.job_hash();
            let class = if inner.jobs.contains_key(&hash) {
                Class::Known
            } else if shared.cache.lookup(spec).is_some() {
                Class::Hit
            } else {
                Class::New
            };
            (hash, class)
        })
        .collect();
    // In-request duplicates: the first occurrence decides, later ones
    // are Known.
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let classes: Vec<(u64, Class)> = classes
        .into_iter()
        .map(|(hash, class)| {
            if seen.insert(hash) {
                (hash, class)
            } else {
                (hash, Class::Known)
            }
        })
        .collect();
    let fresh = classes.iter().filter(|(_, c)| *c == Class::New).count();
    if inner.outstanding + fresh > shared.opts.queue_depth {
        eprintln!(
            "[dmt-serve] submit: rejected {} jobs ({} outstanding, depth {})",
            specs.len(),
            inner.outstanding,
            shared.opts.queue_depth
        );
        return Json::obj()
            .with("ok", false)
            .with(
                "error",
                format!(
                    "queue full ({} outstanding, depth {})",
                    inner.outstanding, shared.opts.queue_depth
                ),
            )
            .with("retry_after_ms", shared.opts.retry_after_ms);
    }
    let (mut hits, mut known) = (0usize, 0usize);
    let mut jobs_json = Vec::with_capacity(specs.len());
    for (spec, (hash, class)) in specs.into_iter().zip(classes) {
        let doc = Json::obj().with("job_hash", protocol::hash_str(hash));
        jobs_json.push(match class {
            Class::Known => {
                known += 1;
                let entry = &inner.jobs[&hash];
                doc.with("state", entry.state.name()).with("cached", false)
            }
            Class::Hit => {
                hits += 1;
                inner.jobs.insert(
                    hash,
                    JobEntry {
                        spec,
                        state: JobState::Done,
                        attempts: 0,
                        error: None,
                        wall_ms: None,
                    },
                );
                doc.with("state", "done").with("cached", true)
            }
            Class::New => {
                inner.jobs.insert(
                    hash,
                    JobEntry {
                        spec,
                        state: JobState::Queued,
                        attempts: 0,
                        error: None,
                        wall_ms: None,
                    },
                );
                inner.queue.push(hash);
                inner.outstanding += 1;
                doc.with("state", "queued")
                    .with("cached", false)
                    .with("position", inner.queue.len())
            }
        });
    }
    eprintln!(
        "[dmt-serve] submit: {} jobs ({hits} hits, {known} known, {fresh} queued; depth {}/{})",
        jobs_json.len(),
        inner.outstanding,
        shared.opts.queue_depth
    );
    shared.work.notify_all();
    Json::obj()
        .with("ok", true)
        .with("jobs", Json::Arr(jobs_json))
}

fn status(shared: &Shared, hash: u64) -> Json {
    let key = protocol::hash_str(hash);
    {
        let inner = shared.inner.lock().expect("state lock");
        if let Some(entry) = inner.jobs.get(&hash) {
            let mut doc = Json::obj()
                .with("ok", true)
                .with("job_hash", key)
                .with("state", entry.state.name())
                .with("attempts", u64::from(entry.attempts));
            if let Some(ms) = entry.wall_ms {
                doc = doc.with("wall_ms", ms);
            }
            if let Some(e) = &entry.error {
                doc = doc.with("error", e.clone());
            }
            return doc;
        }
    }
    // Unknown to this process — but the cache is a memo table across
    // restarts, so a valid on-disk entry still answers `done`.
    if cached_doc(shared, hash).is_some() {
        Json::obj()
            .with("ok", true)
            .with("job_hash", key)
            .with("state", "done")
            .with("attempts", 0u64)
            .with("cached", true)
    } else {
        Json::obj()
            .with("ok", false)
            .with("job_hash", key)
            .with("error", "unknown job")
    }
}

fn result(shared: &Shared, hash: u64) -> Json {
    let key = protocol::hash_str(hash);
    let known = {
        let inner = shared.inner.lock().expect("state lock");
        inner.jobs.get(&hash).map(|e| (e.state, e.error.clone()))
    };
    match known {
        Some((JobState::Done, _)) | None => match cached_doc(shared, hash) {
            Some(doc) => Json::obj()
                .with("ok", true)
                .with("job_hash", key)
                .with("artifact", doc),
            None if known.is_some() => Json::obj()
                .with("ok", false)
                .with("job_hash", key)
                .with("error", "result missing from cache (store failed?)"),
            None => Json::obj()
                .with("ok", false)
                .with("job_hash", key)
                .with("error", "unknown job"),
        },
        Some((JobState::Failed, error)) => Json::obj()
            .with("ok", false)
            .with("job_hash", key)
            .with("state", "failed")
            .with("error", error.unwrap_or_else(|| "executor failed".into())),
        Some((state, _)) => Json::obj()
            .with("ok", false)
            .with("job_hash", key)
            .with("state", state.name())
            .with("error", "not ready"),
    }
}

fn drain(shared: &Shared) -> Json {
    let mut inner = shared.inner.lock().expect("state lock");
    inner.draining = true;
    let pending = inner.outstanding;
    eprintln!("[dmt-serve] drain: {pending} outstanding");
    shared.work.notify_all();
    Json::obj()
        .with("ok", true)
        .with("draining", true)
        .with("pending", pending)
}

/// Reads and validates one cache entry by hash. The file name is the
/// hash, but the entry also echoes its identity — kind, schema version
/// and `job_hash` — all of which must match before the daemon serves it.
fn cached_doc(shared: &Shared, hash: u64) -> Option<Json> {
    let path = shared
        .cache
        .dir()
        .join(format!("{}.json", protocol::hash_str(hash)));
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    let identity_ok = doc.get("kind").and_then(Json::as_str) == Some("job_cache_entry")
        && doc.get("schema_version").and_then(Json::as_u64) == Some(SCHEMA_VERSION)
        && doc.get("job_hash").and_then(Json::as_str) == Some(format!("{hash:#018x}").as_str());
    identity_ok.then_some(doc)
}
