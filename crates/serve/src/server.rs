//! The daemon: TCP accept loop, per-connection handlers, and the
//! dispatcher that feeds admitted jobs to the worker pool.
//!
//! Concurrency shape: one nonblocking accept loop (the thread that
//! called [`Server::run`]), one detached handler thread per connection,
//! and one dispatcher thread. All shared state is [`Inner`] behind a
//! single mutex plus a condvar the dispatcher waits on; executors run
//! outside the lock. The dispatcher takes the whole admission queue as
//! a batch, sorts it by [`cost_order`] (longest first, from the cache's
//! observed costs), and runs it on the runner's index-ordered pool — so
//! an idle daemon that receives a grid schedules it exactly like the
//! batch runner would.
//!
//! # Failure handling
//!
//! Every executor attempt runs under `catch_unwind` with a per-job
//! [`RunLimits`] deadline. Outcomes are classified:
//!
//! * **done** (`ok`/`infeasible`) — stored to the cache, counted;
//! * **timed out** — permanent for the budget it ran under, never
//!   cached, counted separately;
//! * **transient** (panic, cancellation, injected fault) — re-queued
//!   with exponential backoff plus deterministic jitter, up to
//!   `max_retries` extra attempts, then marked failed. Nothing
//!   transient is ever cached, so a resubmission after restart retries.
//!
//! Client connections are likewise expendable: a read or write error is
//! logged and the connection recycled; a panicking request handler
//! answers `{"ok":false}` instead of killing the handler thread.

use crate::protocol::{self, parse_request, Request, SubmitJob};
use crate::state::{AttemptRecord, Inner, JobEntry, JobState, Retry};
use dmt_common::faults;
use dmt_common::RunLimits;
use dmt_runner::artifact::{Json, SCHEMA_VERSION};
use dmt_runner::cache::cost_order;
use dmt_runner::{panic_message, Cache, JobOutcome, JobSpec};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How a job outcome is produced; injected so tests can count or gate
/// executions. The executor must honor the [`RunLimits`] cooperatively
/// (the bench executor's `execute_job_limited` does).
pub type Executor = Box<dyn Fn(&JobSpec, &RunLimits<'_>) -> JobOutcome + Send + Sync>;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads for the dispatch pool.
    pub threads: usize,
    /// Admission bound: maximum queued + running jobs. A `submit` that
    /// would push `outstanding` past this is rejected whole with a
    /// `retry_after_ms` hint.
    pub queue_depth: usize,
    /// The base hint returned with a backpressure rejection; each
    /// rejection adds deterministic jitter (up to half the base) so a
    /// thundering herd of rejected clients does not retry in lockstep.
    pub retry_after_ms: u64,
    /// Extra executor attempts granted to transiently-failed jobs
    /// (panic, cancellation, injected fault). 0 disables retry.
    pub max_retries: u32,
    /// Base backoff before a retry attempt; doubles per attempt (capped
    /// at 64×) plus deterministic jitter from the job hash.
    pub retry_backoff_ms: u64,
    /// Default simulated-cycle budget for jobs that do not carry their
    /// own `deadline_cycles`; `None` means unlimited.
    pub deadline_cycles: Option<u64>,
    /// Accepted benchmark names; empty means accept any.
    pub benches: Vec<String>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 1,
            queue_depth: 256,
            retry_after_ms: 500,
            max_retries: 2,
            retry_backoff_ms: 50,
            deadline_cycles: None,
            benches: Vec::new(),
        }
    }
}

/// What the daemon did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs executed to completion.
    pub done: u64,
    /// Jobs that exhausted their retry budget.
    pub failed: u64,
    /// Jobs that exceeded their simulated-cycle deadline.
    pub timed_out: u64,
}

struct Shared {
    opts: ServeOptions,
    cache: Cache,
    exec: Executor,
    inner: Mutex<Inner>,
    work: Condvar,
}

/// Locks the state, recovering from poisoning: a panicking handler
/// thread must not wedge the daemon (the state it guards is counters
/// and a job table, each updated atomically under one lock hold).
fn lock_inner(shared: &Shared) -> MutexGuard<'_, Inner> {
    shared.inner.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and opens (creating if needed) the result
    /// cache that backs `result` responses and restart memoization.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cache_dir: &Path,
        opts: ServeOptions,
        exec: Executor,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let cache = Cache::open(cache_dir)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                opts,
                cache,
                exec,
                inner: Mutex::new(Inner::default()),
                work: Condvar::new(),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `drain` request has been honored: accepts
    /// connections, finishes all admitted work (including pending
    /// retries), then returns the lifetime summary (and prints the
    /// cache report to stderr).
    pub fn run(self) -> io::Result<ServeSummary> {
        let addr = self.listener.local_addr()?;
        eprintln!(
            "[dmt-serve] listening on {addr} (threads {}, queue depth {}, cache {})",
            self.shared.opts.threads,
            self.shared.opts.queue_depth,
            self.shared.cache.dir().display()
        );
        self.listener.set_nonblocking(true)?;
        let dispatcher = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || dispatch(&shared))
        };
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || handle_client(&shared, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if lock_inner(&self.shared).draining {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) => return Err(e),
            }
        }
        drop(self.listener);
        dispatcher.join().expect("dispatcher thread");
        self.shared.cache.report();
        let inner = lock_inner(&self.shared);
        eprintln!(
            "[dmt-serve] drained: {} done, {} failed, {} timed out; exiting",
            inner.done, inner.failed, inner.timed_out
        );
        Ok(ServeSummary {
            done: inner.done,
            failed: inner.failed,
            timed_out: inner.timed_out,
        })
    }
}

/// The dispatcher loop: wait for admitted work (promoting due retries
/// back into the queue), take the whole queue as a batch, cost-sort it,
/// run it on the worker pool. Returns once draining is set and both the
/// queue and the retry schedule are empty.
fn dispatch(shared: &Shared) {
    loop {
        let batch: Vec<JobSpec> = {
            let mut inner = lock_inner(shared);
            loop {
                // Promote retries whose backoff has elapsed.
                let now = Instant::now();
                let mut due = Vec::new();
                inner.retries.retain(|r| {
                    if r.due <= now {
                        due.push(r.hash);
                        false
                    } else {
                        true
                    }
                });
                inner.queue.extend(due);
                if !inner.queue.is_empty() {
                    break;
                }
                if inner.draining && inner.retries.is_empty() {
                    return;
                }
                // Sleep until the earliest retry is due; submit/drain
                // notifications wake the wait early.
                let wait = inner
                    .retries
                    .iter()
                    .map(|r| r.due.saturating_duration_since(now))
                    .min()
                    .unwrap_or(Duration::from_secs(3600));
                let (guard, _) = shared
                    .work
                    .wait_timeout(inner, wait)
                    .unwrap_or_else(PoisonError::into_inner);
                inner = guard;
            }
            let hashes = std::mem::take(&mut inner.queue);
            hashes.iter().map(|h| inner.jobs[h].spec.clone()).collect()
        };
        // Longest-first over the whole batch, from the cache's observed
        // costs — the same policy the batch runner applies to misses.
        let refs: Vec<&JobSpec> = batch.iter().collect();
        let order = cost_order(&refs, &shared.cache.cost_index());
        let sorted: Vec<JobSpec> = order.iter().map(|&i| batch[i].clone()).collect();
        // run_indexed rather than ExecPlan: the daemon does its own
        // outcome accounting (retry, timed_out, history) in run_one, and
        // the plan's job-level fault isolation would produce outcomes
        // outside that accounting.
        dmt_runner::run_indexed(sorted.len(), shared.opts.threads, |i| {
            run_one(shared, &sorted[i]);
        });
    }
}

/// Executes one admitted job attempt: marks it running, runs the
/// executor under `catch_unwind` with the job's deadline, classifies
/// the outcome (done / timed out / transient), stores cacheable
/// outcomes, and updates the table — scheduling a backoff retry for
/// transient failures with budget left.
fn run_one(shared: &Shared, spec: &JobSpec) {
    let hash = spec.job_hash();
    let (attempt, deadline) = {
        let mut inner = lock_inner(shared);
        match inner.jobs.get_mut(&hash) {
            Some(entry) => {
                entry.state = JobState::Running;
                entry.attempts += 1;
                (
                    entry.attempts,
                    entry.deadline_cycles.or(shared.opts.deadline_cycles),
                )
            }
            None => (1, shared.opts.deadline_cycles),
        }
    };
    let limits = RunLimits {
        deadline_cycles: deadline.unwrap_or(u64::MAX),
        cancel: None,
    };
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| (shared.exec)(spec, &limits)));
    let ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    let outcome = match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            JobOutcome::Failed(format!("executor panicked: {}", panic_message(payload)))
        }
    };
    // The cache itself refuses transient and timed-out outcomes; this
    // guard just skips the I/O (and the store-failure warning) for them.
    if outcome.cacheable() {
        if let Err(e) = shared.cache.store(spec, &outcome) {
            eprintln!(
                "[dmt-serve] warning: cache store failed for {spec}: {e} ({})",
                shared.cache.entry_path(spec).display()
            );
        }
    }
    let record = AttemptRecord {
        status: outcome.status(),
        wall_ms: ms,
        error: outcome.error().map(str::to_owned),
    };
    let key = protocol::hash_str(hash);
    let mut inner = lock_inner(shared);
    match &outcome {
        JobOutcome::Completed(_) | JobOutcome::Infeasible(_) => {
            if let Some(entry) = inner.jobs.get_mut(&hash) {
                entry.state = JobState::Done;
                entry.error = None;
                entry.wall_ms = Some(ms);
                entry.history.push(record);
            }
            inner.outstanding = inner.outstanding.saturating_sub(1);
            inner.done += 1;
            eprintln!(
                "[dmt-serve] {key}: {spec} {} in {ms} ms (attempt {attempt})",
                outcome.status()
            );
        }
        JobOutcome::TimedOut(msg) => {
            if let Some(entry) = inner.jobs.get_mut(&hash) {
                entry.state = JobState::TimedOut;
                entry.error = Some(msg.clone());
                entry.wall_ms = Some(ms);
                entry.history.push(record);
            }
            inner.outstanding = inner.outstanding.saturating_sub(1);
            inner.timed_out += 1;
            eprintln!(
                "[dmt-serve] {key}: {spec} TIMED OUT after {ms} ms (attempt {attempt}): {msg}"
            );
        }
        JobOutcome::Failed(msg) => {
            if attempt <= shared.opts.max_retries {
                // Transient, budget left: exponential backoff (base ×
                // 2^(attempt-1), capped at 64×) plus jitter derived
                // deterministically from the job hash and attempt.
                let backoff = shared.opts.retry_backoff_ms << (attempt - 1).min(6);
                let jitter = faults::splitmix64(hash ^ u64::from(attempt)) % (backoff / 2 + 1);
                let delay = Duration::from_millis(backoff + jitter);
                if let Some(entry) = inner.jobs.get_mut(&hash) {
                    entry.state = JobState::Queued;
                    entry.error = Some(msg.clone());
                    entry.wall_ms = Some(ms);
                    entry.history.push(record);
                }
                inner.retries.push(Retry {
                    hash,
                    due: Instant::now() + delay,
                });
                eprintln!(
                    "[dmt-serve] {key}: {spec} failed transiently (attempt {attempt}/{}), \
                     retrying in {} ms: {msg}",
                    shared.opts.max_retries + 1,
                    delay.as_millis()
                );
                // The dispatcher may be asleep with no other work: wake
                // it so it re-computes its wait for the new due time.
                shared.work.notify_all();
            } else {
                if let Some(entry) = inner.jobs.get_mut(&hash) {
                    entry.state = JobState::Failed;
                    entry.error = Some(msg.clone());
                    entry.wall_ms = Some(ms);
                    entry.history.push(record);
                }
                inner.outstanding = inner.outstanding.saturating_sub(1);
                inner.failed += 1;
                eprintln!(
                    "[dmt-serve] {key}: {spec} FAILED after {ms} ms \
                     (attempt {attempt}, retries exhausted): {msg}"
                );
            }
        }
    }
}

/// One connection: read request lines, write one compact response line
/// each, until the client hangs up. I/O errors (client disconnected
/// mid-request or mid-response) are logged and the connection recycled;
/// they never take the daemon down.
fn handle_client(shared: &Shared, stream: TcpStream) {
    if faults::hit(faults::site::SERVE_CONN) {
        eprintln!("[dmt-serve] injected fault: dropping connection (serve.conn)");
        return;
    }
    // The accepted socket must block even though the listener does not.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("[dmt-serve] client read error: {e}; recycling connection");
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let mut out = respond(shared, &line).render_compact();
        out.push('\n');
        if let Err(e) = writer.write_all(out.as_bytes()) {
            eprintln!("[dmt-serve] client write error: {e}; recycling connection");
            break;
        }
    }
}

/// Parses and dispatches one request line, recording its wall-clock
/// into the matching per-verb latency histogram (microseconds). Lines
/// that fail to parse have no verb to attribute and count as
/// `bad_requests`. A panicking verb handler answers `{"ok":false}`
/// instead of killing the connection.
fn respond(shared: &Shared, line: &str) -> Json {
    let start = Instant::now();
    let parsed = parse_request(line);
    let verb = parsed.as_ref().ok().map(Request::verb_index);
    let doc = if faults::hit(faults::site::SERVE_REQUEST) {
        eprintln!("[dmt-serve] injected fault: failing request (serve.request)");
        Json::obj()
            .with("ok", false)
            .with("error", "injected fault: serve.request")
    } else {
        let handled = catch_unwind(AssertUnwindSafe(|| match parsed {
            Err(e) => {
                eprintln!("[dmt-serve] request error: {e}");
                Json::obj().with("ok", false).with("error", e)
            }
            Ok(Request::Submit(jobs)) => submit(shared, jobs),
            Ok(Request::Status(hash)) => status(shared, hash),
            Ok(Request::Result(hash)) => result(shared, hash),
            Ok(Request::Metrics) => metrics(shared),
            Ok(Request::Drain) => drain(shared),
        }));
        handled.unwrap_or_else(|payload| {
            let msg = panic_message(payload);
            eprintln!("[dmt-serve] request handler panicked: {msg}");
            Json::obj()
                .with("ok", false)
                .with("error", format!("internal error: {msg}"))
        })
    };
    let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let mut inner = lock_inner(shared);
    match verb {
        Some(ix) => inner.latency[ix].record(us),
        None => inner.bad_requests += 1,
    }
    doc
}

/// The `metrics` response: a point-in-time snapshot of queue pressure,
/// job lifecycle totals, cache effectiveness and request latencies.
/// The snapshot is taken under one lock hold, so the queue numbers are
/// mutually consistent; the reporting `metrics` request itself is only
/// recorded after the snapshot (its own latency shows up next call).
fn metrics(shared: &Shared) -> Json {
    let cache = shared.cache.stats();
    let inner = lock_inner(shared);
    let (mut queued, mut running) = (0u64, 0u64);
    for entry in inner.jobs.values() {
        match entry.state {
            JobState::Queued => queued += 1,
            JobState::Running => running += 1,
            JobState::Done | JobState::Failed | JobState::TimedOut => {}
        }
    }
    let mut latency = Json::obj();
    for (name, hist) in protocol::VERBS.iter().zip(&inner.latency) {
        latency = latency.with(name, hist.to_json());
    }
    Json::obj()
        .with("ok", true)
        .with(
            "queue",
            Json::obj()
                .with("queued", queued)
                .with("running", running)
                .with("retrying", inner.retries.len() as u64)
                .with("outstanding", inner.outstanding as u64)
                .with("depth", shared.opts.queue_depth as u64)
                .with("rejections", inner.rejections)
                .with("draining", inner.draining),
        )
        .with(
            "jobs",
            Json::obj()
                .with("known", inner.jobs.len() as u64)
                .with("done", inner.done)
                .with("failed", inner.failed)
                .with("timed_out", inner.timed_out),
        )
        .with(
            "cache",
            Json::obj()
                .with("hits", cache.hits)
                .with("misses", cache.misses)
                .with("stores", cache.stores)
                .with("store_failures", cache.store_failures)
                .with("schema_invalidated", cache.schema_invalidated),
        )
        .with(
            "requests",
            Json::obj()
                .with("bad", inner.bad_requests)
                .with("latency_us", latency),
        )
}

/// Admission. The whole request is examined under one lock hold:
/// unknown benchmarks reject it, and if the genuinely-new jobs would
/// push `outstanding` past the bound it is rejected whole (no partial
/// admission) with a jittered `retry_after_ms` hint. Otherwise every
/// job gets a table entry: duplicates of known jobs report their
/// current state, cache hits are born `done` without touching the pool,
/// and the rest join the queue.
fn submit(shared: &Shared, jobs: Vec<SubmitJob>) -> Json {
    if !shared.opts.benches.is_empty() {
        if let Some(bad) = jobs
            .iter()
            .find(|j| !shared.opts.benches.contains(&j.spec.bench))
        {
            return Json::obj().with("ok", false).with(
                "error",
                format!(
                    "unknown benchmark {:?} (available: {})",
                    bad.spec.bench,
                    shared.opts.benches.join(", ")
                ),
            );
        }
    }
    let mut inner = lock_inner(shared);
    if inner.draining {
        return Json::obj()
            .with("ok", false)
            .with("error", "draining; not accepting new work");
    }
    // Classify before admitting anything: known duplicates and cache
    // hits cost no queue slots, so only genuinely-new jobs count
    // against the bound.
    #[derive(Clone, Copy, PartialEq)]
    enum Class {
        Known,
        Hit,
        New,
    }
    let classes: Vec<(u64, Class)> = jobs
        .iter()
        .map(|job| {
            let hash = job.spec.job_hash();
            let class = if inner.jobs.contains_key(&hash) {
                Class::Known
            } else if shared.cache.lookup(&job.spec).is_some() {
                Class::Hit
            } else {
                Class::New
            };
            (hash, class)
        })
        .collect();
    // In-request duplicates: the first occurrence decides, later ones
    // are Known.
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let classes: Vec<(u64, Class)> = classes
        .into_iter()
        .map(|(hash, class)| {
            if seen.insert(hash) {
                (hash, class)
            } else {
                (hash, Class::Known)
            }
        })
        .collect();
    let fresh = classes.iter().filter(|(_, c)| *c == Class::New).count();
    if inner.outstanding + fresh > shared.opts.queue_depth {
        inner.rejections += 1;
        // Deterministic jitter (up to half the base) from the rejection
        // ordinal: rejected clients spread their retries instead of
        // hammering back in lockstep, and the same rejection sequence
        // produces the same hints on every run.
        let base = shared.opts.retry_after_ms;
        let hint = base + faults::splitmix64(inner.rejections) % (base / 2 + 1);
        eprintln!(
            "[dmt-serve] submit: rejected {} jobs ({} outstanding, depth {}; retry in {hint} ms)",
            jobs.len(),
            inner.outstanding,
            shared.opts.queue_depth
        );
        return Json::obj()
            .with("ok", false)
            .with(
                "error",
                format!(
                    "queue full ({} outstanding, depth {})",
                    inner.outstanding, shared.opts.queue_depth
                ),
            )
            .with("retry_after_ms", hint);
    }
    let (mut hits, mut known) = (0usize, 0usize);
    let mut jobs_json = Vec::with_capacity(jobs.len());
    for (job, (hash, class)) in jobs.into_iter().zip(classes) {
        let doc = Json::obj().with("job_hash", protocol::hash_str(hash));
        jobs_json.push(match class {
            Class::Known => {
                known += 1;
                let entry = &inner.jobs[&hash];
                doc.with("state", entry.state.name()).with("cached", false)
            }
            Class::Hit => {
                hits += 1;
                inner.jobs.insert(
                    hash,
                    JobEntry {
                        spec: job.spec,
                        state: JobState::Done,
                        attempts: 0,
                        error: None,
                        wall_ms: None,
                        deadline_cycles: job.deadline_cycles,
                        history: Vec::new(),
                    },
                );
                doc.with("state", "done").with("cached", true)
            }
            Class::New => {
                inner.jobs.insert(
                    hash,
                    JobEntry {
                        spec: job.spec,
                        state: JobState::Queued,
                        attempts: 0,
                        error: None,
                        wall_ms: None,
                        deadline_cycles: job.deadline_cycles,
                        history: Vec::new(),
                    },
                );
                inner.queue.push(hash);
                inner.outstanding += 1;
                doc.with("state", "queued")
                    .with("cached", false)
                    .with("position", inner.queue.len())
            }
        });
    }
    eprintln!(
        "[dmt-serve] submit: {} jobs ({hits} hits, {known} known, {fresh} queued; depth {}/{})",
        jobs_json.len(),
        inner.outstanding,
        shared.opts.queue_depth
    );
    shared.work.notify_all();
    Json::obj()
        .with("ok", true)
        .with("jobs", Json::Arr(jobs_json))
}

fn status(shared: &Shared, hash: u64) -> Json {
    let key = protocol::hash_str(hash);
    {
        let inner = lock_inner(shared);
        if let Some(entry) = inner.jobs.get(&hash) {
            let mut doc = Json::obj()
                .with("ok", true)
                .with("job_hash", key)
                .with("state", entry.state.name())
                .with("attempts", u64::from(entry.attempts));
            if let Some(ms) = entry.wall_ms {
                doc = doc.with("wall_ms", ms);
            }
            if let Some(e) = &entry.error {
                doc = doc.with("error", e.clone());
            }
            if !entry.history.is_empty() {
                doc = doc.with(
                    "history",
                    Json::Arr(
                        entry
                            .history
                            .iter()
                            .map(|a| {
                                let rec = Json::obj()
                                    .with("status", a.status)
                                    .with("wall_ms", a.wall_ms);
                                match &a.error {
                                    Some(e) => rec.with("error", e.clone()),
                                    None => rec,
                                }
                            })
                            .collect(),
                    ),
                );
            }
            return doc;
        }
    }
    // Unknown to this process — but the cache is a memo table across
    // restarts, so a valid on-disk entry still answers `done`.
    if cached_doc(shared, hash).is_some() {
        Json::obj()
            .with("ok", true)
            .with("job_hash", key)
            .with("state", "done")
            .with("attempts", 0u64)
            .with("cached", true)
    } else {
        Json::obj()
            .with("ok", false)
            .with("job_hash", key)
            .with("error", "unknown job")
    }
}

fn result(shared: &Shared, hash: u64) -> Json {
    let key = protocol::hash_str(hash);
    let known = {
        let inner = lock_inner(shared);
        inner.jobs.get(&hash).map(|e| (e.state, e.error.clone()))
    };
    match known {
        Some((JobState::Done, _)) | None => match cached_doc(shared, hash) {
            Some(doc) => Json::obj()
                .with("ok", true)
                .with("job_hash", key)
                .with("artifact", doc),
            None if known.is_some() => Json::obj()
                .with("ok", false)
                .with("job_hash", key)
                .with("error", "result missing from cache (store failed?)"),
            None => Json::obj()
                .with("ok", false)
                .with("job_hash", key)
                .with("error", "unknown job"),
        },
        Some((state @ (JobState::Failed | JobState::TimedOut), error)) => Json::obj()
            .with("ok", false)
            .with("job_hash", key)
            .with("state", state.name())
            .with("error", error.unwrap_or_else(|| "executor failed".into())),
        Some((state, _)) => Json::obj()
            .with("ok", false)
            .with("job_hash", key)
            .with("state", state.name())
            .with("error", "not ready"),
    }
}

fn drain(shared: &Shared) -> Json {
    let mut inner = lock_inner(shared);
    inner.draining = true;
    let pending = inner.outstanding;
    eprintln!("[dmt-serve] drain: {pending} outstanding");
    shared.work.notify_all();
    Json::obj()
        .with("ok", true)
        .with("draining", true)
        .with("pending", pending)
}

/// Reads and validates one cache entry by hash. The file name is the
/// hash, but the entry also echoes its identity — kind, schema version
/// and `job_hash` — all of which must match before the daemon serves it.
fn cached_doc(shared: &Shared, hash: u64) -> Option<Json> {
    let path = shared
        .cache
        .dir()
        .join(format!("{}.json", protocol::hash_str(hash)));
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    let identity_ok = doc.get("kind").and_then(Json::as_str) == Some("job_cache_entry")
        && doc.get("schema_version").and_then(Json::as_u64) == Some(SCHEMA_VERSION)
        && doc.get("job_hash").and_then(Json::as_str) == Some(format!("{hash:#018x}").as_str());
    identity_ok.then_some(doc)
}
