//! The line-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line with a `"verb"` field;
//! every response is one compact JSON object on one line (see
//! [`dmt_runner::artifact::Json::render_compact`]). The five verbs:
//!
//! - `submit` — admit a job grid: `{"verb":"submit","jobs":[...]}` (or a
//!   single `"job":{...}`). Each job object names a `"bench"` and an
//!   `"arch"` (key or paper name), with optional `"seed"` (default 42,
//!   the suite seed) and an optional `"config"` object of dotted-path
//!   overrides onto [`SystemConfig::default`] — the same 54 leaves
//!   [`SystemConfig::visit_fields`] walks, e.g.
//!   `{"fabric.inflight_threads":512}`. An optional per-job
//!   `"deadline_cycles"` caps the simulated-cycle budget (not part of
//!   the job hash; see [`SubmitJob`]).
//! - `status` — `{"verb":"status","job_hash":"<16 hex>"}`.
//! - `result` — `{"verb":"result","job_hash":"<16 hex>"}`.
//! - `metrics` — `{"verb":"metrics"}`: daemon counters — queue depth,
//!   lifecycle totals, cache hit/miss/schema-invalidated counts, and
//!   per-verb request-latency histograms.
//! - `drain` — `{"verb":"drain"}`.
//!
//! Job hashes are the runner's content hash ([`JobSpec::job_hash`]),
//! rendered as 16 lowercase hex digits (the cache filename stem); an
//! optional `0x` prefix is accepted on input.

use dmt_common::config::CfgInput;
use dmt_core::{Arch, SystemConfig};
use dmt_runner::artifact::Json;
use dmt_runner::JobSpec;

/// One job of a `submit` request: the spec plus per-job execution
/// knobs that are **not** part of the job's content hash (a deadline
/// changes when a run is cut short, not what the job computes — and a
/// timed-out outcome is never cached, so the hash must not depend on
/// it).
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitJob {
    /// The content-hashed job identity.
    pub spec: JobSpec,
    /// Optional simulated-cycle budget (`"deadline_cycles"`); `None`
    /// falls back to the daemon's `--deadline-cycles` default.
    pub deadline_cycles: Option<u64>,
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a grid of jobs (possibly a single one).
    Submit(Vec<SubmitJob>),
    /// Report one job's lifecycle state.
    Status(u64),
    /// Serve one job's artifact JSON.
    Result(u64),
    /// Report daemon-level counters and latency histograms.
    Metrics,
    /// Stop accepting work, finish in-flight jobs, exit.
    Drain,
}

/// Wire verb names, in [`Request::verb_index`] order — the index into
/// the per-verb latency histograms in [`crate::state::Inner`].
pub const VERBS: [&str; 5] = ["submit", "status", "result", "metrics", "drain"];

impl Request {
    /// This request's index into [`VERBS`].
    #[must_use]
    pub fn verb_index(&self) -> usize {
        match self {
            Request::Submit(_) => 0,
            Request::Status(_) => 1,
            Request::Result(_) => 2,
            Request::Metrics => 3,
            Request::Drain => 4,
        }
    }
}

/// A job hash in wire form: 16 lowercase hex digits.
#[must_use]
pub fn hash_str(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses one request line into a [`Request`].
///
/// Errors are human-readable strings suitable for the `"error"` field of
/// an `{"ok":false}` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let verb = doc
        .get("verb")
        .and_then(Json::as_str)
        .ok_or("missing \"verb\"")?;
    match verb {
        "submit" => parse_submit(&doc),
        "status" => Ok(Request::Status(parse_hash(&doc)?)),
        "result" => Ok(Request::Result(parse_hash(&doc)?)),
        "metrics" => Ok(Request::Metrics),
        "drain" => Ok(Request::Drain),
        other => Err(format!(
            "unknown verb {other:?} (expected submit, status, result, metrics or drain)"
        )),
    }
}

fn parse_submit(doc: &Json) -> Result<Request, String> {
    let jobs: Vec<&Json> = match (doc.get("jobs"), doc.get("job")) {
        (Some(Json::Arr(items)), None) => items.iter().collect(),
        (None, Some(one)) => vec![one],
        (Some(_), None) => return Err("\"jobs\" must be an array".into()),
        (None, None) => return Err("submit needs \"jobs\" or \"job\"".into()),
        (Some(_), Some(_)) => return Err("give \"jobs\" or \"job\", not both".into()),
    };
    let mut specs = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        specs.push(parse_job(job).map_err(|e| format!("job {i}: {e}"))?);
    }
    Ok(Request::Submit(specs))
}

fn parse_job(job: &Json) -> Result<SubmitJob, String> {
    let bench = job
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("missing \"bench\"")?;
    let arch: Arch = job
        .get("arch")
        .and_then(Json::as_str)
        .ok_or("missing \"arch\"")?
        .parse()?;
    let seed = match job.get("seed") {
        None => crate::DEFAULT_SEED,
        Some(s) => s.as_u64().ok_or("\"seed\" must be an unsigned integer")?,
    };
    let mut cfg = SystemConfig::default();
    match job.get("config") {
        None => {}
        Some(Json::Obj(fields)) => {
            for (name, value) in fields {
                let input = match value {
                    Json::U64(v) => CfgInput::U64(*v),
                    Json::F64(v) => CfgInput::F64(*v),
                    Json::Str(v) => CfgInput::Tag(v),
                    _ => return Err(format!("config field {name:?} must be a number or string")),
                };
                cfg.set_field(name, input)?;
            }
        }
        Some(_) => return Err("\"config\" must be an object".into()),
    }
    let deadline_cycles = match job.get("deadline_cycles") {
        None => None,
        Some(d) => {
            let n = d
                .as_u64()
                .ok_or("\"deadline_cycles\" must be an unsigned integer")?;
            if n == 0 {
                return Err("\"deadline_cycles\" must be at least 1".into());
            }
            Some(n)
        }
    };
    Ok(SubmitJob {
        spec: JobSpec::new(bench, arch, cfg, seed),
        deadline_cycles,
    })
}

fn parse_hash(doc: &Json) -> Result<u64, String> {
    match doc.get("job_hash") {
        Some(Json::Str(s)) => {
            let digits = s.strip_prefix("0x").unwrap_or(s);
            u64::from_str_radix(digits, 16).map_err(|_| format!("bad job hash {s:?}"))
        }
        Some(other) => other
            .as_u64()
            .ok_or("\"job_hash\" must be a hex string or integer".into()),
        None => Err("missing \"job_hash\"".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_parses_grid_seed_and_config_overrides() {
        let req = parse_request(
            r#"{"verb":"submit","jobs":[
                {"bench":"scan","arch":"dmt_cgra"},
                {"bench":"matrixMul","arch":"MT-CGRA","seed":7,
                 "config":{"fabric.inflight_threads":512}}]}"#,
        )
        .expect("parses");
        let Request::Submit(specs) = req else {
            panic!("expected submit")
        };
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].spec.bench, "scan");
        assert_eq!(specs[0].spec.arch, Arch::DmtCgra);
        assert_eq!(specs[0].spec.seed, crate::DEFAULT_SEED);
        assert_eq!(specs[0].deadline_cycles, None);
        assert_eq!(specs[1].spec.arch, Arch::MtCgra);
        assert_eq!(specs[1].spec.seed, 7);
        assert_eq!(specs[1].spec.cfg.fabric.inflight_threads, 512);
        // The override must flow into the content hash.
        let default = JobSpec::new("matrixMul", Arch::MtCgra, SystemConfig::default(), 7);
        assert_ne!(specs[1].spec.job_hash(), default.job_hash());
    }

    #[test]
    fn deadline_cycles_parses_but_stays_out_of_the_job_hash() {
        let req = parse_request(
            r#"{"verb":"submit","job":{"bench":"scan","arch":"dmt_cgra","deadline_cycles":500}}"#,
        )
        .expect("parses");
        let Request::Submit(jobs) = req else {
            panic!("expected submit")
        };
        assert_eq!(jobs[0].deadline_cycles, Some(500));
        // Same spec without a deadline: identical content hash — the
        // budget changes when a run is cut short, not what it computes.
        let bare = parse_request(r#"{"verb":"submit","job":{"bench":"scan","arch":"dmt_cgra"}}"#)
            .expect("parses");
        let Request::Submit(bare) = bare else {
            panic!("expected submit")
        };
        assert_eq!(jobs[0].spec.job_hash(), bare[0].spec.job_hash());
        for (line, needle) in [
            (
                r#"{"verb":"submit","job":{"bench":"scan","arch":"dmt_cgra","deadline_cycles":0}}"#,
                "at least 1",
            ),
            (
                r#"{"verb":"submit","job":{"bench":"scan","arch":"dmt_cgra","deadline_cycles":"x"}}"#,
                "unsigned integer",
            ),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err:?}");
        }
    }

    #[test]
    fn single_job_form_and_hash_prefixes_are_accepted() {
        let req = parse_request(r#"{"verb":"submit","job":{"bench":"scan","arch":"fermi_sm"}}"#)
            .expect("parses");
        assert!(matches!(req, Request::Submit(ref s) if s.len() == 1));
        let a = parse_request(r#"{"verb":"status","job_hash":"00000000deadbeef"}"#).unwrap();
        let b = parse_request(r#"{"verb":"result","job_hash":"0xdeadbeef"}"#).unwrap();
        assert_eq!(a, Request::Status(0xdead_beef));
        assert_eq!(b, Request::Result(0xdead_beef));
        assert_eq!(hash_str(0xdead_beef), "00000000deadbeef");
    }

    #[test]
    fn metrics_verb_parses_and_verb_indices_cover_the_table() {
        assert_eq!(
            parse_request(r#"{"verb":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        // Every variant's index names itself in the wire table.
        for (req, name) in [
            (Request::Submit(Vec::new()), "submit"),
            (Request::Status(0), "status"),
            (Request::Result(0), "result"),
            (Request::Metrics, "metrics"),
            (Request::Drain, "drain"),
        ] {
            assert_eq!(VERBS[req.verb_index()], name);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        for (line, needle) in [
            ("{", "bad JSON"),
            (r#"{"verb":"reset"}"#, "unknown verb"),
            (r#"{"jobs":[]}"#, "missing \"verb\""),
            (r#"{"verb":"status"}"#, "missing \"job_hash\""),
            (r#"{"verb":"status","job_hash":"xyz"}"#, "bad job hash"),
            (r#"{"verb":"submit"}"#, "\"jobs\" or \"job\""),
            (
                r#"{"verb":"submit","jobs":[{"arch":"dmt_cgra"}]}"#,
                "job 0: missing \"bench\"",
            ),
            (
                r#"{"verb":"submit","jobs":[{"bench":"scan","arch":"dmt_cgra","config":{"no.such":1}}]}"#,
                "unknown config field",
            ),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err:?} missing {needle:?}");
        }
    }
}
