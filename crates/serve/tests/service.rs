//! End-to-end daemon contracts, exercised over real TCP connections:
//!
//! 1. N concurrent clients submitting the same grid get byte-identical
//!    artifact JSON, and the bytes match across `threads 1` and
//!    `threads 4` daemons (real simulations, scan × all machines);
//! 2. duplicate submissions are cache hits: a warm restart on the same
//!    cache directory re-serves every artifact with **zero** executor
//!    invocations (counted, not inferred);
//! 3. `drain` finishes in-flight work before the server exits, and
//!    post-drain submissions are rejected;
//! 4. the admission bound rejects whole requests with the configured
//!    `retry_after_ms` hint, and admits again once the queue drains;
//! 5. malformed requests get `{"ok":false}` answers with context, and
//!    never wedge the connection;
//! 6. `metrics` tracks the daemon's life faithfully: queue and
//!    lifecycle totals move across submit → duplicate submit → drain,
//!    cache counters match the executions, per-verb latency histograms
//!    count every request, and finished jobs report `wall_ms`;
//! 7. transiently-failing jobs are retried with backoff until they
//!    succeed (attempt history reported) or exhaust the budget;
//! 8. jobs exceeding their `deadline_cycles` land in `timed_out` —
//!    permanently, without retry, and without poisoning the cache;
//! 9. a client disconnecting mid-request neither wedges the daemon nor
//!    leaks its work: other clients keep being served and drain is
//!    clean.

use dmt_runner::artifact::Json;
use dmt_runner::JobOutcome;
use dmt_serve::{Executor, ServeOptions, ServeSummary, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A unique, empty scratch directory per test (tests share one process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmt_serve_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boots a daemon on an ephemeral port; returns its address and the
/// thread that will yield the run summary once it drains.
fn boot(
    cache_dir: &Path,
    opts: ServeOptions,
    exec: Executor,
) -> (SocketAddr, JoinHandle<ServeSummary>) {
    let server = Server::bind("127.0.0.1:0", cache_dir, opts, exec).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

/// One line-delimited JSON client connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            reader,
            writer: stream,
        }
    }

    /// Sends one request line; returns the raw response line.
    fn req_raw(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("recv");
        assert!(resp.ends_with('\n'), "response is one full line: {resp:?}");
        resp.trim_end().to_owned()
    }

    fn req(&mut self, line: &str) -> Json {
        let raw = self.req_raw(line);
        Json::parse(&raw).unwrap_or_else(|e| panic!("bad response {raw:?}: {e}"))
    }

    /// Polls `status` until the job is done (or failed — asserted done).
    fn wait_done(&mut self, hash: &str) {
        for _ in 0..2000 {
            let resp = self.req(&format!(r#"{{"verb":"status","job_hash":"{hash}"}}"#));
            match resp.get("state").and_then(Json::as_str) {
                Some("done") => return,
                Some("failed") => panic!("job {hash} failed"),
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        panic!("job {hash} never finished");
    }
}

fn ok(resp: &Json) -> bool {
    resp.get("ok") == Some(&Json::Bool(true))
}

/// The job hashes out of a submit response, in request order.
fn hashes(resp: &Json) -> Vec<String> {
    let Some(Json::Arr(jobs)) = resp.get("jobs") else {
        panic!("no jobs in {resp:?}")
    };
    jobs.iter()
        .map(|j| {
            j.get("job_hash")
                .and_then(Json::as_str)
                .expect("hash")
                .to_owned()
        })
        .collect()
}

/// The scan benchmark on all three machines — real simulations, small
/// enough for a debug-build test.
const SCAN_GRID: &str = r#"{"verb":"submit","jobs":[
    {"bench":"scan","arch":"fermi_sm"},
    {"bench":"scan","arch":"mt_cgra"},
    {"bench":"scan","arch":"dmt_cgra"}]}"#;

/// Stub executor counting invocations; outcomes are deterministic
/// functions of the spec so artifacts are comparable.
fn counting_exec(count: &Arc<AtomicUsize>) -> Executor {
    let count = Arc::clone(count);
    Box::new(move |spec, _| {
        count.fetch_add(1, Ordering::SeqCst);
        JobOutcome::Infeasible(format!("stub outcome for {spec}"))
    })
}

/// The real bench executor, honoring per-job limits.
fn bench_exec() -> Executor {
    Box::new(dmt_bench::execute_job_limited)
}

#[test]
fn concurrent_clients_get_identical_artifacts_across_thread_counts() {
    let mut by_threads: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 4] {
        let dir = scratch(&format!("identity_t{threads}"));
        let opts = ServeOptions {
            threads,
            ..ServeOptions::default()
        };
        let (addr, handle) = boot(&dir, opts, bench_exec());
        // Four clients race the same grid in; dedup admits each job once.
        let clients: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr);
                    let resp = c.req(&SCAN_GRID.replace('\n', " "));
                    assert!(ok(&resp), "submit failed: {resp:?}");
                    let hs = hashes(&resp);
                    assert_eq!(hs.len(), 3);
                    for h in &hs {
                        c.wait_done(h);
                    }
                    // Fetch raw response lines — byte comparison below.
                    hs.iter()
                        .map(|h| c.req_raw(&format!(r#"{{"verb":"result","job_hash":"{h}"}}"#)))
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        let fetched: Vec<Vec<String>> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        // Every client saw the same bytes.
        for other in &fetched[1..] {
            assert_eq!(&fetched[0], other, "clients disagree");
        }
        Client::connect(addr).req(r#"{"verb":"drain"}"#);
        let summary = handle.join().unwrap();
        assert_eq!(
            summary,
            ServeSummary {
                done: 3,
                failed: 0,
                timed_out: 0
            }
        );
        by_threads.push(fetched.into_iter().next().unwrap());
    }
    // threads 1 vs threads 4: byte-identical artifact responses.
    assert_eq!(
        by_threads[0], by_threads[1],
        "thread count changed artifact bytes"
    );
    for line in &by_threads[0] {
        let doc = Json::parse(line).expect("result parses");
        assert!(ok(&doc));
        let artifact = doc.get("artifact").expect("artifact");
        assert_eq!(
            artifact.get("kind").and_then(Json::as_str),
            Some("job_cache_entry")
        );
        assert_eq!(artifact.get("status").and_then(Json::as_str), Some("ok"));
    }
}

#[test]
fn duplicate_submissions_are_cache_hits_with_zero_simulations() {
    let dir = scratch("dup");
    let grid = r#"{"verb":"submit","jobs":[{"bench":"a","arch":"dmt_cgra"},{"bench":"b","arch":"mt_cgra"}]}"#;

    // Cold daemon: two simulations, then in-table duplicates.
    let count = Arc::new(AtomicUsize::new(0));
    let (addr, handle) = boot(&dir, ServeOptions::default(), counting_exec(&count));
    let mut c = Client::connect(addr);
    let first = c.req(grid);
    assert!(ok(&first));
    let hs = hashes(&first);
    for h in &hs {
        c.wait_done(h);
    }
    assert_eq!(count.load(Ordering::SeqCst), 2);
    let again = c.req(grid);
    assert!(ok(&again));
    assert_eq!(hashes(&again), hs, "same grid, same hashes");
    let results_a: Vec<String> = hs
        .iter()
        .map(|h| c.req_raw(&format!(r#"{{"verb":"result","job_hash":"{h}"}}"#)))
        .collect();
    c.req(r#"{"verb":"drain"}"#);
    assert_eq!(handle.join().unwrap().done, 2);
    assert_eq!(
        count.load(Ordering::SeqCst),
        2,
        "duplicates must not simulate"
    );

    // Warm restart on the same cache directory: the memo table answers
    // everything; the executor is never invoked.
    let count2 = Arc::new(AtomicUsize::new(0));
    let (addr, handle) = boot(&dir, ServeOptions::default(), counting_exec(&count2));
    let mut c = Client::connect(addr);
    let warm = c.req(grid);
    assert!(ok(&warm));
    let Some(Json::Arr(jobs)) = warm.get("jobs") else {
        panic!("no jobs")
    };
    for job in jobs {
        assert_eq!(job.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(job.get("cached"), Some(&Json::Bool(true)));
    }
    // `status` by hash alone also answers from disk for unknown hashes
    // on a daemon that never ran the job.
    let status = c.req(&format!(r#"{{"verb":"status","job_hash":"{}"}}"#, hs[0]));
    assert!(ok(&status));
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    let results_b: Vec<String> = hs
        .iter()
        .map(|h| c.req_raw(&format!(r#"{{"verb":"result","job_hash":"{h}"}}"#)))
        .collect();
    assert_eq!(results_a, results_b, "restart changed served bytes");
    c.req(r#"{"verb":"drain"}"#);
    let summary = handle.join().unwrap();
    assert_eq!(
        count2.load(Ordering::SeqCst),
        0,
        "warm daemon must not simulate"
    );
    assert_eq!(summary.done, 0, "nothing executed, only served");
}

#[test]
fn drain_finishes_in_flight_work_then_rejects() {
    let dir = scratch("drain");
    let exec: Executor = Box::new(|spec, _| {
        std::thread::sleep(Duration::from_millis(20));
        JobOutcome::Infeasible(format!("slow stub for {spec}"))
    });
    let (addr, handle) = boot(&dir, ServeOptions::default(), exec);
    let mut c = Client::connect(addr);
    let grid = r#"{"verb":"submit","jobs":[
        {"bench":"a","arch":"dmt_cgra"},{"bench":"b","arch":"dmt_cgra"},
        {"bench":"c","arch":"dmt_cgra"},{"bench":"d","arch":"dmt_cgra"}]}"#
        .replace('\n', " ");
    let resp = c.req(&grid);
    assert!(ok(&resp));
    // Drain races the sleeping executors; all four must still finish.
    let drained = c.req(r#"{"verb":"drain"}"#);
    assert!(ok(&drained));
    let summary = handle.join().unwrap();
    assert_eq!(
        summary,
        ServeSummary {
            done: 4,
            failed: 0,
            timed_out: 0
        }
    );
    // The lingering connection still answers; new work is refused.
    let refused = c.req(&grid);
    assert!(!ok(&refused));
    assert!(
        refused
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("draining")),
        "{refused:?}"
    );
}

#[test]
fn full_queue_rejects_whole_requests_with_retry_hint() {
    let dir = scratch("backpressure");
    let gate = Arc::new(AtomicBool::new(false));
    let exec: Executor = {
        let gate = Arc::clone(&gate);
        Box::new(move |spec, _| {
            while !gate.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(2));
            }
            JobOutcome::Infeasible(format!("gated stub for {spec}"))
        })
    };
    let opts = ServeOptions {
        queue_depth: 2,
        retry_after_ms: 123,
        ..ServeOptions::default()
    };
    let (addr, handle) = boot(&dir, opts, exec);
    let mut c = Client::connect(addr);
    let fill = c.req(r#"{"verb":"submit","jobs":[{"bench":"a","arch":"dmt_cgra"},{"bench":"b","arch":"dmt_cgra"}]}"#);
    assert!(ok(&fill));
    let overflow = c.req(r#"{"verb":"submit","job":{"bench":"c","arch":"dmt_cgra"}}"#);
    assert!(!ok(&overflow), "third job must be rejected: {overflow:?}");
    // Base 123 plus deterministic jitter of up to half the base.
    let hint = overflow
        .get("retry_after_ms")
        .and_then(Json::as_u64)
        .expect("retry_after_ms");
    assert!((123..=184).contains(&hint), "hint {hint} out of range");
    // Resubmitting the admitted grid is free (no new queue slots).
    let dup = c.req(r#"{"verb":"submit","jobs":[{"bench":"a","arch":"dmt_cgra"},{"bench":"b","arch":"dmt_cgra"}]}"#);
    assert!(ok(&dup), "duplicates need no slots: {dup:?}");
    // Open the gate; once drained, the retried job is admitted.
    gate.store(true, Ordering::SeqCst);
    for h in hashes(&fill) {
        c.wait_done(&h);
    }
    let retry = c.req(r#"{"verb":"submit","job":{"bench":"c","arch":"dmt_cgra"}}"#);
    assert!(ok(&retry), "retry after drain must admit: {retry:?}");
    for h in hashes(&retry) {
        c.wait_done(&h);
    }
    c.req(r#"{"verb":"drain"}"#);
    assert_eq!(handle.join().unwrap().done, 3);
}

#[test]
fn metrics_track_submit_duplicate_and_drain() {
    let dir = scratch("metrics");
    let count = Arc::new(AtomicUsize::new(0));
    let (addr, handle) = boot(&dir, ServeOptions::default(), counting_exec(&count));
    let mut c = Client::connect(addr);

    // Helper views into the nested response.
    let num = |doc: &Json, path: [&str; 2]| {
        doc.get(path[0])
            .and_then(|s| s.get(path[1]))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing {path:?} in {doc:?}"))
    };
    let verb_count = |doc: &Json, verb: &str| {
        doc.get("requests")
            .and_then(|r| r.get("latency_us"))
            .and_then(|l| l.get(verb))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing latency for {verb} in {doc:?}"))
    };

    // Fresh daemon: everything zero; all five verbs present. The
    // metrics request itself is recorded after its snapshot, so its
    // own histogram still reads 0 here.
    let fresh = c.req(r#"{"verb":"metrics"}"#);
    assert!(ok(&fresh));
    for path in [
        ["queue", "queued"],
        ["queue", "running"],
        ["queue", "outstanding"],
        ["jobs", "known"],
        ["jobs", "done"],
        ["jobs", "failed"],
        ["cache", "hits"],
        ["cache", "stores"],
        ["requests", "bad"],
    ] {
        assert_eq!(num(&fresh, path), 0, "{path:?} on a fresh daemon");
    }
    for verb in ["submit", "status", "result", "metrics", "drain"] {
        assert_eq!(verb_count(&fresh, verb), 0, "{verb} count on fresh daemon");
    }
    assert_eq!(num(&fresh, ["queue", "depth"]), 256);

    // Two real admissions: both were cache misses at classification,
    // both executed and stored.
    let grid = r#"{"verb":"submit","jobs":[{"bench":"a","arch":"dmt_cgra"},{"bench":"b","arch":"mt_cgra"}]}"#;
    let first = c.req(grid);
    assert!(ok(&first));
    let hs = hashes(&first);
    for h in &hs {
        c.wait_done(h);
    }
    let after = c.req(r#"{"verb":"metrics"}"#);
    assert_eq!(num(&after, ["jobs", "known"]), 2);
    assert_eq!(num(&after, ["jobs", "done"]), 2);
    assert_eq!(num(&after, ["jobs", "failed"]), 0);
    assert_eq!(num(&after, ["queue", "outstanding"]), 0);
    assert_eq!(num(&after, ["cache", "misses"]), 2);
    assert_eq!(num(&after, ["cache", "stores"]), 2);
    assert_eq!(num(&after, ["cache", "hits"]), 0);
    assert_eq!(verb_count(&after, "metrics"), 1, "the fresh-daemon call");
    assert!(verb_count(&after, "status") >= 2, "wait_done polls status");

    // Finished jobs report their executor wall-clock in status.
    let status = c.req(&format!(r#"{{"verb":"status","job_hash":"{}"}}"#, hs[0]));
    assert!(
        status.get("wall_ms").and_then(Json::as_u64).is_some(),
        "done jobs carry wall_ms: {status:?}"
    );

    // A duplicate submit touches neither the executor nor the cache
    // counters — only the submit histogram moves.
    let dup = c.req(grid);
    assert!(ok(&dup));
    let after_dup = c.req(r#"{"verb":"metrics"}"#);
    assert_eq!(count.load(Ordering::SeqCst), 2, "duplicates never execute");
    assert_eq!(num(&after_dup, ["jobs", "known"]), 2);
    assert_eq!(num(&after_dup, ["cache", "misses"]), 2);
    assert_eq!(verb_count(&after_dup, "submit"), 2);

    // Malformed lines are counted, not attributed to any verb.
    let bad = c.req("{");
    assert!(!ok(&bad));
    let after_bad = c.req(r#"{"verb":"metrics"}"#);
    assert_eq!(num(&after_bad, ["requests", "bad"]), 1);

    // Drain flips the flag; the lingering connection still reports.
    c.req(r#"{"verb":"drain"}"#);
    let drained = c.req(r#"{"verb":"metrics"}"#);
    assert_eq!(
        drained.get("queue").and_then(|q| q.get("draining")),
        Some(&Json::Bool(true))
    );
    assert_eq!(verb_count(&drained, "drain"), 1);
    assert_eq!(
        handle.join().unwrap(),
        ServeSummary {
            done: 2,
            failed: 0,
            timed_out: 0
        }
    );
}

#[test]
fn malformed_requests_get_contextual_errors() {
    let dir = scratch("errors");
    let opts = ServeOptions {
        benches: vec!["scan".into()],
        ..ServeOptions::default()
    };
    let (addr, handle) = boot(&dir, opts, counting_exec(&Arc::new(AtomicUsize::new(0))));
    let mut c = Client::connect(addr);
    for (req, needle) in [
        ("{", "bad JSON"),
        (r#"{"verb":"reboot"}"#, "unknown verb"),
        (r#"{"verb":"status","job_hash":"zz"}"#, "bad job hash"),
        (
            r#"{"verb":"status","job_hash":"ffffffffffffffff"}"#,
            "unknown job",
        ),
        (
            r#"{"verb":"result","job_hash":"ffffffffffffffff"}"#,
            "unknown job",
        ),
        (
            r#"{"verb":"submit","job":{"bench":"nosuch","arch":"dmt_cgra"}}"#,
            "unknown benchmark",
        ),
        (
            r#"{"verb":"submit","job":{"bench":"scan","arch":"warp9"}}"#,
            "",
        ),
    ] {
        let resp = c.req(req);
        assert!(!ok(&resp), "{req} must fail: {resp:?}");
        let err = resp
            .get("error")
            .and_then(Json::as_str)
            .expect("error field");
        assert!(err.contains(needle), "{req}: {err:?} missing {needle:?}");
    }
    // The connection survives all of the above.
    let good = c.req(r#"{"verb":"submit","job":{"bench":"scan","arch":"dmt_cgra"}}"#);
    assert!(ok(&good));
    for h in hashes(&good) {
        c.wait_done(&h);
    }
    c.req(r#"{"verb":"drain"}"#);
    assert_eq!(handle.join().unwrap().done, 1);
}

#[test]
fn transient_failures_retry_with_backoff_until_success() {
    let dir = scratch("retry");
    // Fail the first two attempts, then succeed: with max_retries 2
    // (three attempts total) the job must end done.
    let count = Arc::new(AtomicUsize::new(0));
    let exec: Executor = {
        let count = Arc::clone(&count);
        Box::new(move |spec, _| {
            if count.fetch_add(1, Ordering::SeqCst) < 2 {
                JobOutcome::Failed(format!("flaky stub for {spec}"))
            } else {
                JobOutcome::Infeasible(format!("stub outcome for {spec}"))
            }
        })
    };
    let opts = ServeOptions {
        max_retries: 2,
        retry_backoff_ms: 1,
        ..ServeOptions::default()
    };
    let (addr, handle) = boot(&dir, opts, exec);
    let mut c = Client::connect(addr);
    let resp = c.req(r#"{"verb":"submit","job":{"bench":"flaky","arch":"dmt_cgra"}}"#);
    assert!(ok(&resp));
    let h = hashes(&resp).remove(0);
    c.wait_done(&h);
    assert_eq!(
        count.load(Ordering::SeqCst),
        3,
        "two failures + one success"
    );
    // status reports the full attempt history, failures first.
    let status = c.req(&format!(r#"{{"verb":"status","job_hash":"{h}"}}"#));
    assert_eq!(status.get("attempts").and_then(Json::as_u64), Some(3));
    let Some(Json::Arr(history)) = status.get("history") else {
        panic!("no history in {status:?}")
    };
    let statuses: Vec<_> = history
        .iter()
        .map(|a| a.get("status").and_then(Json::as_str).expect("status"))
        .collect();
    assert_eq!(statuses, ["failed", "failed", "infeasible"]);
    assert!(
        history[0]
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("flaky stub")),
        "{history:?}"
    );
    c.req(r#"{"verb":"drain"}"#);
    assert_eq!(
        handle.join().unwrap(),
        ServeSummary {
            done: 1,
            failed: 0,
            timed_out: 0
        }
    );
}

#[test]
fn exhausted_retries_mark_the_job_failed_with_history() {
    let dir = scratch("exhaust");
    let exec: Executor = Box::new(|spec, _| JobOutcome::Failed(format!("always fails: {spec}")));
    let opts = ServeOptions {
        max_retries: 1,
        retry_backoff_ms: 1,
        ..ServeOptions::default()
    };
    let (addr, handle) = boot(&dir, opts, exec);
    let mut c = Client::connect(addr);
    let resp = c.req(r#"{"verb":"submit","job":{"bench":"doomed","arch":"dmt_cgra"}}"#);
    assert!(ok(&resp));
    let h = hashes(&resp).remove(0);
    // Poll until the retry budget (two attempts) is spent.
    let status = loop {
        let s = c.req(&format!(r#"{{"verb":"status","job_hash":"{h}"}}"#));
        if s.get("state").and_then(Json::as_str) == Some("failed") {
            break s;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(status.get("attempts").and_then(Json::as_u64), Some(2));
    // A failed job has no artifact to serve.
    let result = c.req(&format!(r#"{{"verb":"result","job_hash":"{h}"}}"#));
    assert!(!ok(&result));
    assert_eq!(result.get("state").and_then(Json::as_str), Some("failed"));
    c.req(r#"{"verb":"drain"}"#);
    assert_eq!(
        handle.join().unwrap(),
        ServeSummary {
            done: 0,
            failed: 1,
            timed_out: 0
        }
    );
}

#[test]
fn deadline_cycles_times_out_without_retry_or_cache_poisoning() {
    let dir = scratch("deadline");
    let (addr, handle) = boot(&dir, ServeOptions::default(), bench_exec());
    let mut c = Client::connect(addr);
    // The same spec with and without a one-cycle budget: the budgeted
    // job times out, the free one completes.
    let resp = c.req(
        r#"{"verb":"submit","jobs":[
            {"bench":"scan","arch":"dmt_cgra","deadline_cycles":1},
            {"bench":"scan","arch":"mt_cgra"}]}"#
            .replace('\n', " ")
            .as_str(),
    );
    assert!(ok(&resp), "{resp:?}");
    let hs = hashes(&resp);
    let timed = loop {
        let s = c.req(&format!(r#"{{"verb":"status","job_hash":"{}"}}"#, hs[0]));
        if s.get("state").and_then(Json::as_str) == Some("timed_out") {
            break s;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    // Timed out is permanent for the budget: exactly one attempt.
    assert_eq!(timed.get("attempts").and_then(Json::as_u64), Some(1));
    assert!(
        timed
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("deadline")),
        "{timed:?}"
    );
    c.wait_done(&hs[1]);
    let result = c.req(&format!(r#"{{"verb":"result","job_hash":"{}"}}"#, hs[0]));
    assert!(!ok(&result));
    assert_eq!(
        result.get("state").and_then(Json::as_str),
        Some("timed_out")
    );
    let metrics = c.req(r#"{"verb":"metrics"}"#);
    assert_eq!(
        metrics
            .get("jobs")
            .and_then(|j| j.get("timed_out"))
            .and_then(Json::as_u64),
        Some(1)
    );
    // Nothing timed out was cached: only the completing job stored.
    assert_eq!(
        metrics
            .get("cache")
            .and_then(|j| j.get("stores"))
            .and_then(Json::as_u64),
        Some(1)
    );
    c.req(r#"{"verb":"drain"}"#);
    assert_eq!(
        handle.join().unwrap(),
        ServeSummary {
            done: 1,
            failed: 0,
            timed_out: 1
        }
    );
}

#[test]
fn client_disconnect_mid_request_leaves_the_daemon_serving() {
    let dir = scratch("disconnect");
    let count = Arc::new(AtomicUsize::new(0));
    let (addr, handle) = boot(&dir, ServeOptions::default(), counting_exec(&count));
    // One client drops mid-line (no newline, connection closed); another
    // submits half a grid and vanishes before reading its response.
    {
        let mut rude = TcpStream::connect(addr).expect("connect");
        rude.write_all(br#"{"verb":"submit","job"#).expect("send");
    }
    {
        let mut fire_and_forget = TcpStream::connect(addr).expect("connect");
        fire_and_forget
            .write_all(b"{\"verb\":\"submit\",\"job\":{\"bench\":\"a\",\"arch\":\"dmt_cgra\"}}\n")
            .expect("send");
        // Dropped without reading: the daemon's write may fail mid-response.
    }
    // The daemon still serves a well-behaved client, and the abandoned
    // job still runs to completion.
    let mut c = Client::connect(addr);
    let resp = c.req(r#"{"verb":"submit","job":{"bench":"b","arch":"dmt_cgra"}}"#);
    assert!(ok(&resp), "{resp:?}");
    for h in hashes(&resp) {
        c.wait_done(&h);
    }
    c.req(r#"{"verb":"drain"}"#);
    let summary = handle.join().unwrap();
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.timed_out, 0);
    // Both the abandoned and the attended submissions executed.
    assert_eq!(
        summary.done,
        u64::try_from(count.load(Ordering::SeqCst)).unwrap()
    );
    assert!(summary.done >= 1, "the attended job must have run");
}

#[test]
fn retry_hints_are_deterministic_across_daemons() {
    // The same rejection sequence produces the same jittered hints on
    // two independent daemons (the ordinal, not the clock, drives it).
    let mut runs: Vec<Vec<u64>> = Vec::new();
    for tag in ["jitter_a", "jitter_b"] {
        let dir = scratch(tag);
        let gate = Arc::new(AtomicBool::new(false));
        let exec: Executor = {
            let gate = Arc::clone(&gate);
            Box::new(move |spec, _| {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                JobOutcome::Infeasible(format!("gated stub for {spec}"))
            })
        };
        let opts = ServeOptions {
            queue_depth: 1,
            retry_after_ms: 100,
            ..ServeOptions::default()
        };
        let (addr, handle) = boot(&dir, opts, exec);
        let mut c = Client::connect(addr);
        let fill = c.req(r#"{"verb":"submit","job":{"bench":"a","arch":"dmt_cgra"}}"#);
        assert!(ok(&fill));
        let hints: Vec<u64> = (0..4)
            .map(|_| {
                let resp = c.req(r#"{"verb":"submit","job":{"bench":"z","arch":"dmt_cgra"}}"#);
                assert!(!ok(&resp));
                let hint = resp
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .expect("hint");
                assert!((100..=150).contains(&hint), "hint {hint} out of range");
                hint
            })
            .collect();
        gate.store(true, Ordering::SeqCst);
        for h in hashes(&fill) {
            c.wait_done(&h);
        }
        c.req(r#"{"verb":"drain"}"#);
        handle.join().unwrap();
        runs.push(hints);
    }
    assert_eq!(runs[0], runs[1], "hints must not depend on the clock");
}
