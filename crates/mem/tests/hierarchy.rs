//! Memory-hierarchy behaviour tests: locality, eviction, bandwidth and
//! policy effects that the architecture comparison rests on.

use dmt_common::config::{CacheConfig, DramConfig, MemConfig, WritePolicy};
use dmt_common::ids::Addr;
use dmt_common::stats::RunStats;
use dmt_mem::{AccessOutcome, CacheLevel, Dram, MemSystem, Scratchpad};

fn done(outcome: AccessOutcome) -> u64 {
    match outcome {
        AccessOutcome::Done(t) => t,
        AccessOutcome::StallMshrFull => panic!("unexpected stall"),
    }
}

#[test]
fn hot_working_set_stays_resident() {
    let mut m = MemSystem::new(&MemConfig::default(), WritePolicy::WriteBackAllocate);
    // Touch 4 KiB (32 lines), then sweep it 10 more times.
    let mut now = 0;
    for pass in 0..11u64 {
        for line in 0..32u64 {
            now = done(m.load(Addr(line * 128), now)).max(now + 1);
        }
        let _ = pass;
    }
    let mut s = RunStats::default();
    m.export_stats(&mut s);
    assert_eq!(s.l1_misses, 32, "only the cold pass misses");
    assert_eq!(s.l1_hits, 32 * 10);
}

#[test]
fn streaming_misses_every_line() {
    let mut m = MemSystem::new(&MemConfig::default(), WritePolicy::WriteBackAllocate);
    let mut now = 0;
    // 1 MiB stream: far beyond the 64 KiB L1 — every line misses L1.
    for line in 0..1024u64 {
        loop {
            match m.load(Addr(line * 128), now) {
                AccessOutcome::Done(t) => {
                    now = t;
                    break;
                }
                AccessOutcome::StallMshrFull => now += 1,
            }
        }
    }
    let mut s = RunStats::default();
    m.export_stats(&mut s);
    assert_eq!(s.l1_misses, 1024);
    assert!(
        s.l2_misses >= 1024 - 6144 / 128,
        "L2 cannot hold the stream either"
    );
    assert_eq!(s.dram_reads, s.l2_misses);
}

#[test]
fn lru_evicts_the_least_recent_way() {
    // 2-set cache, 2 ways, 64B lines: lines 0,2,4 map to set 0.
    let cfg = CacheConfig {
        size_bytes: 256,
        line_bytes: 64,
        ways: 2,
        banks: 1,
        hit_latency: 1,
        mshrs: 8,
        write_policy: WritePolicy::WriteBackAllocate,
    };
    let mut c = CacheLevel::new(cfg);
    let mut dram = Dram::new(DramConfig::default(), 64);
    let a = Addr(0); // set 0
    let b = Addr(128); // set 0
    let evictor = Addr(256); // set 0
    let mut now = 0;
    now = done(c.load(a, now, &mut dram)) + 1;
    now = done(c.load(b, now, &mut dram)) + 1;
    // Touch `a` again so `b` is the LRU way.
    now = done(c.load(a, now, &mut dram)) + 1;
    now = done(c.load(evictor, now, &mut dram)) + 1; // evicts b
    let misses_before = c.misses;
    now = done(c.load(a, now, &mut dram)) + 1; // still resident
    assert_eq!(c.misses, misses_before, "a survived the eviction");
    let _ = done(c.load(b, now, &mut dram)); // b was evicted
    assert_eq!(c.misses, misses_before + 1, "b was the LRU victim");
}

#[test]
fn write_through_l1_pushes_every_store_to_l2() {
    let mut m = MemSystem::new(&MemConfig::default(), WritePolicy::WriteThroughNoAllocate);
    let mut now = 0;
    for i in 0..64u64 {
        now = done(m.store(Addr(i * 4), now)) + 1; // same line mostly
    }
    let mut s = RunStats::default();
    m.export_stats(&mut s);
    // Write-back would coalesce these into 2 dirty lines; write-through
    // pays L2 bandwidth for all 64.
    assert!(s.l2_hits + s.l2_misses >= 64);
}

#[test]
fn write_back_l1_coalesces_stores_into_dirty_lines() {
    let mut m = MemSystem::new(&MemConfig::default(), WritePolicy::WriteBackAllocate);
    let mut now = 0;
    for i in 0..64u64 {
        now = done(m.store(Addr(i * 4), now)) + 1;
    }
    let mut s = RunStats::default();
    m.export_stats(&mut s);
    // 64 word stores land in 2 lines: 2 allocate fills, the rest hit.
    assert_eq!(s.l1_misses, 2);
    assert_eq!(s.l1_hits, 62);
}

#[test]
fn dram_channels_scale_bandwidth() {
    let narrow = DramConfig {
        channels: 1,
        banks_per_channel: 1,
        latency: 100,
        bank_busy_cycles: 10,
    };
    let wide = DramConfig {
        channels: 8,
        ..narrow
    };
    let run = |cfg: DramConfig| {
        let mut d = Dram::new(cfg, 128);
        (0..64u64).map(|i| d.read(Addr(i * 128), 0)).max().unwrap()
    };
    let t_narrow = run(narrow);
    let t_wide = run(wide);
    assert!(
        t_narrow > 4 * t_wide,
        "8 channels should be much faster: {t_narrow} vs {t_wide}"
    );
}

#[test]
fn scratchpad_conflict_degree_serializes_linearly() {
    let cfg = dmt_common::config::ScratchpadConfig {
        size_bytes: 4096,
        banks: 32,
        latency: 4,
    };
    // 8 accesses to the same bank issued the same cycle.
    let mut p = Scratchpad::new(cfg);
    let times: Vec<u64> = (0..8u64).map(|i| p.access(Addr(i * 32 * 4), 0)).collect();
    for (i, &t) in times.iter().enumerate() {
        assert_eq!(t, 4 + i as u64, "access {i} serialized behind the bank");
    }
    assert_eq!(p.bank_conflicts, 7);
}

#[test]
fn mshr_stall_clears_after_fills_land() {
    let mut cfg = MemConfig::default();
    cfg.l1.mshrs = 2;
    let mut m = MemSystem::new(&cfg, WritePolicy::WriteBackAllocate);
    assert!(matches!(m.load(Addr(0), 0), AccessOutcome::Done(_)));
    assert!(matches!(m.load(Addr(4096), 0), AccessOutcome::Done(_)));
    assert!(matches!(
        m.load(Addr(8192), 0),
        AccessOutcome::StallMshrFull
    ));
    // Far in the future the fills have landed.
    assert!(matches!(m.load(Addr(8192), 10_000), AccessOutcome::Done(_)));
}
