//! The assembled global-memory hierarchy: L1 → L2 → DRAM.
//!
//! `MemSystem` is the single entry point the execution backends use for
//! global-memory timing. The L1 write policy is the §5.1 architectural
//! difference between machines: write-back/write-allocate for MT-CGRA and
//! dMT-CGRA cores, write-through/write-no-allocate for the Fermi baseline.

use crate::cache::{AccessOutcome, Backing, CacheLevel};
use crate::dram::Dram;
use dmt_common::config::{MemConfig, WritePolicy};
use dmt_common::ids::Addr;
use dmt_common::stats::{PhaseStats, RunStats};

/// L1 → L2 → DRAM hierarchy timing model.
#[derive(Debug, Clone)]
pub struct MemSystem {
    l1: CacheLevel,
    l2: CacheLevel,
    dram: Dram,
}

/// `CacheLevel` + `Dram` viewed as one backing store for the L1.
struct L2Dram<'a> {
    l2: &'a mut CacheLevel,
    dram: &'a mut Dram,
}

impl Backing for L2Dram<'_> {
    fn read_line(&mut self, addr: Addr, now: u64) -> u64 {
        match self.l2.load(addr, now, self.dram) {
            AccessOutcome::Done(t) => t,
            // The L2 has ample MSHRs; under extreme pressure model the
            // stall as queueing delay rather than propagating rejection.
            AccessOutcome::StallMshrFull => {
                let retry = now + self.l2.config().hit_latency;
                match self.l2.load(addr, retry, self.dram) {
                    AccessOutcome::Done(t) => t,
                    AccessOutcome::StallMshrFull => retry + self.l2.config().hit_latency * 4,
                }
            }
        }
    }

    fn write_line(&mut self, addr: Addr, now: u64) -> u64 {
        match self.l2.store(addr, now, self.dram) {
            AccessOutcome::Done(t) => t,
            AccessOutcome::StallMshrFull => now + self.l2.config().hit_latency * 4,
        }
    }
}

impl MemSystem {
    /// Builds the hierarchy; `l1_policy` selects the §5.1 per-machine L1
    /// write policy (the L2 is always write-back/write-allocate, as on
    /// Fermi).
    #[must_use]
    pub fn new(cfg: &MemConfig, l1_policy: WritePolicy) -> MemSystem {
        let mut l1_cfg = cfg.l1;
        l1_cfg.write_policy = l1_policy;
        let mut l2_cfg = cfg.l2;
        l2_cfg.write_policy = WritePolicy::WriteBackAllocate;
        MemSystem {
            l1: CacheLevel::new(l1_cfg),
            l2: CacheLevel::new(l2_cfg),
            dram: Dram::new(cfg.dram, cfg.l2.line_bytes),
        }
    }

    /// Books a load issued at `now`; `Done(t)` gives the data-ready cycle,
    /// `StallMshrFull` asks the unit to retry later.
    pub fn load(&mut self, addr: Addr, now: u64) -> AccessOutcome {
        let mut next = L2Dram {
            l2: &mut self.l2,
            dram: &mut self.dram,
        };
        self.l1.load(addr, now, &mut next)
    }

    /// Books a store issued at `now`.
    pub fn store(&mut self, addr: Addr, now: u64) -> AccessOutcome {
        let mut next = L2Dram {
            l2: &mut self.l2,
            dram: &mut self.dram,
        };
        self.l1.store(addr, now, &mut next)
    }

    /// Copies hierarchy counters into a [`RunStats`] record (totals view;
    /// delegates to [`MemSystem::export_phase`] so the two exports cannot
    /// drift).
    pub fn export_stats(&self, stats: &mut RunStats) {
        let mut counters = stats.totals();
        self.export_phase(&mut counters);
        stats.l1_hits = counters.l1_hits;
        stats.l1_misses = counters.l1_misses;
        stats.l2_hits = counters.l2_hits;
        stats.l2_misses = counters.l2_misses;
        stats.dram_reads = counters.dram_reads;
        stats.dram_writes = counters.dram_writes;
    }

    /// Copies hierarchy counters into a cumulative [`PhaseStats`] snapshot
    /// (the engines call this at every phase boundary; the counters are
    /// cumulative, so phase shares are recovered by differencing).
    pub fn export_phase(&self, stats: &mut PhaseStats) {
        stats.l1_hits = self.l1.hits;
        stats.l1_misses = self.l1.misses;
        stats.l2_hits = self.l2.hits;
        stats.l2_misses = self.l2.misses;
        stats.dram_reads = self.dram.reads;
        stats.dram_writes = self.dram.writes;
    }

    /// Cumulative `(l1, l2)` fill counts — misses that pulled a line into
    /// the level. Cheap enough to read every cycle; the observability
    /// sampler polls this at trace sample boundaries.
    #[must_use]
    pub fn fill_counts(&self) -> (u64, u64) {
        (self.l1.misses, self.l2.misses)
    }

    /// The earliest cycle at which the whole hierarchy is quiescent.
    #[must_use]
    pub fn idle_at(&self) -> u64 {
        self.l1
            .idle_at()
            .max(self.l2.idle_at())
            .max(self.dram.idle_at())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_common::config::MemConfig;

    fn system(policy: WritePolicy) -> MemSystem {
        MemSystem::new(&MemConfig::default(), policy)
    }

    #[test]
    fn cold_load_reaches_dram_then_hits() {
        let mut m = system(WritePolicy::WriteBackAllocate);
        let AccessOutcome::Done(t_miss) = m.load(Addr(0), 0) else {
            panic!("unexpected stall");
        };
        // Cold miss traverses L1 + L2 + DRAM latencies.
        assert!(t_miss >= 24 + 60 + 220, "cold miss {t_miss}");
        let AccessOutcome::Done(t_hit) = m.load(Addr(0), t_miss + 1) else {
            panic!("unexpected stall");
        };
        assert_eq!(t_hit, t_miss + 1 + 24, "subsequent access is an L1 hit");
        let mut s = RunStats::default();
        m.export_stats(&mut s);
        assert_eq!((s.l1_hits, s.l1_misses), (1, 1));
        assert_eq!(s.dram_reads, 1);
    }

    #[test]
    fn write_through_store_misses_do_not_allocate() {
        let mut m = system(WritePolicy::WriteThroughNoAllocate);
        let _ = m.store(Addr(0), 0);
        let AccessOutcome::Done(_) = m.load(Addr(0), 1000) else {
            panic!("unexpected stall");
        };
        let mut s = RunStats::default();
        m.export_stats(&mut s);
        assert_eq!(s.l1_misses, 2, "store miss then load miss");
    }

    #[test]
    fn write_back_store_allocates() {
        let mut m = system(WritePolicy::WriteBackAllocate);
        let _ = m.store(Addr(0), 0);
        let AccessOutcome::Done(_) = m.load(Addr(0), 2000) else {
            panic!("unexpected stall");
        };
        let mut s = RunStats::default();
        m.export_stats(&mut s);
        assert_eq!(s.l1_hits, 1, "load hits the allocated line");
        assert_eq!(s.l1_misses, 1);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut m = system(WritePolicy::WriteBackAllocate);
            let mut last = 0;
            for i in 0..200u64 {
                if let AccessOutcome::Done(t) = m.load(Addr(i * 64), i) {
                    last = t;
                }
            }
            last
        };
        assert_eq!(run(), run());
    }
}
