//! Memory-system timing models for the dMT-CGRA reproduction.
//!
//! The paper evaluates three machines sharing one off-core memory system
//! (Table 2): a banked L1, a banked L2 and multi-channel GDDR5-class DRAM.
//! This crate provides deterministic *booking-machine* timing models for
//! all of them, plus the shared-memory [`scratchpad`] used by the GPGPU and
//! MT-CGRA baselines and the [`lvc`] (Live Value Cache) spill buffer used
//! when elevator cascades overflow (§4.3).
//!
//! Functional data is **not** stored here — values live in
//! [`dmt_common::memimg::MemImage`]; these models answer only *when* an
//! access completes and what traffic it generates.
//!
//! # Examples
//!
//! ```
//! use dmt_mem::{MemSystem, AccessOutcome};
//! use dmt_common::config::{MemConfig, WritePolicy};
//! use dmt_common::ids::Addr;
//!
//! let mut m = MemSystem::new(&MemConfig::default(), WritePolicy::WriteBackAllocate);
//! let AccessOutcome::Done(cold) = m.load(Addr(0), 0) else { panic!() };
//! let AccessOutcome::Done(warm) = m.load(Addr(4), cold) else { panic!() };
//! assert!(warm - cold < cold, "second access hits in L1");
//! ```

pub mod cache;
pub mod dram;
pub mod lvc;
pub mod scratchpad;
pub mod system;

pub use cache::{AccessOutcome, Backing, CacheLevel};
pub use dram::Dram;
pub use lvc::Lvc;
pub use scratchpad::Scratchpad;
pub use system::MemSystem;
