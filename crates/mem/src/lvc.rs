//! The Live Value Cache (LVC): the compiler-managed spill buffer.
//!
//! When a ΔTID is so large that even cascaded elevator nodes cannot buffer
//! it, the compiler spills the communicated values here (§4.3: "similar to
//! the spill-fill technique used in GPGPUs"). The LVC is small and fast;
//! spills are counted so the energy model can charge them.

use dmt_common::config::LvcConfig;
use dmt_common::ids::Addr;

/// Live-Value-Cache timing model (a small multi-ported SRAM).
#[derive(Debug, Clone)]
pub struct Lvc {
    cfg: LvcConfig,
    busy_until: Vec<u64>,
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
}

/// Ports on the LVC (fixed; it is a small structure).
const LVC_PORTS: usize = 4;

impl Lvc {
    /// Creates an LVC model.
    #[must_use]
    pub fn new(cfg: LvcConfig) -> Lvc {
        Lvc {
            cfg,
            busy_until: vec![0; LVC_PORTS],
            reads: 0,
            writes: 0,
        }
    }

    /// Capacity in 32-bit entries.
    #[must_use]
    pub fn entries(&self) -> u32 {
        self.cfg.entries
    }

    fn book(&mut self, addr: Addr, now: u64) -> u64 {
        let p = ((addr.0 / 4) as usize) % LVC_PORTS;
        let start = now.max(self.busy_until[p]);
        self.busy_until[p] = start + 1;
        start + self.cfg.latency
    }

    /// Books a spill read; returns the completion cycle.
    pub fn read(&mut self, addr: Addr, now: u64) -> u64 {
        self.reads += 1;
        self.book(addr, now)
    }

    /// Books a spill write; returns the completion cycle.
    pub fn write(&mut self, addr: Addr, now: u64) -> u64 {
        self.writes += 1;
        self.book(addr, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_latency_and_counters() {
        let mut l = Lvc::new(LvcConfig {
            entries: 64,
            latency: 4,
        });
        assert_eq!(l.write(Addr(0), 0), 4);
        assert_eq!(l.read(Addr(0), 10), 14);
        assert_eq!((l.reads, l.writes), (1, 1));
        assert_eq!(l.entries(), 64);
    }

    #[test]
    fn same_port_serializes() {
        let mut l = Lvc::new(LvcConfig {
            entries: 64,
            latency: 4,
        });
        assert_eq!(l.read(Addr(0), 0), 4);
        assert_eq!(l.read(Addr(0), 0), 5);
    }
}
