//! GDDR5-like DRAM timing model (Table 2: 16 banks × 6 channels).
//!
//! Requests are interleaved across channels by line address; each
//! (channel, bank) pair is busy for `bank_busy_cycles` per line transfer,
//! which bounds sustained bandwidth, while `latency` sets the unloaded
//! access time. The model is a deterministic booking machine: every access
//! immediately returns its completion cycle, with queueing delay emerging
//! from bank busy times.

use dmt_common::config::DramConfig;
use dmt_common::ids::Addr;

/// The DRAM device model.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    line_bytes: u64,
    /// `busy_until[channel * banks + bank]`.
    busy_until: Vec<u64>,
    /// Completed line reads.
    pub reads: u64,
    /// Completed line writes (including cache write-backs).
    pub writes: u64,
}

impl Dram {
    /// Creates a DRAM model; `line_bytes` is the transfer granularity
    /// (the L2 line size).
    #[must_use]
    pub fn new(cfg: DramConfig, line_bytes: u64) -> Dram {
        let slots = (cfg.channels * cfg.banks_per_channel) as usize;
        Dram {
            cfg,
            line_bytes,
            busy_until: vec![0; slots],
            reads: 0,
            writes: 0,
        }
    }

    fn slot(&self, addr: Addr) -> usize {
        let line = addr.block_index(self.line_bytes);
        let channel = line % u64::from(self.cfg.channels);
        let bank = (line / u64::from(self.cfg.channels)) % u64::from(self.cfg.banks_per_channel);
        (channel * u64::from(self.cfg.banks_per_channel) + bank) as usize
    }

    fn book(&mut self, addr: Addr, now: u64) -> u64 {
        let slot = self.slot(addr);
        let start = now.max(self.busy_until[slot]);
        self.busy_until[slot] = start + self.cfg.bank_busy_cycles;
        start + self.cfg.latency
    }

    /// Books a line read beginning no earlier than `now`; returns the cycle
    /// the data is available.
    pub fn read(&mut self, addr: Addr, now: u64) -> u64 {
        self.reads += 1;
        self.book(addr, now)
    }

    /// Books a line write; returns the cycle the write completes.
    pub fn write(&mut self, addr: Addr, now: u64) -> u64 {
        self.writes += 1;
        self.book(addr, now)
    }

    /// The earliest cycle at which every bank is free (used by drain
    /// logic).
    #[must_use]
    pub fn idle_at(&self) -> u64 {
        self.busy_until.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(
            DramConfig {
                channels: 2,
                banks_per_channel: 2,
                latency: 100,
                bank_busy_cycles: 10,
            },
            128,
        )
    }

    #[test]
    fn unloaded_latency() {
        let mut d = dram();
        assert_eq!(d.read(Addr(0), 5), 105);
        assert_eq!(d.reads, 1);
    }

    #[test]
    fn same_bank_serializes() {
        let mut d = dram();
        let a = Addr(0);
        let t1 = d.read(a, 0);
        let t2 = d.read(a, 0);
        assert_eq!(t1, 100);
        assert_eq!(t2, 110, "second access to the same bank starts 10 later");
    }

    #[test]
    fn different_channels_are_parallel() {
        let mut d = dram();
        // Lines 0 and 1 map to different channels.
        let t1 = d.read(Addr(0), 0);
        let t2 = d.read(Addr(128), 0);
        assert_eq!(t1, 100);
        assert_eq!(t2, 100, "parallel channels do not serialize");
    }

    #[test]
    fn idle_at_tracks_max_busy() {
        let mut d = dram();
        d.write(Addr(0), 0);
        assert_eq!(d.idle_at(), 10);
    }
}
