//! The shared-memory scratchpad (baselines only).
//!
//! Table 2-era GPUs provide a 48 KiB, 32-bank scratchpad; accesses from one
//! warp to distinct banks proceed in parallel, while accesses mapping to
//! the same bank serialize. The dMT-CGRA programming model exists precisely
//! to eliminate this structure — dMT kernels never touch it.

use dmt_common::config::ScratchpadConfig;
use dmt_common::ids::Addr;

/// Scratchpad timing model.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    cfg: ScratchpadConfig,
    busy_until: Vec<u64>,
    /// Total accesses.
    pub accesses: u64,
    /// Accesses delayed by a busy bank.
    pub bank_conflicts: u64,
}

impl Scratchpad {
    /// Creates a scratchpad model.
    #[must_use]
    pub fn new(cfg: ScratchpadConfig) -> Scratchpad {
        Scratchpad {
            busy_until: vec![0; cfg.banks as usize],
            accesses: 0,
            bank_conflicts: 0,
            cfg,
        }
    }

    /// Banks are word-interleaved: bank = word index mod banks.
    fn bank_of(&self, addr: Addr) -> usize {
        ((addr.0 / 4) % u64::from(self.cfg.banks)) as usize
    }

    /// Books one access (load or store — symmetric timing); returns the
    /// completion cycle.
    pub fn access(&mut self, addr: Addr, now: u64) -> u64 {
        self.accesses += 1;
        let b = self.bank_of(addr);
        let start = now.max(self.busy_until[b]);
        if start > now {
            self.bank_conflicts += 1;
        }
        self.busy_until[b] = start + 1;
        start + self.cfg.latency
    }

    /// The earliest cycle at which every bank is free.
    #[must_use]
    pub fn idle_at(&self) -> u64 {
        self.busy_until.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pad() -> Scratchpad {
        Scratchpad::new(ScratchpadConfig {
            size_bytes: 1024,
            banks: 4,
            latency: 10,
        })
    }

    #[test]
    fn distinct_banks_parallel() {
        let mut p = pad();
        assert_eq!(p.access(Addr(0), 0), 10);
        assert_eq!(p.access(Addr(4), 0), 10);
        assert_eq!(p.bank_conflicts, 0);
    }

    #[test]
    fn same_bank_conflicts() {
        let mut p = pad();
        assert_eq!(p.access(Addr(0), 0), 10);
        assert_eq!(p.access(Addr(16), 0), 11, "word 4 maps to bank 0 too");
        assert_eq!(p.bank_conflicts, 1);
    }

    #[test]
    fn counts_accesses() {
        let mut p = pad();
        p.access(Addr(0), 0);
        p.access(Addr(8), 3);
        assert_eq!(p.accesses, 2);
    }
}
