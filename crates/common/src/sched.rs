//! Discrete-event scheduling primitives for the cycle engines.
//!
//! [`CalendarQueue`] replaces the classic `BinaryHeap<(cycle, seq, ev)>`
//! event queue in the simulator hot loops. Almost every event a cycle
//! engine schedules lands a small, bounded number of cycles in the future
//! (unit latencies, NoC hops, cache hit latencies), so a bucket-per-cycle
//! wheel makes both `schedule` and `pop` O(1); the rare far-future event
//! (a contended DRAM completion) overflows into a small heap that is
//! drained back into the wheel as time advances.
//!
//! The single most common arrival distance is exactly one cycle
//! (unit-latency ops on zero-hop edges, releases, sink retirements), so
//! events due at `now + 1` skip the wheel entirely and land in a flat
//! next-cycle lane — no slot hashing, no occupancy-bitmap updates, and a
//! straight `VecDeque` pop on the consuming side. The lane preserves the
//! ordering contract for free: the wheel bucket for cycle `t` can only
//! hold events scheduled at cycles `< t - 1` (a distance-1 schedule goes
//! to the lane), so bucket-before-lane *is* global FIFO order.
//!
//! # Ordering contract
//!
//! Events pop in ascending `(cycle, insertion order)` — exactly the order
//! a `BinaryHeap` keyed on `(cycle, monotonic seq)` would produce. Within
//! one cycle the queue is FIFO. This is the ordering the fabric engine's
//! determinism rests on, and the property tests in this module pit the
//! wheel against a reference heap to lock it in.
//!
//! # Caller invariants
//!
//! * `advance(now)` must be called with non-decreasing `now`.
//! * `schedule(at, ..)` requires `at > now` (the engines clamp to
//!   `now + 1`: nothing lands in the cycle that scheduled it).
//! * All events due at a cycle must be drained (via [`CalendarQueue::pop_due`])
//!   before time advances past it; the engines visit every cycle that has
//!   events, so this holds by construction.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Horizon of the bucket wheel, in cycles. Events scheduled further than
/// this ahead of `now` go to the overflow heap. The value covers the
/// common worst case of a cold L1+L2+DRAM miss chain with queueing slack,
/// so overflow is rare even in memory-bound phases.
const WHEEL_HORIZON: u64 = 1024;

/// A far-future event parked in the overflow heap; ordered by
/// `(time, seq)` so draining preserves the global ordering contract.
struct Overflow<T> {
    time: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Overflow<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<T> Eq for Overflow<T> {}
impl<T> PartialOrd for Overflow<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Overflow<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// An O(1) schedule/pop event queue for cycle-level simulation.
///
/// See the module docs for the ordering contract and caller invariants.
pub struct CalendarQueue<T> {
    /// One FIFO bucket per cycle in `[now + 1, now + WHEEL_HORIZON]`,
    /// indexed by `cycle & (WHEEL_HORIZON - 1)`.
    wheel: Box<[VecDeque<T>]>,
    /// Occupancy bitmap over wheel slots (one bit per slot) so
    /// [`CalendarQueue::next_time`] skips empty buckets a word at a time.
    occupied: Box<[u64]>,
    /// Events due exactly at `now + 1` — the dominant arrival distance —
    /// bypassing wheel indexing and occupancy bookkeeping. Swapped into
    /// `cur_lane` when time advances one cycle.
    next_lane: VecDeque<T>,
    /// The lane's events for the *current* cycle, served by
    /// [`CalendarQueue::pop_due`] after the wheel bucket.
    cur_lane: VecDeque<T>,
    /// Far-future events, drained into the wheel as `now` advances.
    overflow: BinaryHeap<Reverse<Overflow<T>>>,
    /// Monotonic insertion counter; makes overflow ordering total.
    seq: u64,
    /// The engine's current cycle, as last reported via
    /// [`CalendarQueue::advance`].
    now: u64,
    len: usize,
}

impl<T> std::fmt::Debug for CalendarQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("now", &self.now)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue positioned at cycle 0.
    #[must_use]
    pub fn new() -> CalendarQueue<T> {
        let mut wheel = Vec::with_capacity(WHEEL_HORIZON as usize);
        wheel.resize_with(WHEEL_HORIZON as usize, VecDeque::new);
        CalendarQueue {
            wheel: wheel.into_boxed_slice(),
            occupied: vec![0u64; (WHEEL_HORIZON / 64) as usize].into_boxed_slice(),
            next_lane: VecDeque::new(),
            cur_lane: VecDeque::new(),
            overflow: BinaryHeap::new(),
            seq: 0,
            now: 0,
            len: 0,
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events scheduled over the queue's lifetime (the monotonic
    /// insertion counter; a throughput denominator for perf reporting).
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    #[inline]
    fn slot_of(at: u64) -> usize {
        (at & (WHEEL_HORIZON - 1)) as usize
    }

    #[inline]
    fn mark(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1 << (slot % 64);
    }

    #[inline]
    fn unmark(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1 << (slot % 64));
    }

    /// Schedules `item` at cycle `at`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `at > now`: an event may never land in the cycle
    /// that schedules it (the engines clamp before calling).
    pub fn schedule(&mut self, at: u64, item: T) {
        debug_assert!(at > self.now, "event at {at} not after now {}", self.now);
        self.seq += 1;
        self.len += 1;
        if at == self.now + 1 {
            self.next_lane.push_back(item);
        } else if at.saturating_sub(self.now) < WHEEL_HORIZON {
            let slot = Self::slot_of(at);
            self.wheel[slot].push_back(item);
            self.mark(slot);
        } else {
            self.overflow.push(Reverse(Overflow {
                time: at,
                seq: self.seq,
                item,
            }));
        }
    }

    /// Advances the queue's notion of the current cycle, pulling any
    /// overflow events that are now within the wheel horizon into their
    /// buckets. Must be called before popping or scheduling at `now`.
    pub fn advance(&mut self, now: u64) {
        debug_assert!(now >= self.now, "time went backwards");
        if now > self.now {
            debug_assert!(self.cur_lane.is_empty(), "undrained lane events");
            if now == self.now + 1 {
                std::mem::swap(&mut self.cur_lane, &mut self.next_lane);
            } else {
                // A multi-cycle jump can only happen when no event is due
                // in between — next_time() reports now + 1 whenever the
                // lane is non-empty, so nothing can be skipped here.
                debug_assert!(self.next_lane.is_empty(), "lane events skipped");
            }
        }
        self.now = now;
        while let Some(Reverse(head)) = self.overflow.peek() {
            if head.time.saturating_sub(now) >= WHEEL_HORIZON {
                break;
            }
            let Reverse(ev) = self.overflow.pop().expect("peeked");
            let slot = Self::slot_of(ev.time);
            self.wheel[slot].push_back(ev.item);
            self.mark(slot);
        }
    }

    /// Pops the next event due at the current cycle (set via
    /// [`CalendarQueue::advance`]), in FIFO order, or `None` when the
    /// current cycle is exhausted. The wheel bucket drains before the
    /// next-cycle lane: every bucket entry for this cycle was scheduled
    /// at least two cycles ago, before any lane entry, so that *is*
    /// schedule order.
    pub fn pop_due(&mut self) -> Option<T> {
        let slot = Self::slot_of(self.now);
        if self.occupied[slot / 64] & (1 << (slot % 64)) != 0 {
            if let Some(item) = self.wheel[slot].pop_front() {
                self.len -= 1;
                if self.wheel[slot].is_empty() {
                    self.unmark(slot);
                }
                return Some(item);
            }
            self.unmark(slot);
        }
        let item = self.cur_lane.pop_front();
        if item.is_some() {
            self.len -= 1;
        }
        item
    }

    /// Drains every event due at the current cycle (set via
    /// [`CalendarQueue::advance`]) into `out`, preserving FIFO order —
    /// equivalent to popping [`CalendarQueue::pop_due`] until `None`,
    /// but with one occupancy-bitmap update for the whole bucket. Added
    /// for the fabric engine's batched delivery pass, which collects a
    /// cycle's entries before dispatching them.
    pub fn drain_due_into(&mut self, out: &mut Vec<T>) {
        let slot = Self::slot_of(self.now);
        if self.occupied[slot / 64] & (1 << (slot % 64)) != 0 {
            let bucket = &mut self.wheel[slot];
            self.len -= bucket.len();
            out.extend(bucket.drain(..));
            self.unmark(slot);
        }
        self.len -= self.cur_lane.len();
        out.extend(self.cur_lane.drain(..));
    }

    /// The cycle of the earliest pending event, or `None` when empty.
    /// Used by the engines to jump over idle gaps.
    #[must_use]
    pub fn next_time(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        // Lane events bound the answer: current-cycle remnants are due
        // now, pending next-cycle events at now + 1. Only an occupied
        // bucket at `now` itself can beat the latter, and the ring scan
        // below starts there, so taking the scan's min stays exact.
        if !self.cur_lane.is_empty() {
            return Some(self.now);
        }
        let lane_next = if self.next_lane.is_empty() {
            None
        } else {
            Some(self.now + 1)
        };
        // Scan the occupancy bitmap a word at a time, in ring order from
        // `now`'s slot; every wheel event lies within
        // [now, now + WHEEL_HORIZON), so ring distance equals time order.
        let words = self.occupied.len();
        let start = Self::slot_of(self.now);
        let (sw, sb) = (start / 64, start % 64);
        let mut found = None;
        let first = self.occupied[sw] & (!0u64 << sb);
        if first != 0 {
            found = Some(sw * 64 + first.trailing_zeros() as usize);
        } else {
            for k in 1..=words {
                let w = (sw + k) % words;
                let mut word = self.occupied[w];
                if w == sw {
                    // Wrapped all the way around: only the bits before
                    // the start slot remain unchecked.
                    word &= !(!0u64 << sb);
                }
                if word != 0 {
                    found = Some(w * 64 + word.trailing_zeros() as usize);
                    break;
                }
            }
        }
        let wheel_next = match found {
            Some(slot) => {
                let dist = (slot + WHEEL_HORIZON as usize - start) % WHEEL_HORIZON as usize;
                Some(self.now + dist as u64)
            }
            None => self.overflow.peek().map(|Reverse(o)| o.time),
        };
        match (wheel_next, lane_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: the BinaryHeap ordering the engines used before.
    struct HeapRef {
        heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
        seq: u64,
    }

    impl HeapRef {
        fn new() -> HeapRef {
            HeapRef {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }
        fn schedule(&mut self, at: u64, v: u32) {
            self.seq += 1;
            self.heap.push(Reverse((at, self.seq, v)));
        }
        fn pop_due(&mut self, now: u64) -> Option<u32> {
            match self.heap.peek() {
                Some(&Reverse((t, _, _))) if t <= now => {
                    self.heap.pop().map(|Reverse((_, _, v))| v)
                }
                _ => None,
            }
        }
        fn next_time(&self) -> Option<u64> {
            self.heap.peek().map(|&Reverse((t, _, _))| t)
        }
    }

    #[test]
    fn fifo_within_a_cycle() {
        let mut q = CalendarQueue::new();
        q.schedule(5, "a");
        q.schedule(3, "b");
        q.schedule(5, "c");
        q.advance(3);
        assert_eq!(q.pop_due(), Some("b"));
        assert_eq!(q.pop_due(), None);
        q.advance(5);
        assert_eq!(q.pop_due(), Some("a"));
        assert_eq!(q.pop_due(), Some("c"));
        assert_eq!(q.pop_due(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_survive_the_horizon() {
        let mut q = CalendarQueue::new();
        q.schedule(WHEEL_HORIZON * 3 + 17, 1u32);
        q.schedule(2, 2u32);
        assert_eq!(q.len(), 2);
        q.advance(2);
        assert_eq!(q.pop_due(), Some(2));
        assert_eq!(q.next_time(), Some(WHEEL_HORIZON * 3 + 17));
        q.advance(WHEEL_HORIZON * 3 + 17);
        assert_eq!(q.pop_due(), Some(1));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_drains_before_later_wheel_pushes_at_same_cycle() {
        let mut q = CalendarQueue::new();
        let t = WHEEL_HORIZON + 100;
        // Scheduled first, from far away: overflows.
        q.schedule(t, 1u32);
        // Advance until t is inside the horizon, then schedule a second
        // event at the same cycle: it must pop *after* the first.
        q.advance(200);
        q.schedule(t, 2u32);
        q.advance(t);
        assert_eq!(q.pop_due(), Some(1));
        assert_eq!(q.pop_due(), Some(2));
    }

    #[test]
    fn lane_pops_after_the_bucket_and_drains_with_it() {
        let mut q = CalendarQueue::new();
        // Distance 2 from cycle 0: wheel bucket for cycle 2.
        q.schedule(2, 1u32);
        q.advance(1);
        // Distance 1 from cycle 1: the next-cycle lane. Scheduled later,
        // so it must pop after the bucket entry.
        q.schedule(2, 2u32);
        assert_eq!(q.next_time(), Some(2));
        q.advance(2);
        assert_eq!(q.pop_due(), Some(1));
        assert_eq!(q.next_time(), Some(2)); // lane remnant still due now
        assert_eq!(q.pop_due(), Some(2));
        assert_eq!(q.pop_due(), None);
        assert!(q.is_empty());
        // Same shape through the bulk drain path.
        q.schedule(4, 3u32);
        q.advance(3);
        q.schedule(4, 4u32);
        q.advance(4);
        let mut out = Vec::new();
        q.drain_due_into(&mut out);
        assert_eq!(out, vec![3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn next_time_scans_to_the_earliest_bucket() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(700, 1);
        q.schedule(900, 2);
        assert_eq!(q.next_time(), Some(700));
        q.advance(700);
        let _ = q.pop_due();
        assert_eq!(q.next_time(), Some(900));
    }

    #[test]
    fn drain_due_matches_repeated_pops() {
        let mut q = CalendarQueue::new();
        let t = WHEEL_HORIZON + 7;
        q.schedule(t, 1u32); // overflows, drains back first
        q.schedule(3, 2u32);
        q.schedule(3, 3u32);
        q.advance(3);
        let mut out = Vec::new();
        q.drain_due_into(&mut out);
        assert_eq!(out, vec![2, 3]);
        assert_eq!(q.len(), 1);
        q.drain_due_into(&mut out); // empty bucket: no-op
        assert_eq!(out.len(), 2);
        q.advance(t);
        q.schedule(t + 1, 4u32);
        q.drain_due_into(&mut out);
        assert_eq!(out, vec![2, 3, 1]);
        assert_eq!(q.next_time(), Some(t + 1));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn randomized_against_reference_heap() {
        // Deterministic LCG so the test needs no external crates.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut q = CalendarQueue::new();
        let mut r = HeapRef::new();
        let mut now = 0u64;
        let mut popped = 0u64;
        for i in 0..20_000u32 {
            // Mixed near/far schedule distances, including past-horizon.
            let burst = rng() % 4;
            for j in 0..burst {
                let delta = match rng() % 10 {
                    0 => 1 + rng() % 3,
                    1..=7 => 1 + rng() % 300,
                    8 => 1 + rng() % (WHEEL_HORIZON - 1),
                    _ => WHEEL_HORIZON + rng() % 5000,
                };
                let v = i * 8 + j as u32;
                q.schedule(now + delta, v);
                r.schedule(now + delta, v);
            }
            // Advance: usually +1, sometimes jump to the next event.
            now = match rng() % 5 {
                0 => match r.next_time() {
                    Some(t) => t.max(now),
                    None => now + 1,
                },
                _ => now + 1,
            };
            q.advance(now);
            assert_eq!(q.next_time(), r.next_time(), "next_time at {now}");
            loop {
                let a = q.pop_due();
                let b = r.pop_due(now);
                assert_eq!(a, b, "pop at {now}");
                if a.is_none() {
                    break;
                }
                popped += 1;
            }
            assert_eq!(q.len(), r.heap.len(), "len at {now}");
        }
        assert!(popped > 10_000, "exercised {popped} pops");
    }
}
