//! `dmt-faults`: a seeded, deterministic failpoint registry.
//!
//! Long-running spatial-array simulations fail in the field — cache I/O
//! errors, panicking executors, wedged connections — and a service that
//! serves heavy traffic must survive all of them. This module lets tests
//! and CI *inject* those failures deterministically, so the robustness
//! machinery (typed outcomes, retry, degradation) is exercised by the
//! same replayable discipline as everything else in this repo: the same
//! fault spec and seed produce bit-for-bit the same fault schedule.
//!
//! # Design
//!
//! A **site** is a named seam where a fault can fire — [`site::ALL`]
//! enumerates them. Production code asks [`hit`] at each seam; the call
//! compiles to one inlined relaxed-atomic load plus a branch when no
//! plan is installed (the `dmt-obs` zero-overhead idiom), so disabled
//! failpoints cost nothing measurable on the hot path.
//!
//! A **plan** ([`FaultPlan`]) maps sites to triggers:
//!
//! * `nth=N` — fire exactly on the N-th hit of the site (1-based);
//! * `prob=P` — fire each hit independently with probability `P`,
//!   decided by hashing `(seed, site, hit index)` through splitmix64.
//!   The firing set depends only on the seed and each site's own hit
//!   ordinal — never on thread interleaving across sites.
//!
//! # Spec grammar
//!
//! Plans parse from a spec string (`--faults SPEC` or `DMT_FAULTS=SPEC`):
//!
//! ```text
//! spec    := clause (';' clause)*
//! clause  := 'seed=' u64
//!          | site ':' 'nth=' u64        # N >= 1
//!          | site ':' 'prob=' f64       # 0.0 ..= 1.0
//! site    := one of dmt_common::faults::site::ALL
//! ```
//!
//! Example: `cache.write:prob=0.5;pool.exec:nth=3;seed=7`.
//!
//! # Fault log
//!
//! Every firing is appended to a log of `(site, hit ordinal)` pairs;
//! [`render_log`] formats it one line per firing. With a fixed spec,
//! seed and `--threads 1`, the log is byte-identical across runs — the
//! chaos suite asserts exactly that.
//!
//! # Examples
//!
//! ```
//! use dmt_common::faults;
//!
//! let plan = faults::FaultPlan::parse("cache.write:nth=2;seed=9").unwrap();
//! let _guard = faults::install_guarded(plan); // uninstalls on drop
//! assert!(!faults::hit(faults::site::CACHE_WRITE)); // hit 1: no fire
//! assert!(faults::hit(faults::site::CACHE_WRITE)); // hit 2: fires
//! assert_eq!(faults::render_log(), "[dmt-faults] fired cache.write (hit 2)\n");
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// The named failpoint sites threaded through the stack.
pub mod site {
    /// Cache entry read (`Cache::lookup`): a firing makes the lookup a
    /// counted miss, as if the entry file were unreadable.
    pub const CACHE_READ: &str = "cache.read";
    /// Cache temp-file write (`Cache::store`): a firing fails the store
    /// with an ENOSPC-style I/O error.
    pub const CACHE_WRITE: &str = "cache.write";
    /// Cache temp-file rename (`Cache::store`): a firing fails the
    /// final atomic publish step.
    pub const CACHE_RENAME: &str = "cache.rename";
    /// Worker-pool job execution (`ExecPlan`): a firing fails the job
    /// with a transient `JobOutcome::Failed` before the executor runs.
    pub const POOL_EXEC: &str = "pool.exec";
    /// Accepted daemon connection (`dmt-serve`): a firing drops the
    /// connection before any request is read.
    pub const SERVE_CONN: &str = "serve.conn";
    /// Daemon request dispatch (`dmt-serve`): a firing answers the
    /// request with an injected error instead of executing the verb.
    pub const SERVE_REQUEST: &str = "serve.request";

    /// Every site, for spec validation and docs.
    pub const ALL: &[&str] = &[
        CACHE_READ,
        CACHE_WRITE,
        CACHE_RENAME,
        POOL_EXEC,
        SERVE_CONN,
        SERVE_REQUEST,
    ];
}

/// When a clause fires at its site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire exactly on the N-th hit (1-based).
    Nth(u64),
    /// Fire each hit independently with this probability, decided by
    /// `splitmix64(seed ^ hash(site) ^ hit)`.
    Prob(f64),
}

/// A parsed, installable fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every probabilistic trigger decision.
    pub seed: u64,
    clauses: Vec<(String, Trigger)>,
}

impl FaultPlan {
    /// An empty plan (no clauses, seed 0) — installing it still flips
    /// the registry on, which is occasionally useful to measure the
    /// slow-path cost; prefer [`uninstall`] for "off".
    pub fn empty() -> FaultPlan {
        FaultPlan {
            seed: 0,
            clauses: Vec::new(),
        }
    }

    /// Parses the spec grammar documented at module level.
    pub fn parse(spec: &str) -> std::result::Result<FaultPlan, String> {
        let mut plan = FaultPlan::empty();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed
                    .parse::<u64>()
                    .map_err(|_| format!("bad fault seed {seed:?} (want u64)"))?;
                continue;
            }
            let Some((name, trigger)) = clause.split_once(':') else {
                return Err(format!(
                    "bad fault clause {clause:?} (want 'seed=N' or '<site>:nth=N' or '<site>:prob=F')"
                ));
            };
            if !site::ALL.contains(&name) {
                return Err(format!(
                    "unknown fault site {name:?} (known: {})",
                    site::ALL.join(", ")
                ));
            }
            if plan.clauses.iter().any(|(n, _)| n == name) {
                return Err(format!("duplicate fault clause for site {name:?}"));
            }
            let trigger = if let Some(n) = trigger.strip_prefix("nth=") {
                let n = n
                    .parse::<u64>()
                    .map_err(|_| format!("bad nth value {n:?} for {name} (want u64 >= 1)"))?;
                if n == 0 {
                    return Err(format!("bad nth value 0 for {name} (hits are 1-based)"));
                }
                Trigger::Nth(n)
            } else if let Some(p) = trigger.strip_prefix("prob=") {
                let p = p
                    .parse::<f64>()
                    .map_err(|_| format!("bad prob value {p:?} for {name} (want 0.0..=1.0)"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("prob {p} for {name} out of range (want 0.0..=1.0)"));
                }
                Trigger::Prob(p)
            } else {
                return Err(format!(
                    "bad trigger {trigger:?} for {name} (want nth=N or prob=F)"
                ));
            };
            plan.clauses.push((name.to_owned(), trigger));
        }
        Ok(plan)
    }

    /// Adds a clause programmatically (tests); site must be known.
    pub fn with(mut self, name: &str, trigger: Trigger) -> FaultPlan {
        assert!(site::ALL.contains(&name), "unknown fault site {name:?}");
        self.clauses.retain(|(n, _)| n != name);
        self.clauses.push((name.to_owned(), trigger));
        self
    }

    /// Seeds the plan programmatically (tests).
    pub fn seeded(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }
}

struct SiteState {
    name: String,
    trigger: Trigger,
    hits: u64,
}

struct Registry {
    seed: u64,
    sites: Vec<SiteState>,
    log: Vec<(String, u64)>,
}

/// One inlined boolean is the entire disabled-path cost (dmt-obs idiom).
static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Option<Registry>> {
    static REG: OnceLock<Mutex<Option<Registry>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(None))
}

fn lock_registry() -> MutexGuard<'static, Option<Registry>> {
    // A panic while holding the lock (test machinery) must not wedge
    // every later fault check; the registry state stays consistent.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// The splitmix64 finalizer — the workspace's standard cheap mixer.
/// Public because serve's deterministic retry jitter reuses it.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn site_hash(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Installs a fault plan, replacing any previous one, and enables the
/// failpoints. Hit counters and the fault log start fresh.
pub fn install(plan: FaultPlan) {
    let reg = Registry {
        seed: plan.seed,
        sites: plan
            .clauses
            .into_iter()
            .map(|(name, trigger)| SiteState {
                name,
                trigger,
                hits: 0,
            })
            .collect(),
        log: Vec::new(),
    };
    *lock_registry() = Some(reg);
    ENABLED.store(true, Ordering::Release);
}

/// Disables the failpoints and drops the installed plan (and its log).
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *lock_registry() = None;
}

/// True when a plan is installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Asks whether the failpoint at `name` fires on this hit. The disabled
/// path is one relaxed atomic load and a branch — never a lock.
#[inline]
pub fn hit(name: &'static str) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    hit_slow(name)
}

#[cold]
fn hit_slow(name: &'static str) -> bool {
    let mut guard = lock_registry();
    let Some(reg) = guard.as_mut() else {
        return false;
    };
    let seed = reg.seed;
    let Some(state) = reg.sites.iter_mut().find(|s| s.name == name) else {
        return false;
    };
    state.hits += 1;
    let ordinal = state.hits;
    let fires = match state.trigger {
        Trigger::Nth(n) => ordinal == n,
        Trigger::Prob(p) => {
            let x = splitmix64(seed ^ site_hash(name) ^ ordinal);
            // 53 uniform bits -> [0, 1); compare against p.
            ((x >> 11) as f64) / ((1u64 << 53) as f64) < p
        }
    };
    if fires {
        reg.log.push((name.to_owned(), ordinal));
    }
    fires
}

/// The firings so far, as `(site, hit ordinal)` in firing order.
pub fn log() -> Vec<(String, u64)> {
    lock_registry()
        .as_ref()
        .map_or_else(Vec::new, |r| r.log.clone())
}

/// The fault log rendered one line per firing:
/// `[dmt-faults] fired <site> (hit N)`. Empty string when nothing fired
/// or no plan is installed.
pub fn render_log() -> String {
    log()
        .iter()
        .map(|(site, n)| format!("[dmt-faults] fired {site} (hit {n})\n"))
        .collect()
}

/// Installs the plan from `DMT_FAULTS` if set and non-empty. Returns
/// whether a plan was installed; a malformed spec is an `Err` so CLIs
/// can refuse to run with a half-applied schedule.
pub fn init_from_env() -> std::result::Result<bool, String> {
    match std::env::var("DMT_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            install(FaultPlan::parse(&spec)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Serializes tests that install fault plans: the registry is process
/// global, so concurrent `#[test]`s would otherwise race each other's
/// schedules. Holds an exclusive lock for the guard's lifetime and
/// uninstalls on drop.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        uninstall();
    }
}

/// Installs `plan` under the global test lock; see [`FaultGuard`].
pub fn install_guarded(plan: FaultPlan) -> FaultGuard {
    static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = TEST_LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    install(plan);
    FaultGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_failpoints_never_fire() {
        let _guard = install_guarded(FaultPlan::empty());
        uninstall();
        for s in site::ALL {
            assert!(!hit(s));
        }
        assert!(!enabled());
        assert_eq!(render_log(), "");
    }

    #[test]
    fn nth_trigger_fires_exactly_once_on_the_nth_hit() {
        let _guard = install_guarded(FaultPlan::empty().with(site::POOL_EXEC, Trigger::Nth(3)));
        let fired: Vec<bool> = (0..6).map(|_| hit(site::POOL_EXEC)).collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        assert_eq!(log(), vec![("pool.exec".to_owned(), 3)]);
    }

    #[test]
    fn prob_trigger_is_a_pure_function_of_seed_and_ordinal() {
        let schedule = |seed: u64| -> Vec<bool> {
            let _guard = install_guarded(
                FaultPlan::empty()
                    .seeded(seed)
                    .with(site::CACHE_WRITE, Trigger::Prob(0.5)),
            );
            (0..64).map(|_| hit(site::CACHE_WRITE)).collect()
        };
        let a = schedule(7);
        let b = schedule(7);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert!(a.iter().any(|&f| f), "p=0.5 over 64 hits fires");
        assert!(a.iter().any(|&f| !f), "p=0.5 over 64 hits also skips");
        let c = schedule(8);
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn prob_extremes_always_and_never_fire() {
        let _guard = install_guarded(
            FaultPlan::empty()
                .with(site::CACHE_READ, Trigger::Prob(1.0))
                .with(site::CACHE_RENAME, Trigger::Prob(0.0)),
        );
        for _ in 0..16 {
            assert!(hit(site::CACHE_READ));
            assert!(!hit(site::CACHE_RENAME));
        }
    }

    #[test]
    fn unlisted_sites_do_not_fire_under_an_installed_plan() {
        let _guard = install_guarded(FaultPlan::empty().with(site::SERVE_CONN, Trigger::Nth(1)));
        assert!(!hit(site::CACHE_READ));
        assert!(hit(site::SERVE_CONN));
    }

    #[test]
    fn spec_grammar_round_trips() {
        let plan = FaultPlan::parse("cache.write:prob=0.25; pool.exec:nth=2 ;seed=42").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(
            plan,
            FaultPlan::empty()
                .seeded(42)
                .with(site::CACHE_WRITE, Trigger::Prob(0.25))
                .with(site::POOL_EXEC, Trigger::Nth(2))
        );
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::empty());
    }

    #[test]
    fn spec_errors_name_the_problem() {
        for (spec, needle) in [
            ("bogus.site:nth=1", "unknown fault site"),
            ("cache.read", "bad fault clause"),
            ("cache.read:nth=0", "1-based"),
            ("cache.read:nth=x", "bad nth value"),
            ("cache.read:prob=1.5", "out of range"),
            ("cache.read:prob=x", "bad prob value"),
            ("seed=beef", "bad fault seed"),
            ("cache.read:later=1", "bad trigger"),
            (
                "cache.read:nth=1;cache.read:nth=2",
                "duplicate fault clause",
            ),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec:?}: {err:?} missing {needle:?}");
        }
    }

    #[test]
    fn render_log_is_one_line_per_firing_in_order() {
        let _guard = install_guarded(
            FaultPlan::empty()
                .with(site::CACHE_WRITE, Trigger::Nth(1))
                .with(site::CACHE_RENAME, Trigger::Nth(2)),
        );
        assert!(hit(site::CACHE_WRITE));
        assert!(!hit(site::CACHE_RENAME));
        assert!(hit(site::CACHE_RENAME));
        assert_eq!(
            render_log(),
            "[dmt-faults] fired cache.write (hit 1)\n[dmt-faults] fired cache.rename (hit 2)\n"
        );
    }

    #[test]
    fn guard_uninstalls_on_drop() {
        {
            let _guard = install_guarded(FaultPlan::empty().with(site::POOL_EXEC, Trigger::Nth(1)));
            assert!(enabled());
        }
        assert!(!enabled());
        assert!(!hit(site::POOL_EXEC));
    }
}
