//! The 32-bit machine word model.
//!
//! The simulated architectures are 32-bit centric (Fermi-era GPUs and the
//! SGMF/dMT-CGRA grids operate on 32-bit tokens). A [`Word`] stores raw bits;
//! operations reinterpret them as `i32`, `u32` or `f32` as required by the
//! executing opcode, exactly as hardware functional units do.

use std::fmt;

/// A 32-bit value travelling through the simulated machine as raw bits.
///
/// # Examples
///
/// ```
/// use dmt_common::value::Word;
///
/// let w = Word::from_f32(1.5);
/// assert_eq!(w.as_f32(), 1.5);
/// let v = Word::from_i32(-3);
/// assert_eq!(v.as_i32(), -3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Word(pub u32);

impl Word {
    /// The all-zero word (also integer `0`, float `+0.0` and boolean `false`).
    pub const ZERO: Word = Word(0);

    /// The canonical boolean `true` (integer `1`).
    pub const TRUE: Word = Word(1);

    /// Builds a word from a signed 32-bit integer.
    #[must_use]
    pub fn from_i32(v: i32) -> Word {
        Word(v as u32)
    }

    /// Builds a word from an unsigned 32-bit integer.
    #[must_use]
    pub fn from_u32(v: u32) -> Word {
        Word(v)
    }

    /// Builds a word from an IEEE-754 single-precision float.
    #[must_use]
    pub fn from_f32(v: f32) -> Word {
        Word(v.to_bits())
    }

    /// Builds the canonical boolean encoding (`1` for true, `0` for false).
    #[must_use]
    pub fn from_bool(v: bool) -> Word {
        Word(u32::from(v))
    }

    /// Reinterprets the bits as a signed integer.
    #[must_use]
    pub fn as_i32(self) -> i32 {
        self.0 as i32
    }

    /// Reinterprets the bits as an unsigned integer.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Reinterprets the bits as an IEEE-754 single-precision float.
    #[must_use]
    pub fn as_f32(self) -> f32 {
        f32::from_bits(self.0)
    }

    /// Boolean interpretation: any non-zero bit pattern is `true`
    /// (matching predicate semantics of the modelled ISA).
    #[must_use]
    pub fn as_bool(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

impl From<i32> for Word {
    fn from(v: i32) -> Word {
        Word::from_i32(v)
    }
}

impl From<u32> for Word {
    fn from(v: u32) -> Word {
        Word::from_u32(v)
    }
}

impl From<f32> for Word {
    fn from(v: f32) -> Word {
        Word::from_f32(v)
    }
}

impl From<bool> for Word {
    fn from(v: bool) -> Word {
        Word::from_bool(v)
    }
}

/// Compares two `f32` buffers with a relative tolerance, the acceptance
/// criterion used when validating floating-point kernels whose summation
/// order differs between architectures.
///
/// Returns the index of the first mismatching element, or `None` when all
/// elements match within `rel_tol` (with an absolute floor of `rel_tol` for
/// values near zero).
///
/// # Examples
///
/// ```
/// use dmt_common::value::first_f32_mismatch;
/// assert_eq!(first_f32_mismatch(&[1.0, 2.0], &[1.0, 2.0 + 1e-7], 1e-5), None);
/// assert_eq!(first_f32_mismatch(&[1.0, 2.0], &[1.0, 3.0], 1e-5), Some(1));
/// ```
#[must_use]
pub fn first_f32_mismatch(got: &[f32], want: &[f32], rel_tol: f32) -> Option<usize> {
    if got.len() != want.len() {
        return Some(got.len().min(want.len()));
    }
    got.iter().zip(want.iter()).position(|(&g, &w)| {
        let scale = g.abs().max(w.abs()).max(1.0);
        (g - w).abs() > rel_tol * scale || g.is_nan() != w.is_nan()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_i32() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, 42] {
            assert_eq!(Word::from_i32(v).as_i32(), v);
        }
    }

    #[test]
    fn roundtrip_f32() {
        for v in [0.0f32, -0.0, 1.5, -3.25, f32::MAX, f32::MIN_POSITIVE] {
            assert_eq!(Word::from_f32(v).as_f32(), v);
        }
    }

    #[test]
    fn bool_encoding() {
        assert!(Word::from_bool(true).as_bool());
        assert!(!Word::from_bool(false).as_bool());
        assert!(Word(0xdead_beef).as_bool());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Word::from(5i32).as_i32(), 5);
        assert_eq!(Word::from(5u32).as_u32(), 5);
        assert_eq!(Word::from(2.0f32).as_f32(), 2.0);
        assert_eq!(Word::from(true), Word::TRUE);
    }

    #[test]
    fn mismatch_detects_length_difference() {
        assert_eq!(first_f32_mismatch(&[1.0], &[1.0, 2.0], 1e-6), Some(1));
    }

    #[test]
    fn mismatch_tolerates_relative_error() {
        let a = [1000.0f32];
        let b = [1000.0f32 * (1.0 + 5e-7)];
        assert_eq!(first_f32_mismatch(&a, &b, 1e-5), None);
    }

    #[test]
    fn mismatch_detects_nan_divergence() {
        assert_eq!(first_f32_mismatch(&[f32::NAN], &[1.0], 1e-5), Some(0));
    }
}
