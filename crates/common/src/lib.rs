//! Shared foundations for the dMT-CGRA reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace: identifier newtypes ([`ids`]), the 32-bit machine word model
//! ([`value`]), CUDA-style thread geometry ([`geom`]), the Table 2 system
//! configuration ([`config`]), run-statistics counters ([`stats`]), the
//! hand-rolled JSON document model ([`json`]), the shared error type
//! ([`error`]), the deterministic failpoint registry ([`faults`]) and
//! cooperative run limits — deadlines and cancellation ([`limits`]).
//!
//! The paper reproduced here is Voitsechov & Etsion, *"Inter-Thread
//! Communication in Multithreaded, Reconfigurable Coarse-Grain Arrays"*
//! (MICRO 2018). See `DESIGN.md` at the workspace root for the full system
//! inventory.
//!
//! # Examples
//!
//! ```
//! use dmt_common::config::SystemConfig;
//! use dmt_common::geom::Dim3;
//!
//! let cfg = SystemConfig::default(); // Table 2 defaults
//! assert_eq!(cfg.grid.total_units(), 140);
//! let block = Dim3::new(16, 16, 1);
//! assert_eq!(block.len(), 256);
//! ```

pub mod config;
pub mod error;
pub mod faults;
pub mod geom;
pub mod ids;
pub mod json;
pub mod limits;
pub mod memimg;
pub mod sched;
pub mod stats;
pub mod value;

pub use config::SystemConfig;
pub use error::{Error, Result};
pub use geom::{Delta, Dim3};
pub use ids::{Addr, Cycle, NodeId, PortIx, ThreadId, UnitId};
pub use json::Json;
pub use limits::RunLimits;
pub use memimg::MemImage;
pub use stats::{PhaseStats, RunStats};
pub use value::Word;
