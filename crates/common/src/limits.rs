//! Cooperative run limits: per-job cycle deadlines and cancellation.
//!
//! Both cycle engines check a [`RunLimits`] at the top of their loops.
//! A run that reaches its deadline stops with [`Error::TimedOut`]; a
//! run whose cancellation token flips stops with [`Error::Cancelled`].
//! The unlimited check is one integer compare plus an `Option` test per
//! simulated cycle — far below measurement noise next to the work a
//! cycle already does — so `run_observed` callers pay nothing.
//!
//! Deadlines are *simulated-cycle* budgets, not wall-clock: the same
//! job with the same deadline times out at the same cycle on every
//! host and thread count, preserving the byte-identical-replay
//! discipline.
//!
//! # Examples
//!
//! ```
//! use dmt_common::limits::RunLimits;
//!
//! let limits = RunLimits::deadline(100);
//! assert!(limits.check(99).is_ok());
//! assert!(limits.check(100).is_err()); // first cycle >= deadline
//! assert!(RunLimits::unlimited().check(u64::MAX - 1).is_ok());
//! ```

use crate::error::{Error, Result};
use std::sync::atomic::{AtomicBool, Ordering};

/// Limits a single run: a cycle deadline and an optional cancel token.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits<'a> {
    /// First simulated cycle at which the run times out; `u64::MAX`
    /// means unlimited.
    pub deadline_cycles: u64,
    /// Cooperative cancellation: when the token reads `true`, the run
    /// stops at its next cycle boundary with [`Error::Cancelled`].
    pub cancel: Option<&'a AtomicBool>,
}

impl RunLimits<'static> {
    /// No deadline, no cancellation — what `run_observed` forwards.
    pub const fn unlimited() -> RunLimits<'static> {
        RunLimits {
            deadline_cycles: u64::MAX,
            cancel: None,
        }
    }

    /// A cycle-budget deadline with no cancellation token.
    pub const fn deadline(cycles: u64) -> RunLimits<'static> {
        RunLimits {
            deadline_cycles: cycles,
            cancel: None,
        }
    }
}

impl<'a> RunLimits<'a> {
    /// Attaches a cancellation token.
    pub fn with_cancel(self, token: &'a AtomicBool) -> RunLimits<'a> {
        RunLimits {
            cancel: Some(token),
            ..self
        }
    }

    /// True when no limit can ever trip.
    pub fn is_unlimited(&self) -> bool {
        self.deadline_cycles == u64::MAX && self.cancel.is_none()
    }

    /// Checked at the top of every engine cycle.
    #[inline]
    pub fn check(&self, now: u64) -> Result<()> {
        if now >= self.deadline_cycles {
            return Err(Error::TimedOut {
                cycle: now,
                deadline_cycles: self.deadline_cycles,
            });
        }
        if let Some(token) = self.cancel {
            if token.load(Ordering::Relaxed) {
                return Err(Error::Cancelled { cycle: now });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let l = RunLimits::unlimited();
        assert!(l.is_unlimited());
        assert!(l.check(0).is_ok());
        assert!(l.check(u64::MAX - 1).is_ok());
    }

    #[test]
    fn deadline_trips_at_the_first_cycle_past_the_budget() {
        let l = RunLimits::deadline(10);
        assert!(!l.is_unlimited());
        assert!(l.check(9).is_ok());
        match l.check(10) {
            Err(Error::TimedOut {
                cycle,
                deadline_cycles,
            }) => {
                assert_eq!(cycle, 10);
                assert_eq!(deadline_cycles, 10);
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn cancel_token_trips_cooperatively() {
        let token = AtomicBool::new(false);
        let l = RunLimits::unlimited().with_cancel(&token);
        assert!(!l.is_unlimited());
        assert!(l.check(5).is_ok());
        token.store(true, Ordering::Relaxed);
        assert!(matches!(l.check(6), Err(Error::Cancelled { cycle: 6 })));
    }

    #[test]
    fn deadline_wins_over_cancellation_at_the_same_cycle() {
        let token = AtomicBool::new(true);
        let l = RunLimits::deadline(4).with_cancel(&token);
        assert!(matches!(l.check(4), Err(Error::TimedOut { .. })));
        assert!(matches!(l.check(3), Err(Error::Cancelled { .. })));
    }
}
