//! Run statistics: the event counters every backend produces, resolved
//! per barrier-delimited phase.
//!
//! A [`RunStats`] is filled by the fabric, GPU and memory simulators during a
//! kernel run, then consumed by the energy model (which multiplies event
//! counts by per-event energies, mirroring GPUWattch's methodology) and by
//! the figure harnesses.
//!
//! # Phase resolution
//!
//! Multi-phase kernels (barrier-delimited phases, §4) execute as distinct
//! fabric configurations with very different operational mixes, so the
//! counters are kept **per phase**: one [`PhaseStats`] record per phase in
//! [`RunStats::per_phase`], with the whole-run totals stored flat on
//! [`RunStats`] itself. The engines build the totals as the field-wise sum
//! of the phases ([`RunStats::from_phases`]), so
//! `sum(per_phase) == totals` holds exactly, for every counter — and a
//! single-phase kernel reports exactly one phase equal to its totals.
//!
//! # The counter list
//!
//! The set of counters is defined once, in [`for_each_run_counter!`], and
//! every consumer — both structs here, the JSON artifact writer and the
//! result-cache decoder in `dmt-runner` — is generated from it. Adding a
//! counter means adding one line to that macro; it is then impossible for
//! the structs, the arithmetic, the artifact and the cache to disagree
//! about the counter set.

use std::fmt;
use std::ops::AddAssign;

/// Invokes a callback macro with the full `(name, doc)` counter list —
/// the single definition of every event counter a run produces.
///
/// The callback receives a comma-separated list of `(ident, literal)`
/// pairs in artifact order. See this module's source for the callback
/// shape; `dmt-runner` uses it to generate the artifact serializer and
/// the cache decoder from the same list.
#[macro_export]
macro_rules! for_each_run_counter {
    ($cb:ident) => {
        $cb! {
            (cycles, "Total execution time in core cycles."),
            (threads_retired, "Threads that completed execution."),
            (phases, "Barrier-delimited phases executed (1 when the kernel has no barrier)."),
            (alu_ops, "Integer ALU operations fired."),
            (fpu_ops, "Floating-point operations fired."),
            (special_ops, "Special-function operations fired (div/sqrt/exp)."),
            (control_ops, "Control operations fired (select/compare/bitwise)."),
            (sju_ops, "Split/join pass-throughs fired."),
            (elevator_ops, "Elevator re-tagging operations fired."),
            (
                elevator_const_tokens,
                "Tokens an elevator filled with the fallback constant (sender outside the transmission window or the thread block)."
            ),
            (
                eldst_forwards,
                "Values an eLDST forwarded from the token buffer instead of loading from memory (each is one memory access saved)."
            ),
            (tokens_routed, "Tokens placed on the NoC."),
            (noc_hops, "Total NoC router hops traversed by all tokens."),
            (token_buffer_writes, "Tokens written to matching-store/token buffers."),
            (
                backpressure_cycles,
                "Cycles in which at least one unit could not fire due to downstream backpressure."
            ),
            (global_loads, "Global-memory load requests issued (after eLDST forwarding)."),
            (global_stores, "Global-memory store requests issued."),
            (l1_hits, "L1 hits."),
            (l1_misses, "L1 misses."),
            (l2_hits, "L2 hits."),
            (l2_misses, "L2 misses."),
            (dram_reads, "DRAM line transactions (reads)."),
            (dram_writes, "DRAM line transactions (writes, including write-back evictions)."),
            (shared_loads, "Scratchpad (shared-memory) loads."),
            (shared_stores, "Scratchpad (shared-memory) stores."),
            (
                shared_bank_conflicts,
                "Extra serialization events caused by scratchpad bank conflicts."
            ),
            (lvc_reads, "Live-Value-Cache reads (elevator spill path)."),
            (lvc_writes, "Live-Value-Cache writes (elevator spill path)."),
            (gpu_instructions, "Warp-instructions issued (each fetch/decode event)."),
            (
                gpu_thread_instructions,
                "Thread-instructions executed (warp-instructions × active lanes)."
            ),
            (register_reads, "Register-file operand reads."),
            (register_writes, "Register-file writes."),
            (barrier_wait_cycles, "Warp-cycles spent waiting at barriers."),
            (barriers, "Barrier instructions executed (per warp)."),
            (gpu_stall_cycles, "Cycles in which no warp could issue (stall cycles)."),
        }
    };
}

macro_rules! define_stats_types {
    ($(($field:ident, $doc:literal)),+ $(,)?) => {
        /// Event counters accumulated over one barrier-delimited phase (or
        /// any contiguous slice of a run).
        ///
        /// All counters are monotonically increasing event counts; `cycles`
        /// is the phase's share of the run's core cycles (including the
        /// reconfiguration overhead paid to enter it). Counters irrelevant
        /// to a backend stay zero (e.g. `gpu_instructions` on a CGRA run).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct PhaseStats {
            $(#[doc = $doc] pub $field: u64,)+
        }

        impl PhaseStats {
            /// Field-wise difference of two cumulative snapshots: the
            /// counters accrued between `prev` and `self`.
            ///
            /// # Panics
            ///
            /// Panics (in debug builds, via arithmetic overflow) when any
            /// counter of `prev` exceeds `self` — snapshots must be taken
            /// from the same monotonically growing run.
            #[must_use]
            pub fn minus(&self, prev: &PhaseStats) -> PhaseStats {
                PhaseStats {
                    $($field: self.$field - prev.$field,)+
                }
            }

            /// Field-wise accumulation (used to derive run totals).
            pub fn accumulate(&mut self, rhs: &PhaseStats) {
                $(self.$field += rhs.$field;)+
            }
        }

        /// Event counters accumulated over one kernel execution, with the
        /// per-phase breakdown the totals are derived from.
        ///
        /// The flat fields are the whole-run totals; [`Self::per_phase`]
        /// holds one [`PhaseStats`] per barrier-delimited phase, and the
        /// engines construct the totals as their field-wise sum
        /// ([`RunStats::from_phases`]), so the two views agree exactly.
        #[derive(Debug, Clone, PartialEq, Eq, Default)]
        pub struct RunStats {
            $(#[doc = $doc] pub $field: u64,)+
            /// Per-phase counter records, in execution order. Empty only
            /// for hand-assembled records (tests, synthetic stats); both
            /// execution engines always populate one entry per phase.
            pub per_phase: Vec<PhaseStats>,
        }

        impl RunStats {
            /// The whole-run totals as a plain counter record (the same
            /// shape as one phase — useful for uniform arithmetic and for
            /// evaluating the energy model on totals and phases alike).
            #[must_use]
            pub fn totals(&self) -> PhaseStats {
                PhaseStats { $($field: self.$field,)+ }
            }

            /// Builds a record whose totals are the field-wise sum of
            /// `phases` — the engines' way of guaranteeing
            /// `sum(per_phase) == totals` by construction.
            #[must_use]
            pub fn from_phases(phases: Vec<PhaseStats>) -> RunStats {
                let mut totals = PhaseStats::default();
                for p in &phases {
                    totals.accumulate(p);
                }
                RunStats {
                    $($field: totals.$field,)+
                    per_phase: phases,
                }
            }

            /// True when the per-phase records sum exactly to the totals
            /// for every counter (vacuously true when no phase breakdown
            /// is attached). Consumers use this to validate externally
            /// sourced records (e.g. decoded cache entries).
            #[must_use]
            pub fn phase_sums_match(&self) -> bool {
                if self.per_phase.is_empty() {
                    return true;
                }
                let mut sum = PhaseStats::default();
                for p in &self.per_phase {
                    sum.accumulate(p);
                }
                sum == self.totals()
            }
        }

        impl AddAssign for RunStats {
            /// Accumulates another record into `self` (sequential
            /// composition of runs): totals add field-wise and the phase
            /// sequences concatenate, preserving `sum(per_phase) ==
            /// totals` when both sides satisfied it.
            fn add_assign(&mut self, rhs: RunStats) {
                $(self.$field += rhs.$field;)+
                self.per_phase.extend(rhs.per_phase);
            }
        }
    };
}

crate::for_each_run_counter!(define_stats_types);

impl PhaseStats {
    /// Total functional-unit operations fired in the fabric during this
    /// phase.
    #[must_use]
    pub fn fabric_ops(&self) -> u64 {
        self.alu_ops
            + self.fpu_ops
            + self.special_ops
            + self.control_ops
            + self.sju_ops
            + self.elevator_ops
    }

    /// Average fabric operations fired per cycle of this phase.
    #[must_use]
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fabric_ops() as f64 / self.cycles as f64
        }
    }

    /// Total memory-hierarchy accesses (global loads + stores).
    #[must_use]
    pub fn global_accesses(&self) -> u64 {
        self.global_loads + self.global_stores
    }

    /// Total scratchpad accesses.
    #[must_use]
    pub fn shared_accesses(&self) -> u64 {
        self.shared_loads + self.shared_stores
    }
}

impl RunStats {
    /// Creates an all-zero statistics record.
    #[must_use]
    pub fn new() -> RunStats {
        RunStats::default()
    }

    /// Total functional-unit operations fired in the fabric.
    #[must_use]
    pub fn fabric_ops(&self) -> u64 {
        self.alu_ops
            + self.fpu_ops
            + self.special_ops
            + self.control_ops
            + self.sju_ops
            + self.elevator_ops
    }

    /// Total memory-hierarchy accesses (global loads + stores).
    #[must_use]
    pub fn global_accesses(&self) -> u64 {
        self.global_loads + self.global_stores
    }

    /// Total scratchpad accesses.
    #[must_use]
    pub fn shared_accesses(&self) -> u64 {
        self.shared_loads + self.shared_stores
    }

    /// L1 hit rate in [0, 1]; `None` when there were no L1 accesses.
    #[must_use]
    pub fn l1_hit_rate(&self) -> Option<f64> {
        let total = self.l1_hits + self.l1_misses;
        (total > 0).then(|| self.l1_hits as f64 / total as f64)
    }

    /// Average fabric operations fired per cycle (the ILP utilization the
    /// paper's 140-unit argument is about).
    #[must_use]
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fabric_ops() as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:            {}", self.cycles)?;
        writeln!(f, "threads retired:   {}", self.threads_retired)?;
        writeln!(
            f,
            "fabric ops:        {} ({:.2} ops/cycle)",
            self.fabric_ops(),
            self.ops_per_cycle()
        )?;
        writeln!(
            f,
            "global memory:     {} loads ({} forwarded), {} stores",
            self.global_loads, self.eldst_forwards, self.global_stores
        )?;
        writeln!(
            f,
            "L1: {} hits / {} misses; L2: {} hits / {} misses; DRAM: {} rd / {} wr",
            self.l1_hits,
            self.l1_misses,
            self.l2_hits,
            self.l2_misses,
            self.dram_reads,
            self.dram_writes
        )?;
        writeln!(
            f,
            "scratchpad:        {} loads, {} stores, {} bank conflicts",
            self.shared_loads, self.shared_stores, self.shared_bank_conflicts
        )?;
        write!(
            f,
            "gpu:               {} warp-instructions, {} barrier-wait cycles",
            self.gpu_instructions, self.barrier_wait_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_ops_sums_all_unit_classes() {
        let s = RunStats {
            alu_ops: 1,
            fpu_ops: 2,
            special_ops: 3,
            control_ops: 4,
            sju_ops: 5,
            elevator_ops: 6,
            ..RunStats::default()
        };
        assert_eq!(s.fabric_ops(), 21);
        assert_eq!(s.totals().fabric_ops(), 21);
    }

    #[test]
    fn hit_rate_none_when_no_accesses() {
        assert_eq!(RunStats::default().l1_hit_rate(), None);
        let s = RunStats {
            l1_hits: 3,
            l1_misses: 1,
            ..RunStats::default()
        };
        assert_eq!(s.l1_hit_rate(), Some(0.75));
    }

    #[test]
    fn add_assign_accumulates_every_field_and_concatenates_phases() {
        let mut a = RunStats::default();
        let b = RunStats {
            cycles: 10,
            alu_ops: 5,
            dram_writes: 2,
            gpu_instructions: 7,
            per_phase: vec![PhaseStats {
                cycles: 10,
                alu_ops: 5,
                dram_writes: 2,
                gpu_instructions: 7,
                ..PhaseStats::default()
            }],
            ..RunStats::default()
        };
        a += b.clone();
        a += b;
        assert_eq!(a.cycles, 20);
        assert_eq!(a.alu_ops, 10);
        assert_eq!(a.dram_writes, 4);
        assert_eq!(a.gpu_instructions, 14);
        assert_eq!(a.per_phase.len(), 2);
        assert!(a.phase_sums_match());
    }

    #[test]
    fn from_phases_derives_totals_as_the_exact_sum() {
        let p0 = PhaseStats {
            cycles: 100,
            alu_ops: 7,
            l1_hits: 3,
            ..PhaseStats::default()
        };
        let p1 = PhaseStats {
            cycles: 50,
            fpu_ops: 9,
            l1_hits: 2,
            ..PhaseStats::default()
        };
        let s = RunStats::from_phases(vec![p0, p1]);
        assert_eq!(s.cycles, 150);
        assert_eq!(s.alu_ops, 7);
        assert_eq!(s.fpu_ops, 9);
        assert_eq!(s.l1_hits, 5);
        assert_eq!(s.per_phase, vec![p0, p1]);
        assert!(s.phase_sums_match());
        assert_eq!(s.totals(), {
            let mut t = p0;
            t.accumulate(&p1);
            t
        });
    }

    #[test]
    fn minus_recovers_a_phase_from_cumulative_snapshots() {
        let prev = PhaseStats {
            cycles: 40,
            noc_hops: 10,
            ..PhaseStats::default()
        };
        let cum = PhaseStats {
            cycles: 100,
            noc_hops: 25,
            dram_reads: 4,
            ..PhaseStats::default()
        };
        let delta = cum.minus(&prev);
        assert_eq!(delta.cycles, 60);
        assert_eq!(delta.noc_hops, 15);
        assert_eq!(delta.dram_reads, 4);
    }

    #[test]
    fn phase_sums_match_detects_drift() {
        let mut s = RunStats::from_phases(vec![PhaseStats {
            cycles: 10,
            ..PhaseStats::default()
        }]);
        assert!(s.phase_sums_match());
        s.cycles += 1;
        assert!(!s.phase_sums_match());
        // No breakdown attached: vacuously consistent.
        assert!(RunStats {
            cycles: 5,
            ..RunStats::default()
        }
        .phase_sums_match());
    }

    #[test]
    fn ops_per_cycle_handles_zero_cycles() {
        assert_eq!(RunStats::default().ops_per_cycle(), 0.0);
        assert_eq!(PhaseStats::default().ops_per_cycle(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!RunStats::default().to_string().is_empty());
    }
}
