//! Run statistics: the event counters every backend produces.
//!
//! A [`RunStats`] is filled by the fabric, GPU and memory simulators during a
//! kernel run, then consumed by the energy model (which multiplies event
//! counts by per-event energies, mirroring GPUWattch's methodology) and by
//! the figure harnesses.

use std::fmt;
use std::ops::AddAssign;

/// Event counters accumulated over one kernel execution.
///
/// All counters are monotonically increasing event counts; `cycles` is the
/// total execution time in core cycles. Counters irrelevant to a backend
/// stay zero (e.g. `gpu_instructions` on a CGRA run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Total execution time in core cycles.
    pub cycles: u64,
    /// Threads that completed execution.
    pub threads_retired: u64,
    /// Barrier-delimited phases executed (1 when the kernel has no barrier).
    pub phases: u64,

    // ---- Fabric operation counts ----
    /// Integer ALU operations fired.
    pub alu_ops: u64,
    /// Floating-point operations fired.
    pub fpu_ops: u64,
    /// Special-function operations fired (div/sqrt/exp).
    pub special_ops: u64,
    /// Control operations fired (select/compare/bitwise).
    pub control_ops: u64,
    /// Split/join pass-throughs fired.
    pub sju_ops: u64,
    /// Elevator re-tagging operations fired.
    pub elevator_ops: u64,
    /// Tokens an elevator filled with the fallback constant (sender outside
    /// the transmission window or the thread block).
    pub elevator_const_tokens: u64,
    /// Values an eLDST forwarded from the token buffer instead of loading
    /// from memory (each is one memory access saved).
    pub eldst_forwards: u64,

    // ---- Fabric transport ----
    /// Tokens placed on the NoC.
    pub tokens_routed: u64,
    /// Total NoC router hops traversed by all tokens.
    pub noc_hops: u64,
    /// Tokens written to matching-store/token buffers.
    pub token_buffer_writes: u64,
    /// Cycles in which at least one unit could not fire due to downstream
    /// backpressure.
    pub backpressure_cycles: u64,

    // ---- Memory system ----
    /// Global-memory load requests issued (after eLDST forwarding).
    pub global_loads: u64,
    /// Global-memory store requests issued.
    pub global_stores: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM line transactions (reads).
    pub dram_reads: u64,
    /// DRAM line transactions (writes, including write-back evictions).
    pub dram_writes: u64,
    /// Scratchpad (shared-memory) loads.
    pub shared_loads: u64,
    /// Scratchpad (shared-memory) stores.
    pub shared_stores: u64,
    /// Extra serialization events caused by scratchpad bank conflicts.
    pub shared_bank_conflicts: u64,
    /// Live-Value-Cache reads (elevator spill path).
    pub lvc_reads: u64,
    /// Live-Value-Cache writes (elevator spill path).
    pub lvc_writes: u64,

    // ---- GPU (von Neumann) backend ----
    /// Warp-instructions issued (each fetch/decode event).
    pub gpu_instructions: u64,
    /// Thread-instructions executed (warp-instructions × active lanes).
    pub gpu_thread_instructions: u64,
    /// Register-file operand reads.
    pub register_reads: u64,
    /// Register-file writes.
    pub register_writes: u64,
    /// Warp-cycles spent waiting at barriers.
    pub barrier_wait_cycles: u64,
    /// Barrier instructions executed (per warp).
    pub barriers: u64,
    /// Cycles in which no warp could issue (stall cycles).
    pub gpu_stall_cycles: u64,
}

impl RunStats {
    /// Creates an all-zero statistics record.
    #[must_use]
    pub fn new() -> RunStats {
        RunStats::default()
    }

    /// Total functional-unit operations fired in the fabric.
    #[must_use]
    pub fn fabric_ops(&self) -> u64 {
        self.alu_ops
            + self.fpu_ops
            + self.special_ops
            + self.control_ops
            + self.sju_ops
            + self.elevator_ops
    }

    /// Total memory-hierarchy accesses (global loads + stores).
    #[must_use]
    pub fn global_accesses(&self) -> u64 {
        self.global_loads + self.global_stores
    }

    /// Total scratchpad accesses.
    #[must_use]
    pub fn shared_accesses(&self) -> u64 {
        self.shared_loads + self.shared_stores
    }

    /// L1 hit rate in [0, 1]; `None` when there were no L1 accesses.
    #[must_use]
    pub fn l1_hit_rate(&self) -> Option<f64> {
        let total = self.l1_hits + self.l1_misses;
        (total > 0).then(|| self.l1_hits as f64 / total as f64)
    }

    /// Average fabric operations fired per cycle (the ILP utilization the
    /// paper's 140-unit argument is about).
    #[must_use]
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fabric_ops() as f64 / self.cycles as f64
        }
    }
}

impl AddAssign for RunStats {
    /// Accumulates another record into `self`. `cycles` and `phases` add
    /// (sequential composition of runs).
    fn add_assign(&mut self, rhs: RunStats) {
        let RunStats {
            cycles,
            threads_retired,
            phases,
            alu_ops,
            fpu_ops,
            special_ops,
            control_ops,
            sju_ops,
            elevator_ops,
            elevator_const_tokens,
            eldst_forwards,
            tokens_routed,
            noc_hops,
            token_buffer_writes,
            backpressure_cycles,
            global_loads,
            global_stores,
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            dram_reads,
            dram_writes,
            shared_loads,
            shared_stores,
            shared_bank_conflicts,
            lvc_reads,
            lvc_writes,
            gpu_instructions,
            gpu_thread_instructions,
            register_reads,
            register_writes,
            barrier_wait_cycles,
            barriers,
            gpu_stall_cycles,
        } = rhs;
        self.cycles += cycles;
        self.threads_retired += threads_retired;
        self.phases += phases;
        self.alu_ops += alu_ops;
        self.fpu_ops += fpu_ops;
        self.special_ops += special_ops;
        self.control_ops += control_ops;
        self.sju_ops += sju_ops;
        self.elevator_ops += elevator_ops;
        self.elevator_const_tokens += elevator_const_tokens;
        self.eldst_forwards += eldst_forwards;
        self.tokens_routed += tokens_routed;
        self.noc_hops += noc_hops;
        self.token_buffer_writes += token_buffer_writes;
        self.backpressure_cycles += backpressure_cycles;
        self.global_loads += global_loads;
        self.global_stores += global_stores;
        self.l1_hits += l1_hits;
        self.l1_misses += l1_misses;
        self.l2_hits += l2_hits;
        self.l2_misses += l2_misses;
        self.dram_reads += dram_reads;
        self.dram_writes += dram_writes;
        self.shared_loads += shared_loads;
        self.shared_stores += shared_stores;
        self.shared_bank_conflicts += shared_bank_conflicts;
        self.lvc_reads += lvc_reads;
        self.lvc_writes += lvc_writes;
        self.gpu_instructions += gpu_instructions;
        self.gpu_thread_instructions += gpu_thread_instructions;
        self.register_reads += register_reads;
        self.register_writes += register_writes;
        self.barrier_wait_cycles += barrier_wait_cycles;
        self.barriers += barriers;
        self.gpu_stall_cycles += gpu_stall_cycles;
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:            {}", self.cycles)?;
        writeln!(f, "threads retired:   {}", self.threads_retired)?;
        writeln!(
            f,
            "fabric ops:        {} ({:.2} ops/cycle)",
            self.fabric_ops(),
            self.ops_per_cycle()
        )?;
        writeln!(
            f,
            "global memory:     {} loads ({} forwarded), {} stores",
            self.global_loads, self.eldst_forwards, self.global_stores
        )?;
        writeln!(
            f,
            "L1: {} hits / {} misses; L2: {} hits / {} misses; DRAM: {} rd / {} wr",
            self.l1_hits,
            self.l1_misses,
            self.l2_hits,
            self.l2_misses,
            self.dram_reads,
            self.dram_writes
        )?;
        writeln!(
            f,
            "scratchpad:        {} loads, {} stores, {} bank conflicts",
            self.shared_loads, self.shared_stores, self.shared_bank_conflicts
        )?;
        write!(
            f,
            "gpu:               {} warp-instructions, {} barrier-wait cycles",
            self.gpu_instructions, self.barrier_wait_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_ops_sums_all_unit_classes() {
        let s = RunStats {
            alu_ops: 1,
            fpu_ops: 2,
            special_ops: 3,
            control_ops: 4,
            sju_ops: 5,
            elevator_ops: 6,
            ..RunStats::default()
        };
        assert_eq!(s.fabric_ops(), 21);
    }

    #[test]
    fn hit_rate_none_when_no_accesses() {
        assert_eq!(RunStats::default().l1_hit_rate(), None);
        let s = RunStats {
            l1_hits: 3,
            l1_misses: 1,
            ..RunStats::default()
        };
        assert_eq!(s.l1_hit_rate(), Some(0.75));
    }

    #[test]
    fn add_assign_accumulates_every_field() {
        let mut a = RunStats::default();
        let b = RunStats {
            cycles: 10,
            alu_ops: 5,
            dram_writes: 2,
            gpu_instructions: 7,
            ..RunStats::default()
        };
        a += b;
        a += b;
        assert_eq!(a.cycles, 20);
        assert_eq!(a.alu_ops, 10);
        assert_eq!(a.dram_writes, 4);
        assert_eq!(a.gpu_instructions, 14);
    }

    #[test]
    fn ops_per_cycle_handles_zero_cycles() {
        assert_eq!(RunStats::default().ops_per_cycle(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!RunStats::default().to_string().is_empty());
    }
}
