//! The workspace's hand-rolled JSON value model and parser.
//!
//! The build environment is hermetic (no serde), so this module carries a
//! deliberately tiny JSON document model ([`Json`]) and serializer —
//! objects preserve insertion order, strings are escaped per RFC 8259,
//! floats print in Rust's shortest round-trip form. It started life as
//! the artifact writer in `dmt-runner` and moved here so crates below
//! the runner in the dependency graph (the observability layer, the
//! cycle engines) can emit and consume the same documents;
//! `dmt_runner::artifact::Json` re-exports it, so the rendered bytes of
//! every existing artifact are unchanged.

use std::fmt::Write as _;

/// A JSON document: the minimal value model the artifact writer needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (all counters are u64).
    U64(u64),
    /// A float, serialized in shortest round-trip form.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a key to an object (panics on non-objects — construction
    /// bugs, not data).
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => entries.push((key.to_owned(), value.into())),
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// Serializes with two-space indentation and a trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no whitespace — the wire
    /// format of line-delimited protocols (`dmt-serve`), where a
    /// newline terminates the message. Scalars render exactly as in
    /// [`Json::render`], so `parse ∘ render_compact = id` too.
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest-round-trip but renders
                    // integral values without a decimal point; keep them
                    // unambiguously floats at any magnitude ({:.1} is the
                    // exact decimal expansion, so parse() recovers the
                    // same bits — a bare integer spelling would come back
                    // as U64 instead).
                    if x.fract() == 0.0 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    // JSON has no NaN/Inf; null is the conventional spelling.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses a JSON document (the inverse of [`Json::render`]).
    ///
    /// The grammar is RFC 8259 minus nothing the writer emits: objects,
    /// arrays, strings (with escapes), numbers, booleans and `null`.
    /// Non-negative integers without a fraction or exponent parse as
    /// [`Json::U64`]; every other number parses as [`Json::F64`] — the
    /// exact split the writer produces, so `parse(render(doc)) == doc`
    /// for any document the writer can emit (NaN/Inf excepted: the
    /// writer spells them `null`, which stays `null`).
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset for malformed input —
    /// callers (the result cache) treat any error as a miss.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a key in an object (`None` on non-objects and missing
    /// keys; first match wins, as in the writer's insertion order).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float (unsigned integers coerce losslessly where
    /// they fit `f64`'s 53-bit mantissa; larger ones do not coerce).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) if *n <= (1u64 << 53) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent parser over the raw bytes (JSON structure is ASCII;
/// string contents pass through as UTF-8).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(format!("unterminated string at byte {start}")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (structure bytes are ASCII,
                    // so multi-byte sequences only occur inside strings).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(format!("unpaired surrogate before byte {}", self.pos));
                }
                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
            } else {
                return Err(format!("unpaired surrogate before byte {}", self.pos));
            }
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| format!("invalid scalar before byte {}", self.pos))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if float || text.starts_with('-') {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| format!("bad number at byte {start}"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v.into())
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Writes any [`Json`] document to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(path: &std::path::Path, doc: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escapes_and_numbers() {
        let doc = Json::obj()
            .with("s", "a\"b\\c\nd")
            .with("i", 42u64)
            .with("f", 1.5)
            .with("whole", 2.0)
            .with("nan", f64::NAN)
            .with("arr", vec![Json::U64(1), Json::Null])
            .with("empty", Json::obj());
        let text = doc.render();
        assert!(text.contains(r#""s": "a\"b\\c\nd""#), "{text}");
        assert!(text.contains("\"i\": 42"), "{text}");
        assert!(text.contains("\"f\": 1.5"), "{text}");
        assert!(text.contains("\"whole\": 2.0"), "{text}");
        assert!(text.contains("\"nan\": null"), "{text}");
        assert!(text.contains("\"empty\": {}"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }

    #[test]
    fn compact_rendering_is_one_line_and_round_trips() {
        let doc = Json::obj()
            .with("verb", "status")
            .with("f", 2.0)
            .with("arr", vec![Json::U64(1), Json::Null])
            .with("nested", Json::obj().with("k", "v\n"))
            .with("empty", Json::Arr(Vec::new()));
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "{line}");
        assert!(!line.contains(' '), "{line}");
        assert_eq!(
            line,
            r#"{"verb":"status","f":2.0,"arr":[1,null],"nested":{"k":"v\n"},"empty":[]}"#
        );
        // The same parser reads both renderings back to the same doc.
        assert_eq!(Json::parse(&line).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn parse_inverts_render() {
        let doc = Json::obj()
            .with("s", "a\"b\\c\nd\te\u{1}ü€")
            .with("i", 42u64)
            .with("big", u64::MAX)
            .with("f", 1.5)
            .with("tiny", 1.25e-6)
            .with("whole", 2.0)
            .with("huge_whole", 1e16)
            .with("past_mantissa", 9_007_199_254_740_994.0_f64)
            .with("t", true)
            .with("nil", Json::Null)
            .with(
                "arr",
                vec![Json::U64(1), Json::F64(0.1), Json::Str("x".into())],
            )
            .with("empty_arr", Json::Arr(Vec::new()))
            .with("nested", Json::obj().with("k", Json::obj()));
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc, "{text}");
    }

    #[test]
    fn parse_accepts_foreign_spellings() {
        // Whitespace layouts and escapes the writer never emits.
        let v = Json::parse(" { \"a\" : [ 1 , -2.5 , \"\\u0041\\u00e9\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[Json::U64(1), Json::F64(-2.5), Json::Str("Aé".into())]
        );
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
            "nul",
            "01x",
            "1.2.3",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors_navigate_and_type_check() {
        let doc = Json::obj()
            .with("n", 7u64)
            .with("f", 0.5)
            .with("s", "str")
            .with("a", vec![Json::Null]);
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(doc.get("f").unwrap().as_f64(), Some(0.5));
        assert_eq!(doc.get("f").unwrap().as_u64(), None);
        assert_eq!(doc.get("s").unwrap().as_str(), Some("str"));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(doc.get("missing").is_none());
        assert!(Json::Null.get("n").is_none());
        // u64s beyond f64's mantissa must not silently lose precision.
        assert_eq!(Json::U64(u64::MAX).as_f64(), None);
    }
}
