//! System configuration, defaulting to the paper's Table 2.
//!
//! A [`SystemConfig`] fully describes one simulated machine: the CGRA grid
//! composition, fabric micro-architecture parameters, memory hierarchy and
//! the Fermi-SM baseline. Ablation studies build variants via struct update
//! syntax; `SystemConfig::default()` is the Table 2 machine.

use std::fmt;

/// Functional-unit classes populating the CGRA grid (§4, Fig 7).
///
/// `Control` units double as elevator nodes and `LoadStore` units as eLDST
/// units — the paper converts existing units by adding combinational logic,
/// so both consume capacity from the same pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnitClass {
    /// Integer arithmetic/logic units.
    Alu,
    /// Floating-point units.
    Fpu,
    /// Special compute units (division, square root, exponential).
    Special,
    /// Load/store units; may be configured as eLDST.
    LoadStore,
    /// Split/join units preserving intra-thread memory order.
    SplitJoin,
    /// Control units (select, compare, bitwise); may be configured as
    /// elevator nodes.
    Control,
}

impl UnitClass {
    /// All unit classes, in display order.
    pub const ALL: [UnitClass; 6] = [
        UnitClass::Alu,
        UnitClass::Fpu,
        UnitClass::Special,
        UnitClass::LoadStore,
        UnitClass::SplitJoin,
        UnitClass::Control,
    ];
}

impl fmt::Display for UnitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnitClass::Alu => "ALU",
            UnitClass::Fpu => "FPU",
            UnitClass::Special => "SCU",
            UnitClass::LoadStore => "LDST",
            UnitClass::SplitJoin => "SJU",
            UnitClass::Control => "CU",
        };
        f.write_str(s)
    }
}

/// CGRA grid composition (Table 2: 140 interconnected units).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridConfig {
    /// Number of integer ALUs.
    pub alus: u32,
    /// Number of floating-point units.
    pub fpus: u32,
    /// Number of special compute units.
    pub specials: u32,
    /// Number of load/store units (each convertible to eLDST).
    pub ldsts: u32,
    /// Number of split/join units.
    pub sjus: u32,
    /// Number of control units (each convertible to an elevator node).
    pub controls: u32,
}

impl GridConfig {
    /// Units available in a class pool.
    #[must_use]
    pub fn capacity(&self, class: UnitClass) -> u32 {
        match class {
            UnitClass::Alu => self.alus,
            UnitClass::Fpu => self.fpus,
            UnitClass::Special => self.specials,
            UnitClass::LoadStore => self.ldsts,
            UnitClass::SplitJoin => self.sjus,
            UnitClass::Control => self.controls,
        }
    }

    /// Total number of functional units in the grid.
    #[must_use]
    pub fn total_units(&self) -> u32 {
        UnitClass::ALL.iter().map(|&c| self.capacity(c)).sum()
    }
}

impl Default for GridConfig {
    /// Table 2: 32 ALUs, 32 FPUs, 12 SCUs, 32 LDSTs, 16 SJUs, 16 CUs.
    fn default() -> GridConfig {
        GridConfig {
            alus: 32,
            fpus: 32,
            specials: 12,
            ldsts: 32,
            sjus: 16,
            controls: 16,
        }
    }
}

/// Fabric micro-architecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Entries in each elevator/eLDST token buffer; bounds the ΔTID a single
    /// node can shift (§4.3; default 16 per Fig 5 discussion).
    pub token_buffer_entries: u32,
    /// In-flight memory requests a load/store unit can track (its internal
    /// request queue; SGMF LDST units pipeline many outstanding accesses —
    /// this is distinct from the 16-entry elevator token buffer).
    pub ldst_queue_entries: u32,
    /// Maximum threads concurrently in flight in the fabric. Matching
    /// stores are indexed `tid mod inflight_threads`, and the injector only
    /// admits thread `t` once thread `t − inflight_threads` retired.
    pub inflight_threads: u32,
    /// NoC latency per routing hop, in core cycles.
    pub noc_hop_latency: u64,
    /// Threads injected per cycle ("a new thread can thus be injected into
    /// the computational fabric on every cycle", §3).
    pub threads_injected_per_cycle: u32,
    /// Side length of the square placement grid (`grid_width²` slots must
    /// hold every configured unit).
    pub grid_width: u32,
    /// Cycles to reconfigure the fabric between barrier-delimited phases
    /// ("the configuration process itself is lightweight", §3).
    pub reconfiguration_cycles: u64,
}

impl Default for FabricConfig {
    fn default() -> FabricConfig {
        FabricConfig {
            token_buffer_entries: 16,
            ldst_queue_entries: 256,
            inflight_threads: 2048,
            noc_hop_latency: 1,
            threads_injected_per_cycle: 1,
            grid_width: 12,
            reconfiguration_cycles: 16,
        }
    }
}

/// Pipeline latencies per unit class, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitLatencies {
    /// Integer ALU operation latency.
    pub alu: u64,
    /// Floating-point operation latency.
    pub fpu: u64,
    /// Special-function (div/sqrt/exp) latency.
    pub special: u64,
    /// Control (select/compare/bitwise) latency.
    pub control: u64,
    /// Split/join pass-through latency.
    pub sju: u64,
    /// Elevator re-tagging latency.
    pub elevator: u64,
    /// Load/store issue latency (memory latency comes from the hierarchy).
    pub ldst_issue: u64,
}

impl Default for UnitLatencies {
    fn default() -> UnitLatencies {
        UnitLatencies {
            alu: 1,
            fpu: 4,
            special: 8,
            control: 1,
            sju: 1,
            elevator: 1,
            ldst_issue: 1,
        }
    }
}

/// Write policy of a cache level (§5.1: dMT-CGRA uses write-back +
/// write-allocate L1; Fermi uses write-through + write-no-allocate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePolicy {
    /// Write-back, write-allocate.
    #[default]
    WriteBackAllocate,
    /// Write-through, write-no-allocate.
    WriteThroughNoAllocate,
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Number of independent banks (one access per bank per cycle).
    pub banks: u32,
    /// Hit latency in core cycles.
    pub hit_latency: u64,
    /// Miss-status holding registers: maximum outstanding misses.
    pub mshrs: u32,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// Number of sets; capacity / (line × ways).
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.ways))
    }
}

/// GDDR5-like DRAM model (Table 2: 16 banks, 6 channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent channels; requests are interleaved by line address.
    pub channels: u32,
    /// Banks per channel; a bank is busy for `bank_busy_cycles` per access.
    pub banks_per_channel: u32,
    /// Access latency in core cycles (row activate + CAS at 0.924 GHz,
    /// expressed in the 1.4 GHz core domain).
    pub latency: u64,
    /// Cycles a bank stays busy per line transfer (bandwidth model).
    pub bank_busy_cycles: u64,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            channels: 6,
            banks_per_channel: 16,
            latency: 220,
            bank_busy_cycles: 16,
        }
    }
}

/// Shared-memory scratchpad (used only by the GPGPU and MT-CGRA baselines;
/// the dMT-CGRA programming model eliminates it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchpadConfig {
    /// Capacity in bytes (Fermi: 48 KiB).
    pub size_bytes: u64,
    /// Banks; conflicting accesses within a warp serialize.
    pub banks: u32,
    /// Access latency in core cycles.
    pub latency: u64,
}

impl Default for ScratchpadConfig {
    fn default() -> ScratchpadConfig {
        ScratchpadConfig {
            size_bytes: 48 * 1024,
            banks: 32,
            latency: 24,
        }
    }
}

/// Live Value Cache: the compiler-managed spill buffer used when a ΔTID is
/// too large even for cascaded elevator nodes (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LvcConfig {
    /// Capacity in 32-bit entries.
    pub entries: u32,
    /// Access latency in core cycles.
    pub latency: u64,
}

impl Default for LvcConfig {
    fn default() -> LvcConfig {
        LvcConfig {
            entries: 2048,
            latency: 4,
        }
    }
}

/// The complete memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 data cache (64 KB, 32 banks, 128 B lines, 4-way).
    pub l1: CacheConfig,
    /// L2 cache (768 KB, 6 banks, 128 B lines, 16-way).
    pub l2: CacheConfig,
    /// DRAM.
    pub dram: DramConfig,
    /// Shared-memory scratchpad.
    pub scratchpad: ScratchpadConfig,
    /// Live Value Cache.
    pub lvc: LvcConfig,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            l1: CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 128,
                ways: 4,
                banks: 32,
                hit_latency: 24,
                mshrs: 64,
                write_policy: WritePolicy::WriteBackAllocate,
            },
            l2: CacheConfig {
                size_bytes: 768 * 1024,
                line_bytes: 128,
                ways: 16,
                banks: 6,
                hit_latency: 60,
                mshrs: 64,
                write_policy: WritePolicy::WriteBackAllocate,
            },
            dram: DramConfig::default(),
            scratchpad: ScratchpadConfig::default(),
            lvc: LvcConfig::default(),
        }
    }
}

/// Fermi-SM baseline parameters (§5.1: "the amount of logic found in a
/// dMT-CGRA core is approximately the same as in an Nvidia SM").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuConfig {
    /// SIMT width: lanes issued per cycle.
    pub warp_width: u32,
    /// Maximum resident warps per SM (Fermi: 48).
    pub max_warps: u32,
    /// Instruction issue latency floor (cycles between dependent issues).
    pub issue_latency: u64,
    /// ALU instruction latency.
    pub alu_latency: u64,
    /// FPU instruction latency.
    pub fpu_latency: u64,
    /// Special-function instruction latency.
    pub sfu_latency: u64,
    /// Number of special-function lanes (Fermi: 4 SFUs per SM); a warp's
    /// SFU instruction occupies `warp_width / sfu_lanes` issue slots.
    pub sfu_lanes: u32,
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        GpuConfig {
            warp_width: 32,
            max_warps: 48,
            issue_latency: 1,
            alu_latency: 4,
            fpu_latency: 4,
            sfu_latency: 16,
            sfu_lanes: 4,
        }
    }
}

/// Clock frequencies (Table 2), used for cross-domain latency scaling and
/// leakage-energy accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockConfig {
    /// Core and fabric clock, GHz.
    pub core_ghz: f64,
    /// Interconnect clock, GHz.
    pub interconnect_ghz: f64,
    /// L2 clock, GHz.
    pub l2_ghz: f64,
    /// DRAM clock, GHz.
    pub dram_ghz: f64,
}

impl Default for ClockConfig {
    fn default() -> ClockConfig {
        ClockConfig {
            core_ghz: 1.4,
            interconnect_ghz: 1.4,
            l2_ghz: 0.7,
            dram_ghz: 0.924,
        }
    }
}

/// The complete configuration of one simulated machine. `default()` is the
/// paper's Table 2 system.
///
/// # Examples
///
/// ```
/// use dmt_common::config::SystemConfig;
///
/// let cfg = SystemConfig::default();
/// assert_eq!(cfg.grid.total_units(), 140);
/// assert_eq!(cfg.fabric.token_buffer_entries, 16);
/// assert_eq!(cfg.mem.l1.sets(), 128);
///
/// // Ablation variant: smaller elevator token buffers.
/// let small = SystemConfig {
///     fabric: dmt_common::config::FabricConfig {
///         token_buffer_entries: 4,
///         ..cfg.fabric
///     },
///     ..cfg
/// };
/// assert_eq!(small.fabric.token_buffer_entries, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SystemConfig {
    /// CGRA grid composition.
    pub grid: GridConfig,
    /// Fabric micro-architecture.
    pub fabric: FabricConfig,
    /// Unit latencies.
    pub latencies: UnitLatencies,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// Fermi-SM baseline.
    pub gpu: GpuConfig,
    /// Clock domains.
    pub clocks: ClockConfig,
}

/// One scalar leaf of a [`SystemConfig`], in canonical form.
///
/// Produced by [`SystemConfig::visit_fields`]; consumers that need a
/// stable identity for a configuration (job hashing, artifact metadata)
/// fold these instead of relying on struct layout or `Debug` output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CfgValue {
    /// An unsigned integer field (`u32`/`u64` widened to `u64`).
    U64(u64),
    /// A floating-point field (clock frequencies).
    F64(f64),
    /// An enumerated field, identified by its variant name.
    Tag(&'static str),
}

impl WritePolicy {
    /// The canonical variant name (used by [`SystemConfig::visit_fields`]).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            WritePolicy::WriteBackAllocate => "write_back_allocate",
            WritePolicy::WriteThroughNoAllocate => "write_through_no_allocate",
        }
    }

    /// Parses a canonical variant name (the inverse of
    /// [`WritePolicy::tag`]).
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<WritePolicy> {
        match tag {
            "write_back_allocate" => Some(WritePolicy::WriteBackAllocate),
            "write_through_no_allocate" => Some(WritePolicy::WriteThroughNoAllocate),
            _ => None,
        }
    }
}

/// A runtime-supplied value for [`SystemConfig::set_field`] — the
/// write-side counterpart of [`CfgValue`], with a borrowed tag so
/// callers can pass strings parsed from requests or files.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CfgInput<'a> {
    /// An unsigned integer value.
    U64(u64),
    /// A floating-point value.
    F64(f64),
    /// An enumerated value by its canonical variant name.
    Tag(&'a str),
}

impl From<CfgValue> for CfgInput<'static> {
    fn from(v: CfgValue) -> CfgInput<'static> {
        match v {
            CfgValue::U64(n) => CfgInput::U64(n),
            CfgValue::F64(x) => CfgInput::F64(x),
            CfgValue::Tag(t) => CfgInput::Tag(t),
        }
    }
}

impl SystemConfig {
    /// Visits every scalar field as a `(dotted.path, value)` pair.
    ///
    /// The visit **exhaustively destructures** every sub-struct, so adding
    /// a configuration field without extending this function is a compile
    /// error — a config hash built on top of it can never silently ignore
    /// a new knob. Visit order is unspecified; consumers that need
    /// order-independence must sort by name (see `dmt-runner`'s stable
    /// hasher).
    pub fn visit_fields(&self, visit: &mut impl FnMut(&'static str, CfgValue)) {
        let SystemConfig {
            grid,
            fabric,
            latencies,
            mem,
            gpu,
            clocks,
        } = self;
        let GridConfig {
            alus,
            fpus,
            specials,
            ldsts,
            sjus,
            controls,
        } = *grid;
        visit("grid.alus", CfgValue::U64(alus.into()));
        visit("grid.fpus", CfgValue::U64(fpus.into()));
        visit("grid.specials", CfgValue::U64(specials.into()));
        visit("grid.ldsts", CfgValue::U64(ldsts.into()));
        visit("grid.sjus", CfgValue::U64(sjus.into()));
        visit("grid.controls", CfgValue::U64(controls.into()));

        let FabricConfig {
            token_buffer_entries,
            ldst_queue_entries,
            inflight_threads,
            noc_hop_latency,
            threads_injected_per_cycle,
            grid_width,
            reconfiguration_cycles,
        } = *fabric;
        visit(
            "fabric.token_buffer_entries",
            CfgValue::U64(token_buffer_entries.into()),
        );
        visit(
            "fabric.ldst_queue_entries",
            CfgValue::U64(ldst_queue_entries.into()),
        );
        visit(
            "fabric.inflight_threads",
            CfgValue::U64(inflight_threads.into()),
        );
        visit("fabric.noc_hop_latency", CfgValue::U64(noc_hop_latency));
        visit(
            "fabric.threads_injected_per_cycle",
            CfgValue::U64(threads_injected_per_cycle.into()),
        );
        visit("fabric.grid_width", CfgValue::U64(grid_width.into()));
        visit(
            "fabric.reconfiguration_cycles",
            CfgValue::U64(reconfiguration_cycles),
        );

        let UnitLatencies {
            alu,
            fpu,
            special,
            control,
            sju,
            elevator,
            ldst_issue,
        } = *latencies;
        visit("latencies.alu", CfgValue::U64(alu));
        visit("latencies.fpu", CfgValue::U64(fpu));
        visit("latencies.special", CfgValue::U64(special));
        visit("latencies.control", CfgValue::U64(control));
        visit("latencies.sju", CfgValue::U64(sju));
        visit("latencies.elevator", CfgValue::U64(elevator));
        visit("latencies.ldst_issue", CfgValue::U64(ldst_issue));

        let MemConfig {
            l1,
            l2,
            dram,
            scratchpad,
            lvc,
        } = *mem;
        // Each cache level carries its own full name table (field names
        // must be 'static, so no runtime concatenation); a new level
        // cannot reuse another's names by accident.
        const L1_NAMES: [&str; 7] = [
            "mem.l1.size_bytes",
            "mem.l1.line_bytes",
            "mem.l1.ways",
            "mem.l1.banks",
            "mem.l1.hit_latency",
            "mem.l1.mshrs",
            "mem.l1.write_policy",
        ];
        const L2_NAMES: [&str; 7] = [
            "mem.l2.size_bytes",
            "mem.l2.line_bytes",
            "mem.l2.ways",
            "mem.l2.banks",
            "mem.l2.hit_latency",
            "mem.l2.mshrs",
            "mem.l2.write_policy",
        ];
        let cache = |names: [&'static str; 7],
                     c: CacheConfig,
                     v: &mut dyn FnMut(&'static str, CfgValue)| {
            let CacheConfig {
                size_bytes,
                line_bytes,
                ways,
                banks,
                hit_latency,
                mshrs,
                write_policy,
            } = c;
            v(names[0], CfgValue::U64(size_bytes));
            v(names[1], CfgValue::U64(line_bytes));
            v(names[2], CfgValue::U64(ways.into()));
            v(names[3], CfgValue::U64(banks.into()));
            v(names[4], CfgValue::U64(hit_latency));
            v(names[5], CfgValue::U64(mshrs.into()));
            v(names[6], CfgValue::Tag(write_policy.tag()));
        };
        cache(L1_NAMES, l1, &mut *visit);
        cache(L2_NAMES, l2, &mut *visit);

        let DramConfig {
            channels,
            banks_per_channel,
            latency,
            bank_busy_cycles,
        } = dram;
        visit("mem.dram.channels", CfgValue::U64(channels.into()));
        visit(
            "mem.dram.banks_per_channel",
            CfgValue::U64(banks_per_channel.into()),
        );
        visit("mem.dram.latency", CfgValue::U64(latency));
        visit("mem.dram.bank_busy_cycles", CfgValue::U64(bank_busy_cycles));

        let ScratchpadConfig {
            size_bytes,
            banks,
            latency,
        } = scratchpad;
        visit("mem.scratchpad.size_bytes", CfgValue::U64(size_bytes));
        visit("mem.scratchpad.banks", CfgValue::U64(banks.into()));
        visit("mem.scratchpad.latency", CfgValue::U64(latency));

        let LvcConfig { entries, latency } = lvc;
        visit("mem.lvc.entries", CfgValue::U64(entries.into()));
        visit("mem.lvc.latency", CfgValue::U64(latency));

        let GpuConfig {
            warp_width,
            max_warps,
            issue_latency,
            alu_latency,
            fpu_latency,
            sfu_latency,
            sfu_lanes,
        } = *gpu;
        visit("gpu.warp_width", CfgValue::U64(warp_width.into()));
        visit("gpu.max_warps", CfgValue::U64(max_warps.into()));
        visit("gpu.issue_latency", CfgValue::U64(issue_latency));
        visit("gpu.alu_latency", CfgValue::U64(alu_latency));
        visit("gpu.fpu_latency", CfgValue::U64(fpu_latency));
        visit("gpu.sfu_latency", CfgValue::U64(sfu_latency));
        visit("gpu.sfu_lanes", CfgValue::U64(sfu_lanes.into()));

        let ClockConfig {
            core_ghz,
            interconnect_ghz,
            l2_ghz,
            dram_ghz,
        } = *clocks;
        visit("clocks.core_ghz", CfgValue::F64(core_ghz));
        visit("clocks.interconnect_ghz", CfgValue::F64(interconnect_ghz));
        visit("clocks.l2_ghz", CfgValue::F64(l2_ghz));
        visit("clocks.dram_ghz", CfgValue::F64(dram_ghz));
    }

    /// Sets one scalar leaf by its [`SystemConfig::visit_fields`] dotted
    /// name — the write half of the field reflection that `dmt-serve`
    /// uses to apply per-request configuration overrides.
    ///
    /// The name table below mirrors `visit_fields` arm for arm; the
    /// round-trip test walks every visited leaf through this setter, so
    /// a field added to `visit_fields` (itself a compile error to skip)
    /// without a matching arm here fails the suite.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown field name, a type mismatch, an
    /// integer that overflows the field's width, or an unknown enum tag.
    pub fn set_field(&mut self, name: &str, value: CfgInput) -> Result<(), String> {
        fn u64_of(name: &str, v: CfgInput) -> Result<u64, String> {
            match v {
                CfgInput::U64(n) => Ok(n),
                other => Err(format!("{name} wants an unsigned integer, got {other:?}")),
            }
        }
        fn u32_of(name: &str, v: CfgInput) -> Result<u32, String> {
            let n = u64_of(name, v)?;
            u32::try_from(n).map_err(|_| format!("{name}: {n} does not fit in 32 bits"))
        }
        fn f64_of(name: &str, v: CfgInput) -> Result<f64, String> {
            match v {
                CfgInput::F64(x) => Ok(x),
                // Whole numbers arrive as integers from JSON ("2" not
                // "2.0"); widen rather than bounce the request.
                #[allow(clippy::cast_precision_loss)]
                CfgInput::U64(n) => Ok(n as f64),
                other @ CfgInput::Tag(_) => Err(format!("{name} wants a number, got {other:?}")),
            }
        }
        fn policy_of(name: &str, v: CfgInput) -> Result<WritePolicy, String> {
            match v {
                CfgInput::Tag(t) => WritePolicy::from_tag(t).ok_or_else(|| {
                    format!(
                        "{name}: unknown write policy {t:?} \
                         (write_back_allocate | write_through_no_allocate)"
                    )
                }),
                other => Err(format!("{name} wants a policy tag, got {other:?}")),
            }
        }
        match name {
            "grid.alus" => self.grid.alus = u32_of(name, value)?,
            "grid.fpus" => self.grid.fpus = u32_of(name, value)?,
            "grid.specials" => self.grid.specials = u32_of(name, value)?,
            "grid.ldsts" => self.grid.ldsts = u32_of(name, value)?,
            "grid.sjus" => self.grid.sjus = u32_of(name, value)?,
            "grid.controls" => self.grid.controls = u32_of(name, value)?,
            "fabric.token_buffer_entries" => {
                self.fabric.token_buffer_entries = u32_of(name, value)?;
            }
            "fabric.ldst_queue_entries" => {
                self.fabric.ldst_queue_entries = u32_of(name, value)?;
            }
            "fabric.inflight_threads" => self.fabric.inflight_threads = u32_of(name, value)?,
            "fabric.noc_hop_latency" => self.fabric.noc_hop_latency = u64_of(name, value)?,
            "fabric.threads_injected_per_cycle" => {
                self.fabric.threads_injected_per_cycle = u32_of(name, value)?;
            }
            "fabric.grid_width" => self.fabric.grid_width = u32_of(name, value)?,
            "fabric.reconfiguration_cycles" => {
                self.fabric.reconfiguration_cycles = u64_of(name, value)?;
            }
            "latencies.alu" => self.latencies.alu = u64_of(name, value)?,
            "latencies.fpu" => self.latencies.fpu = u64_of(name, value)?,
            "latencies.special" => self.latencies.special = u64_of(name, value)?,
            "latencies.control" => self.latencies.control = u64_of(name, value)?,
            "latencies.sju" => self.latencies.sju = u64_of(name, value)?,
            "latencies.elevator" => self.latencies.elevator = u64_of(name, value)?,
            "latencies.ldst_issue" => self.latencies.ldst_issue = u64_of(name, value)?,
            "mem.l1.size_bytes" => self.mem.l1.size_bytes = u64_of(name, value)?,
            "mem.l1.line_bytes" => self.mem.l1.line_bytes = u64_of(name, value)?,
            "mem.l1.ways" => self.mem.l1.ways = u32_of(name, value)?,
            "mem.l1.banks" => self.mem.l1.banks = u32_of(name, value)?,
            "mem.l1.hit_latency" => self.mem.l1.hit_latency = u64_of(name, value)?,
            "mem.l1.mshrs" => self.mem.l1.mshrs = u32_of(name, value)?,
            "mem.l1.write_policy" => self.mem.l1.write_policy = policy_of(name, value)?,
            "mem.l2.size_bytes" => self.mem.l2.size_bytes = u64_of(name, value)?,
            "mem.l2.line_bytes" => self.mem.l2.line_bytes = u64_of(name, value)?,
            "mem.l2.ways" => self.mem.l2.ways = u32_of(name, value)?,
            "mem.l2.banks" => self.mem.l2.banks = u32_of(name, value)?,
            "mem.l2.hit_latency" => self.mem.l2.hit_latency = u64_of(name, value)?,
            "mem.l2.mshrs" => self.mem.l2.mshrs = u32_of(name, value)?,
            "mem.l2.write_policy" => self.mem.l2.write_policy = policy_of(name, value)?,
            "mem.dram.channels" => self.mem.dram.channels = u32_of(name, value)?,
            "mem.dram.banks_per_channel" => {
                self.mem.dram.banks_per_channel = u32_of(name, value)?;
            }
            "mem.dram.latency" => self.mem.dram.latency = u64_of(name, value)?,
            "mem.dram.bank_busy_cycles" => {
                self.mem.dram.bank_busy_cycles = u64_of(name, value)?;
            }
            "mem.scratchpad.size_bytes" => {
                self.mem.scratchpad.size_bytes = u64_of(name, value)?;
            }
            "mem.scratchpad.banks" => self.mem.scratchpad.banks = u32_of(name, value)?,
            "mem.scratchpad.latency" => self.mem.scratchpad.latency = u64_of(name, value)?,
            "mem.lvc.entries" => self.mem.lvc.entries = u32_of(name, value)?,
            "mem.lvc.latency" => self.mem.lvc.latency = u64_of(name, value)?,
            "gpu.warp_width" => self.gpu.warp_width = u32_of(name, value)?,
            "gpu.max_warps" => self.gpu.max_warps = u32_of(name, value)?,
            "gpu.issue_latency" => self.gpu.issue_latency = u64_of(name, value)?,
            "gpu.alu_latency" => self.gpu.alu_latency = u64_of(name, value)?,
            "gpu.fpu_latency" => self.gpu.fpu_latency = u64_of(name, value)?,
            "gpu.sfu_latency" => self.gpu.sfu_latency = u64_of(name, value)?,
            "gpu.sfu_lanes" => self.gpu.sfu_lanes = u32_of(name, value)?,
            "clocks.core_ghz" => self.clocks.core_ghz = f64_of(name, value)?,
            "clocks.interconnect_ghz" => self.clocks.interconnect_ghz = f64_of(name, value)?,
            "clocks.l2_ghz" => self.clocks.l2_ghz = f64_of(name, value)?,
            "clocks.dram_ghz" => self.clocks.dram_ghz = f64_of(name, value)?,
            _ => return Err(format!("unknown config field {name:?}")),
        }
        Ok(())
    }

    /// Renders the configuration as the paper's Table 2.
    #[must_use]
    pub fn to_table(&self) -> String {
        let g = &self.grid;
        let mut s = String::new();
        s.push_str("Parameter            | Value\n");
        s.push_str("---------------------+-------------------------------------------\n");
        s.push_str(&format!(
            "dMT-CGRA Core        | {} interconnected compute/LDST/control units\n",
            g.total_units()
        ));
        s.push_str(&format!("Arithmetic units     | {} ALUs\n", g.alus));
        s.push_str(&format!(
            "Floating point units | {} FPUs, {} Special Compute units\n",
            g.fpus, g.specials
        ));
        s.push_str(&format!("Load/Store units     | {} LDST Units\n", g.ldsts));
        s.push_str(&format!(
            "Control units        | {} Split/Join units, {} Control/Elevator units\n",
            g.sjus, g.controls
        ));
        s.push_str(&format!(
            "Frequency [GHz]      | core {}, Interconnect {}, L2 {}, DRAM {}\n",
            self.clocks.core_ghz,
            self.clocks.interconnect_ghz,
            self.clocks.l2_ghz,
            self.clocks.dram_ghz
        ));
        s.push_str(&format!(
            "L1                   | {}KB, {} banks, {}B/line, {}-way\n",
            self.mem.l1.size_bytes / 1024,
            self.mem.l1.banks,
            self.mem.l1.line_bytes,
            self.mem.l1.ways
        ));
        s.push_str(&format!(
            "L2                   | {}KB, {} banks, {}B/line, {}-way\n",
            self.mem.l2.size_bytes / 1024,
            self.mem.l2.banks,
            self.mem.l2.line_bytes,
            self.mem.l2.ways
        ));
        s.push_str(&format!(
            "GDDR5 DRAM           | {} banks, {} channels\n",
            self.mem.dram.banks_per_channel, self.mem.dram.channels
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_grid_composition() {
        let g = GridConfig::default();
        assert_eq!(g.total_units(), 140);
        assert_eq!(g.capacity(UnitClass::Alu), 32);
        assert_eq!(g.capacity(UnitClass::Fpu), 32);
        assert_eq!(g.capacity(UnitClass::Special), 12);
        assert_eq!(g.capacity(UnitClass::LoadStore), 32);
        assert_eq!(g.capacity(UnitClass::SplitJoin), 16);
        assert_eq!(g.capacity(UnitClass::Control), 16);
    }

    #[test]
    fn grid_fits_placement() {
        let cfg = SystemConfig::default();
        assert!(cfg.grid.total_units() <= cfg.fabric.grid_width * cfg.fabric.grid_width);
    }

    #[test]
    fn l1_geometry() {
        let cfg = SystemConfig::default();
        // 64 KiB / (128 B * 4 ways) = 128 sets.
        assert_eq!(cfg.mem.l1.sets(), 128);
        assert_eq!(cfg.mem.l2.sets(), 384);
    }

    #[test]
    fn table_rendering_mentions_all_sections() {
        let t = SystemConfig::default().to_table();
        for needle in ["140", "32 ALUs", "GDDR5", "1.4", "0.924", "786", "768"] {
            if needle == "786" {
                continue; // paper's 786KB is a typo for 768KB; we use 768.
            }
            assert!(t.contains(needle), "table missing {needle}: {t}");
        }
    }

    #[test]
    fn visit_fields_covers_every_leaf_with_unique_names() {
        let mut fields = Vec::new();
        SystemConfig::default().visit_fields(&mut |name, v| fields.push((name, v)));
        // 6 grid + 7 fabric + 7 latencies + 14 cache + 4 dram + 3 scratchpad
        // + 2 lvc + 7 gpu + 4 clocks = 54 leaves.
        assert_eq!(fields.len(), 54);
        let mut names: Vec<&str> = fields.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fields.len(), "duplicate field names");
        assert!(fields
            .iter()
            .any(|&(n, v)| n == "fabric.token_buffer_entries" && v == CfgValue::U64(16)));
        assert!(fields
            .iter()
            .any(|&(n, v)| n == "clocks.core_ghz" && v == CfgValue::F64(1.4)));
        assert!(
            fields
                .iter()
                .any(|&(n, v)| n == "mem.l1.write_policy"
                    && v == CfgValue::Tag("write_back_allocate"))
        );
    }

    #[test]
    fn set_field_round_trips_every_visited_leaf() {
        let base = SystemConfig::default();
        let mut fields = Vec::new();
        base.visit_fields(&mut |n, v| fields.push((n, v)));
        // Nudge every leaf through its visited name...
        let nudged = |v: &CfgValue| match *v {
            CfgValue::U64(n) => CfgValue::U64(n + 1),
            CfgValue::F64(x) => CfgValue::F64(x * 2.0),
            CfgValue::Tag(_) => CfgValue::Tag("write_through_no_allocate"),
        };
        let mut cfg = base;
        for (name, value) in &fields {
            cfg.set_field(name, nudged(value).into()).unwrap();
        }
        // ...and confirm the visit reads every change back, proving the
        // setter's name table covers visit_fields arm for arm and never
        // writes the wrong leaf.
        let mut after = std::collections::BTreeMap::new();
        cfg.visit_fields(&mut |n, v| {
            after.insert(n, v);
        });
        assert_eq!(after.len(), fields.len());
        for (name, value) in &fields {
            assert_eq!(after[name], nudged(value), "{name}");
        }
    }

    #[test]
    fn set_field_rejects_bad_names_types_and_ranges() {
        let mut cfg = SystemConfig::default();
        assert!(cfg
            .set_field("grid.alus_typo", CfgInput::U64(1))
            .unwrap_err()
            .contains("unknown config field"));
        // u32 fields must not silently truncate.
        assert!(cfg
            .set_field("grid.alus", CfgInput::U64(1 << 40))
            .unwrap_err()
            .contains("32 bits"));
        assert!(cfg.set_field("grid.alus", CfgInput::F64(3.5)).is_err());
        assert!(cfg
            .set_field("mem.l1.write_policy", CfgInput::Tag("nope"))
            .unwrap_err()
            .contains("unknown write policy"));
        assert!(cfg
            .set_field("mem.l1.write_policy", CfgInput::U64(0))
            .is_err());
        // Whole numbers widen into float fields (JSON integers).
        cfg.set_field("clocks.core_ghz", CfgInput::U64(2)).unwrap();
        assert_eq!(cfg.clocks.core_ghz, 2.0);
        // The config is otherwise untouched by the failed writes.
        assert_eq!(cfg.grid, GridConfig::default());
    }

    #[test]
    fn write_policy_tags_round_trip() {
        for p in [
            WritePolicy::WriteBackAllocate,
            WritePolicy::WriteThroughNoAllocate,
        ] {
            assert_eq!(WritePolicy::from_tag(p.tag()), Some(p));
        }
        assert_eq!(WritePolicy::from_tag("x"), None);
    }

    #[test]
    fn unit_class_display() {
        let names: Vec<String> = UnitClass::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names, ["ALU", "FPU", "SCU", "LDST", "SJU", "CU"]);
    }
}
