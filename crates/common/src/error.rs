//! The shared error type for the dMT-CGRA workspace.

use crate::config::UnitClass;
use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building, compiling or simulating kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Invalid machine or kernel configuration.
    Config(String),
    /// Dataflow-graph construction misuse (e.g. operand from another kernel).
    GraphBuild(String),
    /// Dataflow-graph validation failure (cycles, arity, dangling edges).
    Validate(String),
    /// The kernel needs more units of a class than the grid provides, even
    /// at replication factor 1.
    CapacityExceeded {
        /// Unit class whose pool is exhausted.
        class: UnitClass,
        /// Units the kernel graph requires.
        required: u32,
        /// Units the grid provides.
        available: u32,
    },
    /// Compilation failure other than capacity (placement, routing, spill).
    Compile(String),
    /// Simulation-time failure (bad address, unmapped parameter…).
    Runtime(String),
    /// The fabric made no forward progress: tokens are in flight but nothing
    /// can fire (usually an ill-formed communication pattern).
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Description of the stuck state.
        detail: String,
    },
    /// The run exceeded its simulated-cycle deadline (see
    /// `crate::limits::RunLimits`).
    TimedOut {
        /// Cycle at which the budget check tripped.
        cycle: u64,
        /// The configured budget.
        deadline_cycles: u64,
    },
    /// The run was cooperatively cancelled via its token.
    Cancelled {
        /// Cycle at which the cancellation was observed.
        cycle: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(m) => write!(f, "invalid configuration: {m}"),
            Error::GraphBuild(m) => write!(f, "graph construction error: {m}"),
            Error::Validate(m) => write!(f, "graph validation failed: {m}"),
            Error::CapacityExceeded {
                class,
                required,
                available,
            } => write!(
                f,
                "kernel requires {required} {class} units but the grid provides {available}"
            ),
            Error::Compile(m) => write!(f, "compilation failed: {m}"),
            Error::Runtime(m) => write!(f, "runtime error: {m}"),
            Error::Deadlock { cycle, detail } => {
                write!(f, "fabric deadlock at cycle {cycle}: {detail}")
            }
            Error::TimedOut {
                cycle,
                deadline_cycles,
            } => write!(
                f,
                "deadline exceeded at cycle {cycle} (budget {deadline_cycles} cycles)"
            ),
            Error::Cancelled { cycle } => write!(f, "run cancelled at cycle {cycle}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::CapacityExceeded {
            class: UnitClass::Control,
            required: 20,
            available: 16,
        };
        let s = e.to_string();
        assert!(s.contains("20"));
        assert!(s.contains("16"));
        assert!(s.contains("CU"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<Error>();
    }

    #[test]
    fn timeout_and_cancel_messages_mention_the_cycle() {
        let t = Error::TimedOut {
            cycle: 500,
            deadline_cycles: 500,
        };
        assert!(t.to_string().contains("500"));
        assert!(t.to_string().contains("deadline"));
        let c = Error::Cancelled { cycle: 7 };
        assert!(c.to_string().contains("cancelled at cycle 7"));
    }

    #[test]
    fn deadlock_message_mentions_cycle() {
        let e = Error::Deadlock {
            cycle: 42,
            detail: "token stuck".into(),
        };
        assert!(e.to_string().contains("42"));
    }
}
