//! CUDA-style thread geometry: block dimensions and inter-thread deltas.
//!
//! The programming model maps threads to 1D/2D/3D coordinates (CUDA
//! `threadIdx`). Inter-thread communication primitives take a *ΔTID*
//! expressed in the same coordinate space; internally both are flattened to
//! linear [`ThreadId`]s (row-major), exactly as the paper's compiler encodes
//! "constant deltas between the source thread ID and the executing thread's
//! ID" (§2.1).

use crate::ids::ThreadId;
use std::fmt;

/// Dimensions of a thread block (CUDA `blockDim`), or any 3D extent.
///
/// # Examples
///
/// ```
/// use dmt_common::geom::Dim3;
/// let b = Dim3::new(16, 16, 1);
/// assert_eq!(b.len(), 256);
/// assert_eq!(b.flatten(3, 2, 0), 35);
/// assert_eq!(b.unflatten(35), (3, 2, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Extent along x (fastest-varying).
    pub x: u32,
    /// Extent along y.
    pub y: u32,
    /// Extent along z (slowest-varying).
    pub z: u32,
}

impl Dim3 {
    /// Creates a 3D extent. Any component may be 1 for lower-dimensional
    /// spaces.
    ///
    /// # Panics
    ///
    /// Panics if any component is zero.
    #[must_use]
    pub fn new(x: u32, y: u32, z: u32) -> Dim3 {
        assert!(x > 0 && y > 0 && z > 0, "Dim3 components must be non-zero");
        Dim3 { x, y, z }
    }

    /// A 1D extent `(n, 1, 1)`.
    #[must_use]
    pub fn linear(n: u32) -> Dim3 {
        Dim3::new(n, 1, 1)
    }

    /// A 2D extent `(x, y, 1)`.
    #[must_use]
    pub fn plane(x: u32, y: u32) -> Dim3 {
        Dim3::new(x, y, 1)
    }

    /// Total number of threads in the extent.
    #[must_use]
    pub fn len(self) -> u32 {
        self.x * self.y * self.z
    }

    /// Whether the extent contains exactly one thread.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false // extents are never empty; components are non-zero
    }

    /// Row-major flattening of a coordinate: `x + y·dimx + z·dimx·dimy`.
    #[must_use]
    pub fn flatten(self, x: u32, y: u32, z: u32) -> u32 {
        debug_assert!(x < self.x && y < self.y && z < self.z);
        x + y * self.x + z * self.x * self.y
    }

    /// Inverse of [`Dim3::flatten`].
    #[must_use]
    pub fn unflatten(self, tid: u32) -> (u32, u32, u32) {
        let x = tid % self.x;
        let y = (tid / self.x) % self.y;
        let z = tid / (self.x * self.y);
        (x, y, z)
    }

    /// The x/y/z coordinate of a linear thread ID along dimension `dim`
    /// (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `dim > 2`.
    #[must_use]
    pub fn coord(self, tid: ThreadId, dim: u8) -> u32 {
        let (x, y, z) = self.unflatten(tid.0);
        match dim {
            0 => x,
            1 => y,
            2 => z,
            _ => panic!("dimension index {dim} out of range (0..=2)"),
        }
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Default for Dim3 {
    fn default() -> Dim3 {
        Dim3::new(1, 1, 1)
    }
}

/// A constant inter-thread distance (ΔTID) in up to three dimensions.
///
/// The communication functions of Table 1 have 1D, 2D and 3D variants; this
/// type covers all three (unused components are zero). Flattening against a
/// block's [`Dim3`] yields the signed linear TID delta used by elevator
/// nodes; [`Delta::euclidean`] gives the transmission-distance metric used
/// by the paper's Fig 5 CDF ("a Euclidean distance was used for 2D and 3D
/// TID spaces").
///
/// # Examples
///
/// ```
/// use dmt_common::geom::{Delta, Dim3};
/// let d = Delta::new_2d(1, 0); // from thread (tx-1, ty)
/// assert_eq!(d.flatten(Dim3::plane(16, 16)), 1);
/// let down = Delta::new_2d(0, 1); // from thread (tx, ty-1)
/// assert_eq!(down.flatten(Dim3::plane(16, 16)), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Delta {
    /// Δ along x.
    pub dx: i32,
    /// Δ along y.
    pub dy: i32,
    /// Δ along z.
    pub dz: i32,
}

impl Delta {
    /// A 1D delta.
    #[must_use]
    pub fn new(dx: i32) -> Delta {
        Delta { dx, dy: 0, dz: 0 }
    }

    /// A 2D delta.
    #[must_use]
    pub fn new_2d(dx: i32, dy: i32) -> Delta {
        Delta { dx, dy, dz: 0 }
    }

    /// A 3D delta.
    #[must_use]
    pub fn new_3d(dx: i32, dy: i32, dz: i32) -> Delta {
        Delta { dx, dy, dz }
    }

    /// The signed linear TID distance for a block of shape `dims`
    /// (receiver TID − sender TID).
    #[must_use]
    pub fn flatten(self, dims: Dim3) -> i64 {
        i64::from(self.dx)
            + i64::from(self.dy) * i64::from(dims.x)
            + i64::from(self.dz) * i64::from(dims.x) * i64::from(dims.y)
    }

    /// Euclidean transmission distance in coordinate space, the Fig 5 metric.
    #[must_use]
    pub fn euclidean(self) -> f64 {
        let (x, y, z) = (f64::from(self.dx), f64::from(self.dy), f64::from(self.dz));
        (x * x + y * y + z * z).sqrt()
    }

    /// Whether this is the zero delta (no communication).
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.dx == 0 && self.dy == 0 && self.dz == 0
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ({}, {}, {})", self.dx, self.dy, self.dz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_unflatten_roundtrip() {
        let d = Dim3::new(7, 5, 3);
        for t in 0..d.len() {
            let (x, y, z) = d.unflatten(t);
            assert_eq!(d.flatten(x, y, z), t);
        }
    }

    #[test]
    fn coord_extracts_each_dimension() {
        let d = Dim3::new(4, 4, 2);
        let tid = ThreadId(d.flatten(3, 2, 1));
        assert_eq!(d.coord(tid, 0), 3);
        assert_eq!(d.coord(tid, 1), 2);
        assert_eq!(d.coord(tid, 2), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_extent_panics() {
        let _ = Dim3::new(0, 1, 1);
    }

    #[test]
    fn delta_flatten_negative() {
        let d = Delta::new_2d(-1, -1);
        assert_eq!(d.flatten(Dim3::plane(8, 8)), -9);
    }

    #[test]
    fn delta_euclidean() {
        assert_eq!(Delta::new(3).euclidean(), 3.0);
        assert!((Delta::new_2d(3, 4).euclidean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn delta_zero() {
        assert!(Delta::default().is_zero());
        assert!(!Delta::new(1).is_zero());
    }
}
