//! Identifier newtypes shared across the simulator.
//!
//! Each identifier wraps a plain integer but participates in the type system
//! so that, e.g., a [`ThreadId`] can never be passed where a [`NodeId`] is
//! expected (C-NEWTYPE).

use std::fmt;

/// A linearized thread identifier within a thread block.
///
/// Multi-dimensional CUDA-style coordinates are flattened row-major
/// (`x + y*dim_x + z*dim_x*dim_y`, see [`crate::geom::Dim3::flatten`]).
/// Thread IDs double as dynamic-dataflow token *tags* in the fabric.
///
/// # Examples
///
/// ```
/// use dmt_common::ids::ThreadId;
/// let t = ThreadId(5);
/// assert_eq!(t.offset(-2), Some(ThreadId(3)));
/// assert_eq!(t.offset(-6), None); // would be negative: invalid source thread
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// Returns the thread whose ID differs from `self` by `delta`, or `None`
    /// if the result would be negative (an invalid source thread, which the
    /// paper's primitives replace with a fallback constant).
    #[must_use]
    pub fn offset(self, delta: i64) -> Option<ThreadId> {
        let v = i64::from(self.0) + delta;
        u32::try_from(v).ok().map(ThreadId)
    }

    /// The raw index as a `usize`, for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A node in a kernel dataflow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index as a `usize`, for dense side tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A functional unit instance in the CGRA grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitId(pub u32);

impl UnitId {
    /// The raw index as a `usize`, for dense side tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// An operand input port on a dataflow node or functional unit.
///
/// Port 0 is the left operand, port 1 the right operand, port 2 a predicate
/// or third operand (e.g. for `select`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortIx(pub u8);

impl fmt::Display for PortIx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A simulation timestamp, measured in core clock cycles (1.4 GHz domain).
///
/// All other clock domains (interconnect, L2, DRAM; see Table 2) are
/// expressed as core-cycle latencies scaled by the clock ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Zero cycles; the start of a simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// This timestamp plus `n` cycles.
    #[must_use]
    pub fn plus(self, n: u64) -> Cycle {
        Cycle(self.0 + n)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

/// A byte address in the simulated global memory space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// This address plus a byte offset.
    #[must_use]
    pub fn plus(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// The containing aligned block index for a power-of-two `block` size
    /// (e.g. a cache line).
    #[must_use]
    pub fn block_index(self, block: u64) -> u64 {
        debug_assert!(block.is_power_of_two());
        self.0 / block
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_offset_in_range() {
        assert_eq!(ThreadId(10).offset(5), Some(ThreadId(15)));
        assert_eq!(ThreadId(10).offset(-10), Some(ThreadId(0)));
    }

    #[test]
    fn thread_id_offset_negative_is_none() {
        assert_eq!(ThreadId(0).offset(-1), None);
        assert_eq!(ThreadId(3).offset(-4), None);
    }

    #[test]
    fn addr_block_index() {
        assert_eq!(Addr(0).block_index(128), 0);
        assert_eq!(Addr(127).block_index(128), 0);
        assert_eq!(Addr(128).block_index(128), 1);
    }

    #[test]
    fn cycle_plus() {
        assert_eq!(Cycle(3).plus(4), Cycle(7));
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert_eq!(ThreadId(2).to_string(), "t2");
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(UnitId(1).to_string(), "u1");
        assert_eq!(PortIx(0).to_string(), "p0");
        assert_eq!(Addr(255).to_string(), "0xff");
    }
}
