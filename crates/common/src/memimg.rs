//! Functional memory images.
//!
//! A [`MemImage`] is the *architectural* state of a memory space: a flat,
//! word-granular array addressed by byte address. Every backend (reference
//! interpreter, CGRA fabric, GPU) reads and writes the same image type, so
//! results can be compared bit-for-bit. Timing is modelled separately by
//! `dmt-mem`; this type only answers "what value lives at this address".

use crate::ids::Addr;
use crate::value::Word;
use std::fmt;

/// A flat 32-bit-word memory space addressed by byte address.
///
/// Addresses must be 4-byte aligned — the simulated machines are 32-bit
/// word-oriented (see `dmt_common::value`).
///
/// # Examples
///
/// ```
/// use dmt_common::memimg::MemImage;
/// use dmt_common::ids::Addr;
/// use dmt_common::value::Word;
///
/// let mut m = MemImage::with_words(4);
/// m.store(Addr(8), Word::from_f32(2.5));
/// assert_eq!(m.load(Addr(8)).as_f32(), 2.5);
/// assert_eq!(m.load(Addr(0)), Word::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemImage {
    words: Vec<u32>,
}

impl MemImage {
    /// An empty image (size 0).
    #[must_use]
    pub fn new() -> MemImage {
        MemImage::default()
    }

    /// A zero-filled image holding `n` 32-bit words (`4·n` bytes).
    #[must_use]
    pub fn with_words(n: usize) -> MemImage {
        MemImage { words: vec![0; n] }
    }

    /// Number of words in the image.
    #[must_use]
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Whether the image holds no words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size in bytes.
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.words.len() as u64 * 4
    }

    fn word_index(&self, addr: Addr) -> usize {
        assert!(
            addr.0 % 4 == 0,
            "unaligned word access at {addr} (addresses must be 4-byte aligned)"
        );
        let ix = (addr.0 / 4) as usize;
        assert!(
            ix < self.words.len(),
            "address {addr} out of bounds (image has {} bytes)",
            self.len_bytes()
        );
        ix
    }

    /// Loads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unaligned or out of bounds.
    #[must_use]
    pub fn load(&self, addr: Addr) -> Word {
        Word(self.words[self.word_index(addr)])
    }

    /// Stores `value` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unaligned or out of bounds.
    pub fn store(&mut self, addr: Addr, value: Word) {
        let ix = self.word_index(addr);
        self.words[ix] = value.0;
    }

    /// Fallible load, for simulators that must surface bad addresses as
    /// [`crate::error::Error::Runtime`] instead of panicking.
    pub fn try_load(&self, addr: Addr) -> crate::error::Result<Word> {
        if addr.0 % 4 != 0 || (addr.0 / 4) as usize >= self.words.len() {
            return Err(crate::error::Error::Runtime(format!(
                "bad load address {addr} (image has {} bytes)",
                self.len_bytes()
            )));
        }
        Ok(Word(self.words[(addr.0 / 4) as usize]))
    }

    /// Fallible store; see [`MemImage::try_load`].
    pub fn try_store(&mut self, addr: Addr, value: Word) -> crate::error::Result<()> {
        if addr.0 % 4 != 0 || (addr.0 / 4) as usize >= self.words.len() {
            return Err(crate::error::Error::Runtime(format!(
                "bad store address {addr} (image has {} bytes)",
                self.len_bytes()
            )));
        }
        self.words[(addr.0 / 4) as usize] = value.0;
        Ok(())
    }

    /// Copies a slice of `f32` values into the image starting at `addr`.
    pub fn write_f32_slice(&mut self, addr: Addr, data: &[f32]) {
        for (i, &v) in data.iter().enumerate() {
            self.store(addr.plus(i as u64 * 4), Word::from_f32(v));
        }
    }

    /// Copies a slice of `i32` values into the image starting at `addr`.
    pub fn write_i32_slice(&mut self, addr: Addr, data: &[i32]) {
        for (i, &v) in data.iter().enumerate() {
            self.store(addr.plus(i as u64 * 4), Word::from_i32(v));
        }
    }

    /// Reads `n` consecutive `f32` values starting at `addr`.
    #[must_use]
    pub fn read_f32_slice(&self, addr: Addr, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| self.load(addr.plus(i as u64 * 4)).as_f32())
            .collect()
    }

    /// Reads `n` consecutive `i32` values starting at `addr`.
    #[must_use]
    pub fn read_i32_slice(&self, addr: Addr, n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| self.load(addr.plus(i as u64 * 4)).as_i32())
            .collect()
    }

    /// Resets every word to zero, keeping the size (used for per-block
    /// scratchpad reuse).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

impl fmt::Display for MemImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemImage[{} words]", self.words.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let mut m = MemImage::with_words(8);
        m.store(Addr(4), Word::from_i32(-7));
        assert_eq!(m.load(Addr(4)).as_i32(), -7);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let m = MemImage::with_words(8);
        let _ = m.load(Addr(2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = MemImage::with_words(2);
        let _ = m.load(Addr(8));
    }

    #[test]
    fn try_load_reports_errors() {
        let m = MemImage::with_words(2);
        assert!(m.try_load(Addr(0)).is_ok());
        assert!(m.try_load(Addr(8)).is_err());
        assert!(m.try_load(Addr(1)).is_err());
    }

    #[test]
    fn slice_roundtrips() {
        let mut m = MemImage::with_words(16);
        m.write_f32_slice(Addr(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.read_f32_slice(Addr(0), 3), vec![1.0, 2.0, 3.0]);
        m.write_i32_slice(Addr(32), &[-1, 5]);
        assert_eq!(m.read_i32_slice(Addr(32), 2), vec![-1, 5]);
    }

    #[test]
    fn clear_zeroes_but_keeps_size() {
        let mut m = MemImage::with_words(4);
        m.store(Addr(0), Word(9));
        m.clear();
        assert_eq!(m.len_words(), 4);
        assert_eq!(m.load(Addr(0)), Word::ZERO);
    }
}
