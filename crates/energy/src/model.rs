//! Turning event counts into joules.

use crate::params::EnergyParams;
use dmt_common::stats::{PhaseStats, RunStats};
use std::fmt;

/// The machine family a run executed on (selects static power; dynamic
/// events are whatever the run's counters say).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Von Neumann SIMT SM (Fermi-class).
    FermiSm,
    /// Baseline multithreaded CGRA (shared-memory kernels).
    MtCgra,
    /// CGRA with direct inter-thread communication.
    DmtCgra,
}

impl fmt::Display for ArchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArchKind::FermiSm => "Fermi SM",
            ArchKind::MtCgra => "MT-CGRA",
            ArchKind::DmtCgra => "dMT-CGRA",
        };
        f.write_str(s)
    }
}

/// Energy of one kernel execution, by category.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Functional-unit / lane compute energy (J).
    pub compute_j: f64,
    /// Instruction fetch/decode/schedule (J; zero on CGRAs).
    pub fetch_decode_j: f64,
    /// Register-file traffic (J; zero on CGRAs).
    pub register_file_j: f64,
    /// Token transport: matching stores, NoC hops, elevators, SJUs, LVC
    /// (J; zero on the SM).
    pub token_transport_j: f64,
    /// Shared-memory scratchpad (J).
    pub scratchpad_j: f64,
    /// L1 + L2 accesses (J).
    pub cache_j: f64,
    /// DRAM transactions (J).
    pub dram_j: f64,
    /// Leakage × runtime (J).
    pub static_j: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.compute_j
            + self.fetch_decode_j
            + self.register_file_j
            + self.token_transport_j
            + self.scratchpad_j
            + self.cache_j
            + self.dram_j
            + self.static_j
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total:          {:>10.3} µJ", self.total_j() * 1e6)?;
        writeln!(f, "  compute:      {:>10.3} µJ", self.compute_j * 1e6)?;
        writeln!(f, "  fetch/decode: {:>10.3} µJ", self.fetch_decode_j * 1e6)?;
        writeln!(f, "  register file:{:>10.3} µJ", self.register_file_j * 1e6)?;
        writeln!(
            f,
            "  token transp.:{:>10.3} µJ",
            self.token_transport_j * 1e6
        )?;
        writeln!(f, "  scratchpad:   {:>10.3} µJ", self.scratchpad_j * 1e6)?;
        writeln!(f, "  caches:       {:>10.3} µJ", self.cache_j * 1e6)?;
        writeln!(f, "  dram:         {:>10.3} µJ", self.dram_j * 1e6)?;
        write!(f, "  static:       {:>10.3} µJ", self.static_j * 1e6)
    }
}

/// The energy model: multiply event counts by per-event energies and add
/// leakage × runtime — the GPUWattch methodology (§5.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyModel {
    params: EnergyParams,
}

const PJ: f64 = 1e-12;

impl EnergyModel {
    /// A model with the given constants.
    #[must_use]
    pub fn new(params: EnergyParams) -> EnergyModel {
        EnergyModel { params }
    }

    /// The constants in use.
    #[must_use]
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Evaluates the energy of a run. `core_ghz` converts cycles to
    /// seconds for the leakage term.
    ///
    /// Delegates to [`Self::evaluate_phase`] on the run's totals, so the
    /// whole-run number and the per-phase breakdown go through the same
    /// arithmetic: the totals evaluation is bit-identical to evaluating
    /// the flat counters directly.
    #[must_use]
    pub fn evaluate(&self, arch: ArchKind, stats: &RunStats, core_ghz: f64) -> EnergyReport {
        self.evaluate_phase(arch, &stats.totals(), core_ghz)
    }

    /// Evaluates one phase's (or any counter slice's) energy. Energy is
    /// linear in the counters plus leakage linear in cycles, so the
    /// phase reports sum to the whole-run report (up to floating-point
    /// association).
    #[must_use]
    pub fn evaluate_phase(
        &self,
        arch: ArchKind,
        stats: &PhaseStats,
        core_ghz: f64,
    ) -> EnergyReport {
        let p = &self.params;
        let s = stats;
        let compute = (s.alu_ops as f64).mul_add(
            p.alu_op_pj,
            (s.fpu_ops as f64).mul_add(
                p.fpu_op_pj,
                (s.special_ops as f64)
                    .mul_add(p.special_op_pj, s.control_ops as f64 * p.control_op_pj),
            ),
        ) + lane_compute(s, p);
        let fetch_decode = s.gpu_instructions as f64 * p.fetch_decode_pj;
        let register_file = (s.register_reads as f64).mul_add(
            p.register_read_pj,
            s.register_writes as f64 * p.register_write_pj,
        );
        let token_transport = (s.token_buffer_writes as f64).mul_add(
            p.token_buffer_pj,
            (s.noc_hops as f64).mul_add(
                p.noc_hop_pj,
                (s.elevator_ops as f64).mul_add(
                    p.elevator_op_pj,
                    (s.sju_ops as f64)
                        .mul_add(p.sju_op_pj, (s.lvc_reads + s.lvc_writes) as f64 * p.lvc_pj),
                ),
            ),
        );
        let scratchpad = s.shared_accesses() as f64 * p.scratchpad_pj;
        let cache = ((s.l1_hits + s.l1_misses) as f64)
            .mul_add(p.l1_pj, (s.l2_hits + s.l2_misses) as f64 * p.l2_pj);
        let dram = (s.dram_reads + s.dram_writes) as f64 * p.dram_pj;
        let seconds = s.cycles as f64 / (core_ghz * 1e9);
        let static_w = match arch {
            ArchKind::FermiSm => p.gpu_static_w,
            ArchKind::MtCgra | ArchKind::DmtCgra => p.cgra_static_w,
        } + p.mem_static_w;
        EnergyReport {
            compute_j: compute * PJ,
            fetch_decode_j: fetch_decode * PJ,
            register_file_j: register_file * PJ,
            token_transport_j: token_transport * PJ,
            scratchpad_j: scratchpad * PJ,
            cache_j: cache * PJ,
            dram_j: dram * PJ,
            static_j: static_w * seconds,
        }
    }

    /// The per-phase energy breakdown of a run: one report per
    /// [`RunStats::per_phase`] record. Empty when the record carries no
    /// phase breakdown (hand-assembled stats).
    #[must_use]
    pub fn evaluate_phases(
        &self,
        arch: ArchKind,
        stats: &RunStats,
        core_ghz: f64,
    ) -> Vec<EnergyReport> {
        stats
            .per_phase
            .iter()
            .map(|phase| self.evaluate_phase(arch, phase, core_ghz))
            .collect()
    }
}

/// Per-lane compute on the SM: thread-instructions carry the lane ALU/FPU
/// energy. The lowering counts classes on the warp level; we approximate
/// the lane mix with the average compute energy (the dominant SM costs —
/// fetch/decode and the register file — are counted exactly).
fn lane_compute(stats: &PhaseStats, p: &EnergyParams) -> f64 {
    let avg = (p.alu_op_pj + p.fpu_op_pj) / 2.0;
    stats.gpu_thread_instructions as f64 * avg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_stats() -> RunStats {
        RunStats {
            cycles: 10_000,
            gpu_instructions: 1_000,
            gpu_thread_instructions: 32_000,
            register_reads: 64_000,
            register_writes: 32_000,
            l1_hits: 900,
            l1_misses: 100,
            l2_hits: 80,
            l2_misses: 20,
            dram_reads: 20,
            shared_loads: 2_000,
            shared_stores: 1_000,
            ..RunStats::default()
        }
    }

    fn cgra_stats() -> RunStats {
        RunStats {
            cycles: 2_500,
            alu_ops: 16_000,
            fpu_ops: 8_000,
            control_ops: 4_000,
            elevator_ops: 3_000,
            tokens_routed: 40_000,
            noc_hops: 90_000,
            token_buffer_writes: 40_000,
            l1_hits: 900,
            l1_misses: 100,
            l2_hits: 80,
            l2_misses: 20,
            dram_reads: 20,
            ..RunStats::default()
        }
    }

    #[test]
    fn totals_are_positive_and_sum_of_parts() {
        let m = EnergyModel::default();
        let r = m.evaluate(ArchKind::FermiSm, &gpu_stats(), 1.4);
        assert!(r.total_j() > 0.0);
        let sum = r.compute_j
            + r.fetch_decode_j
            + r.register_file_j
            + r.token_transport_j
            + r.scratchpad_j
            + r.cache_j
            + r.dram_j
            + r.static_j;
        assert!((r.total_j() - sum).abs() < 1e-18);
    }

    #[test]
    fn cgra_run_has_no_von_neumann_overheads() {
        let m = EnergyModel::default();
        let r = m.evaluate(ArchKind::DmtCgra, &cgra_stats(), 1.4);
        assert_eq!(r.fetch_decode_j, 0.0);
        assert_eq!(r.register_file_j, 0.0);
        assert!(r.token_transport_j > 0.0);
    }

    #[test]
    fn gpu_run_has_no_token_transport() {
        let m = EnergyModel::default();
        let r = m.evaluate(ArchKind::FermiSm, &gpu_stats(), 1.4);
        assert_eq!(r.token_transport_j, 0.0);
        assert!(r.fetch_decode_j > 0.0);
        assert!(r.scratchpad_j > 0.0);
    }

    #[test]
    fn faster_run_pays_less_leakage() {
        let m = EnergyModel::default();
        let mut fast = cgra_stats();
        let slow = RunStats {
            cycles: fast.cycles * 4,
            ..fast.clone()
        };
        fast.cycles /= 2;
        let rf = m.evaluate(ArchKind::DmtCgra, &fast, 1.4);
        let rs = m.evaluate(ArchKind::DmtCgra, &slow, 1.4);
        assert!(rs.static_j > rf.static_j * 7.0);
    }

    #[test]
    fn phase_energies_sum_to_the_whole_run() {
        use dmt_common::stats::PhaseStats;
        let m = EnergyModel::default();
        // Split the CGRA counters into two uneven phases.
        let totals = cgra_stats().totals();
        let p0 = PhaseStats {
            cycles: 1_000,
            alu_ops: 10_000,
            fpu_ops: 8_000,
            tokens_routed: 15_000,
            noc_hops: 40_000,
            token_buffer_writes: 15_000,
            l1_hits: 400,
            l1_misses: 70,
            l2_hits: 50,
            l2_misses: 15,
            dram_reads: 15,
            ..PhaseStats::default()
        };
        let p1 = totals.minus(&p0);
        let stats = RunStats::from_phases(vec![p0, p1]);
        assert_eq!(stats.totals(), totals);

        let whole = m.evaluate(ArchKind::DmtCgra, &stats, 1.4);
        let phases = m.evaluate_phases(ArchKind::DmtCgra, &stats, 1.4);
        assert_eq!(phases.len(), 2);
        let sum_total: f64 = phases.iter().map(EnergyReport::total_j).sum();
        assert!(
            (whole.total_j() - sum_total).abs() <= 1e-12 * whole.total_j(),
            "phases {sum_total} vs whole {}",
            whole.total_j()
        );
        let sum_static: f64 = phases.iter().map(|r| r.static_j).sum();
        assert!((whole.static_j - sum_static).abs() <= 1e-12 * whole.static_j);
    }

    #[test]
    fn display_contains_every_category() {
        let m = EnergyModel::default();
        let r = m.evaluate(ArchKind::MtCgra, &cgra_stats(), 1.4);
        let s = r.to_string();
        for needle in ["total", "compute", "dram", "static", "token"] {
            assert!(s.contains(needle), "missing {needle}: {s}");
        }
    }
}
