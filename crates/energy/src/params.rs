//! Per-event energy constants.
//!
//! The paper feeds per-operation energies (obtained from RTL place & route
//! for the new units, and GPUWattch/McPAT for the rest) into an
//! event-count energy model (§5.1). We substitute published 40 nm-class
//! estimates of the same quantities (Horowitz ISSCC'14 compute/SRAM
//! figures; GPUWattch-era GDDR5 and register-file numbers). Absolute
//! joules are not the point — the paper's energy argument rests on the
//! *relative* costs: a multi-ported register file read costs ≫ a token
//! buffer write; instruction fetch/decode is charged per warp-instruction
//! on the von Neumann machine and simply does not exist on the CGRA; DRAM
//! dwarfs everything.

/// Per-event dynamic energies in picojoules plus static power, for all
/// three modelled machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    // ---- Compute (both machine families) ----
    /// 32-bit integer ALU operation.
    pub alu_op_pj: f64,
    /// 32-bit floating-point operation.
    pub fpu_op_pj: f64,
    /// Special-function operation (div/sqrt/exp).
    pub special_op_pj: f64,
    /// Control operation (select/compare/bitwise).
    pub control_op_pj: f64,

    // ---- CGRA token transport ----
    /// Split/join pass-through.
    pub sju_op_pj: f64,
    /// Elevator re-tag (small combinational addition per §4: "negligible
    /// area and power overhead" on top of the token buffer access).
    pub elevator_op_pj: f64,
    /// Token-buffer / matching-store write.
    pub token_buffer_pj: f64,
    /// One NoC router hop for one 32-bit token.
    pub noc_hop_pj: f64,
    /// Live-Value-Cache access.
    pub lvc_pj: f64,

    // ---- von Neumann pipeline ----
    /// Instruction fetch + decode + schedule, per warp-instruction.
    pub fetch_decode_pj: f64,
    /// Register-file operand read (large, multi-ported SRAM).
    pub register_read_pj: f64,
    /// Register-file write.
    pub register_write_pj: f64,

    // ---- Memory system (shared) ----
    /// Shared-memory scratchpad access.
    pub scratchpad_pj: f64,
    /// L1 access (lookup + data array).
    pub l1_pj: f64,
    /// L2 access.
    pub l2_pj: f64,
    /// DRAM line transaction (128 B).
    pub dram_pj: f64,

    // ---- Static power (W) ----
    /// SM core leakage + constant overheads.
    pub gpu_static_w: f64,
    /// CGRA core leakage (no fetch/RF structures, but a large grid).
    pub cgra_static_w: f64,
    /// Memory-system leakage (identical for all machines).
    pub mem_static_w: f64,
}

impl Default for EnergyParams {
    /// 40 nm-class estimates (see module docs).
    fn default() -> EnergyParams {
        EnergyParams {
            alu_op_pj: 1.0,
            fpu_op_pj: 4.0,
            special_op_pj: 9.0,
            control_op_pj: 0.6,
            sju_op_pj: 0.4,
            elevator_op_pj: 0.7,
            token_buffer_pj: 0.9,
            noc_hop_pj: 1.6,
            lvc_pj: 2.2,
            fetch_decode_pj: 65.0,
            register_read_pj: 2.6,
            register_write_pj: 3.1,
            scratchpad_pj: 6.5,
            l1_pj: 13.0,
            l2_pj: 26.0,
            dram_pj: 5200.0,
            gpu_static_w: 2.2,
            cgra_static_w: 1.6,
            mem_static_w: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_cost_ordering_matches_literature() {
        let p = EnergyParams::default();
        // The relations the paper's argument rests on:
        assert!(p.token_buffer_pj < p.register_read_pj, "token < RF read");
        assert!(p.fetch_decode_pj > 10.0 * p.alu_op_pj, "fetch ≫ ALU");
        assert!(p.dram_pj > 100.0 * p.l1_pj, "DRAM ≫ L1");
        assert!(p.scratchpad_pj < p.l1_pj, "scratchpad < L1");
        assert!(p.elevator_op_pj < p.scratchpad_pj, "elevator < scratchpad");
    }
}
