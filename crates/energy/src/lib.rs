//! The energy model: GPUWattch-style event-count accounting (§5.1).
//!
//! "We simply multiply the execution time by the average power consumption
//! for each architecture" — equivalently, per-event dynamic energies times
//! event counts, plus leakage × runtime, which is what GPUWattch computes
//! from its performance monitors. [`EnergyModel`] implements exactly that
//! over the [`dmt_common::stats::RunStats`] counters that the fabric and
//! GPU backends produce.
//!
//! # Examples
//!
//! ```
//! use dmt_energy::{ArchKind, EnergyModel};
//! use dmt_common::stats::RunStats;
//!
//! let model = EnergyModel::default();
//! let stats = RunStats { cycles: 1000, alu_ops: 5000, ..RunStats::default() };
//! let report = model.evaluate(ArchKind::DmtCgra, &stats, 1.4);
//! assert!(report.total_j() > 0.0);
//! ```

pub mod model;
pub mod params;

pub use model::{ArchKind, EnergyModel, EnergyReport};
pub use params::EnergyParams;
