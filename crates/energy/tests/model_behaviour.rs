//! Energy-model behaviour: monotonicity, category attribution and the
//! paper's qualitative energy relations.

use dmt_common::stats::RunStats;
use dmt_energy::{ArchKind, EnergyModel, EnergyParams};

fn base_stats() -> RunStats {
    RunStats {
        cycles: 10_000,
        alu_ops: 10_000,
        fpu_ops: 5_000,
        elevator_ops: 2_000,
        token_buffer_writes: 20_000,
        noc_hops: 50_000,
        l1_hits: 4_000,
        l1_misses: 200,
        l2_hits: 150,
        l2_misses: 50,
        dram_reads: 50,
        ..RunStats::default()
    }
}

#[test]
fn energy_is_monotone_in_every_event_class() {
    let m = EnergyModel::default();
    let base = m.evaluate(ArchKind::DmtCgra, &base_stats(), 1.4).total_j();
    let bump = |f: &dyn Fn(&mut RunStats)| {
        let mut s = base_stats();
        f(&mut s);
        m.evaluate(ArchKind::DmtCgra, &s, 1.4).total_j()
    };
    assert!(bump(&|s| s.alu_ops += 1_000_000) > base);
    assert!(bump(&|s| s.noc_hops += 1_000_000) > base);
    assert!(bump(&|s| s.dram_reads += 10_000) > base);
    assert!(
        bump(&|s| s.cycles += 1_000_000) > base,
        "leakage grows with time"
    );
    assert!(bump(&|s| s.lvc_writes += 1_000_000) > base);
}

#[test]
fn dram_dominates_equal_counts() {
    let m = EnergyModel::default();
    let cache_heavy = RunStats {
        l1_hits: 1_000,
        ..Default::default()
    };
    let dram_heavy = RunStats {
        dram_reads: 1_000,
        ..Default::default()
    };
    let c = m.evaluate(ArchKind::DmtCgra, &cache_heavy, 1.4).total_j();
    let d = m.evaluate(ArchKind::DmtCgra, &dram_heavy, 1.4).total_j();
    assert!(d > 50.0 * c, "a DRAM transaction dwarfs an L1 access");
}

#[test]
fn custom_params_flow_through() {
    let mut p = EnergyParams::default();
    p.noc_hop_pj *= 100.0;
    let custom = EnergyModel::new(p);
    let default = EnergyModel::default();
    let s = base_stats();
    assert!(
        custom
            .evaluate(ArchKind::DmtCgra, &s, 1.4)
            .token_transport_j
            > 10.0
                * default
                    .evaluate(ArchKind::DmtCgra, &s, 1.4)
                    .token_transport_j
    );
}

#[test]
fn static_power_differs_by_machine_family() {
    let m = EnergyModel::default();
    let s = RunStats {
        cycles: 1_000_000,
        ..RunStats::default()
    };
    let gpu = m.evaluate(ArchKind::FermiSm, &s, 1.4).static_j;
    let cgra = m.evaluate(ArchKind::DmtCgra, &s, 1.4).static_j;
    assert!(gpu > cgra, "the SM leaks more (fetch/RF structures)");
    let mt = m.evaluate(ArchKind::MtCgra, &s, 1.4).static_j;
    assert_eq!(mt, cgra, "both CGRAs share the grid");
}
