//! IR-level integration tests: builder → validation → interpretation for
//! every operation class and the failure modes users will actually hit.

use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::{interp, pretty, Kernel, KernelBuilder, LaunchInput};

fn run1(kernel: &Kernel, words: usize) -> MemImage {
    interp::run(
        kernel,
        LaunchInput::new(vec![Word::from_u32(0)], MemImage::with_words(words)),
    )
    .expect("interp runs")
    .memory
}

/// Every arithmetic/compare/select op in one kernel, cross-checked against
/// native Rust semantics for a handful of thread-dependent operands.
#[test]
fn alu_torture_matches_rust_semantics() {
    let n = 16u32;
    let mut kb = KernelBuilder::new("torture", Dim3::linear(n));
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let c3 = kb.const_i(3);
    let c100 = kb.const_i(100);

    let a = kb.sub_i(tid, c3); // tid - 3 (negative for small tids)
    let b = kb.mul_i(a, c100); // scale
    let mn = kb.min_i(a, tid);
    let mx = kb.max_i(a, tid);
    let d = kb.div_i(b, c3);
    let r = kb.rem_i(tid, c3);
    let sh = kb.shl(tid, c3);
    let sr = kb.sra(b, c3);
    let x1 = kb.xor(sh, sr);
    let lt = kb.lt_s(a, tid);
    let sel = kb.select(lt, mn, mx);
    let abs = kb.abs_i(b);
    let s1 = kb.add_i(sel, d);
    let s2 = kb.add_i(s1, r);
    let s3 = kb.add_i(s2, x1);
    let val = kb.add_i(s3, abs);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, val);
    let kernel = kb.finish().unwrap();

    let got = run1(&kernel, n as usize).read_i32_slice(Addr(0), n as usize);
    for t in 0..n as i32 {
        let a = t.wrapping_sub(3);
        let b = a.wrapping_mul(100);
        let mn = a.min(t);
        let mx = a.max(t);
        let d = if 3 == 0 { 0 } else { b.wrapping_div(3) };
        let r = t.wrapping_rem(3);
        let sh = ((t as u32) << 3) as i32;
        let sr = b >> 3;
        let x1 = sh ^ sr;
        let sel = if a < t { mn } else { mx };
        let abs = b.wrapping_abs();
        let want = sel
            .wrapping_add(d)
            .wrapping_add(r)
            .wrapping_add(x1)
            .wrapping_add(abs);
        assert_eq!(got[t as usize], want, "thread {t}");
    }
}

#[test]
fn float_ops_and_conversions() {
    let n = 8u32;
    let mut kb = KernelBuilder::new("fp", Dim3::linear(n));
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let f = kb.i2f(tid);
    let half = kb.const_f(0.5);
    let scaled = kb.mul_f(f, half);
    let neg = kb.neg_f(scaled);
    let abs = kb.abs_f(neg);
    let one = kb.const_f(1.0);
    let sum = kb.add_f(abs, one);
    let root = kb.sqrt_f(sum);
    let back = kb.f2i(root);
    // back = trunc(sqrt(tid*0.5 + 1))
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, back);
    let kernel = kb.finish().unwrap();
    let got = run1(&kernel, n as usize).read_i32_slice(Addr(0), n as usize);
    for t in 0..n {
        let want = ((t as f32 * 0.5) + 1.0).sqrt() as i32;
        assert_eq!(got[t as usize], want, "thread {t}");
    }
}

#[test]
fn eldst_without_source_is_a_runtime_error() {
    // Predicate false for everyone, nobody loads → unresolvable.
    let n = 8u32;
    let mut kb = KernelBuilder::new("bad_eld", Dim3::linear(n));
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let zero = kb.const_i(0);
    let never = kb.lt_s(tid, zero); // always false
    let v = kb.from_thread_or_mem(inp, never, Delta::new(-1), None);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, v);
    let kernel = kb.finish().unwrap();
    let err = interp::run(
        &kernel,
        LaunchInput::new(
            vec![Word::ZERO, Word::from_u32(0)],
            MemImage::with_words(n as usize),
        ),
    )
    .unwrap_err();
    assert!(err.to_string().contains("predicate"), "{err}");
}

#[test]
fn out_of_bounds_address_is_a_runtime_error() {
    let mut kb = KernelBuilder::new("oob", Dim3::linear(4));
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let big = kb.const_i(1 << 20);
    let a = kb.index_addr(out, big, 4);
    kb.store_global(a, tid);
    let kernel = kb.finish().unwrap();
    let err = interp::run(
        &kernel,
        LaunchInput::new(vec![Word::ZERO], MemImage::with_words(4)),
    )
    .unwrap_err();
    assert!(err.to_string().contains("address"), "{err}");
}

#[test]
fn multi_phase_dot_and_dump_render_all_phases() {
    let mut kb = KernelBuilder::new("two_phase", Dim3::linear(8));
    kb.set_shared_words(8);
    let tid = kb.thread_idx(0);
    let z = kb.const_i(0);
    let sa = kb.index_addr(z, tid, 4);
    kb.store_shared(sa, tid);
    kb.barrier();
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let z = kb.const_i(0);
    let sa = kb.index_addr(z, tid, 4);
    let v = kb.load_shared(sa);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, v);
    let kernel = kb.finish().unwrap();

    let text = pretty::dump(&kernel);
    assert!(text.contains("phase 0:") && text.contains("phase 1:"));
    let dot = pretty::to_dot(&kernel);
    assert!(dot.contains("cluster_0") && dot.contains("cluster_1"));
    assert!(dot.contains("wheat"), "memory nodes highlighted");
}

#[test]
fn windowed_elevator_restarts_each_group() {
    // window 4, delta -1: thread 4k gets the constant.
    let n = 16u32;
    let mut kb = KernelBuilder::new("win", Dim3::linear(n));
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let v = kb.from_thread_or_const(tid, Delta::new(-1), Word::from_i32(-9), Some(4));
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, v);
    let kernel = kb.finish().unwrap();
    let got = run1(&kernel, n as usize).read_i32_slice(Addr(0), n as usize);
    for t in 0..n as i32 {
        let want = if t % 4 == 0 { -9 } else { t - 1 };
        assert_eq!(got[t as usize], want, "thread {t}");
    }
}

#[test]
fn delta_stats_weighting_reflects_windows() {
    use dmt_dfg::delta_stats::{comm_sites, fraction_within, DistanceMetric};
    let mut kb = KernelBuilder::new("w", Dim3::linear(64));
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    // Window 8, Δ1: 7 transfers per group × 8 groups = 56 tokens.
    let a = kb.from_thread_or_const(tid, Delta::new(-1), Word::ZERO, Some(8));
    // Full window, Δ20: 44 tokens.
    let b = kb.from_thread_or_const(tid, Delta::new(-20), Word::ZERO, None);
    let s = kb.add_i(a, b);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, s);
    let kernel = kb.finish().unwrap();
    let sites = comm_sites(&kernel);
    let tokens: Vec<u64> = sites.iter().map(|s| s.dynamic_tokens).collect();
    assert!(tokens.contains(&56) && tokens.contains(&44), "{tokens:?}");
    let f = fraction_within(&sites, DistanceMetric::Linear, 16.0);
    assert!((f - 56.0 / 100.0).abs() < 1e-12);
}

#[test]
fn barrier_on_empty_phase_panics() {
    let result = std::panic::catch_unwind(|| {
        let mut kb = KernelBuilder::new("e", Dim3::linear(4));
        kb.barrier();
    });
    assert!(result.is_err());
}
