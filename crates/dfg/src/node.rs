//! Dataflow-graph node kinds and their evaluation semantics.
//!
//! Every node kind maps to a functional-unit class of the CGRA grid (§4,
//! Fig 7): arithmetic to ALUs/FPUs, special functions to SCUs, select /
//! compare / bitwise to control units, memory to LDST units, re-tagging to
//! elevator nodes (converted control units) and eLDST (converted LDST
//! units), and ordering to split/join units. Pure operations share one
//! evaluation function ([`eval_pure`]) used by the reference interpreter,
//! the fabric simulator and the GPU backend, so all backends agree
//! bit-for-bit.

use dmt_common::config::UnitClass;
use dmt_common::geom::Delta;
use dmt_common::value::Word;
use std::fmt;

/// Integer ALU operations (wrapping 32-bit two's-complement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `a + b` (wrapping).
    Add,
    /// `a - b` (wrapping).
    Sub,
    /// `a * b` (wrapping, low 32 bits).
    Mul,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

/// Floating-point operations (IEEE-754 single precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// `a + b`.
    Add,
    /// `a - b`.
    Sub,
    /// `a * b`.
    Mul,
    /// IEEE minimum (NaN-propagating via `f32::min`).
    Min,
    /// IEEE maximum.
    Max,
}

/// Special-function operations, mapped to the grid's SCUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialOp {
    /// `a / b` (f32).
    DivF,
    /// `√a` (unary).
    SqrtF,
    /// `eᵃ` (unary).
    ExpF,
    /// `a / b` (signed integer; division by zero yields 0 like saturating
    /// GPU semantics).
    DivS,
    /// `a mod b` (signed integer remainder; zero divisor yields 0).
    RemS,
}

/// Control-unit operations: comparisons and bitwise logic (§4: "control
/// operations such as select, bitwise operations and comparisons are mapped
/// to control units").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrlOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `b & 31`.
    Shl,
    /// Logical shift right by `b & 31`.
    Shr,
    /// Arithmetic shift right by `b & 31`.
    Sra,
    /// Integer equality (produces 0/1).
    EqI,
    /// Integer inequality.
    NeI,
    /// Signed less-than.
    LtS,
    /// Signed less-or-equal.
    LeS,
    /// Unsigned less-than.
    LtU,
    /// Float less-than.
    LtF,
    /// Float less-or-equal.
    LeF,
}

/// One-input operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Integer negation.
    NegI,
    /// Float negation.
    NegF,
    /// Bitwise NOT.
    Not,
    /// Signed integer → float conversion.
    I2F,
    /// Float → signed integer conversion (truncating).
    F2I,
    /// Integer absolute value.
    AbsI,
    /// Float absolute value.
    AbsF,
}

impl UnaryOp {
    /// The unit class executing this unary operation.
    #[must_use]
    pub fn unit_class(self) -> UnitClass {
        match self {
            UnaryOp::NegI | UnaryOp::Not | UnaryOp::AbsI => UnitClass::Alu,
            UnaryOp::NegF | UnaryOp::I2F | UnaryOp::F2I | UnaryOp::AbsF => UnitClass::Fpu,
        }
    }
}

/// Address spaces visible to memory nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Global device memory, backed by the L1/L2/DRAM hierarchy.
    Global,
    /// Per-block shared-memory scratchpad (baselines only; the dMT
    /// programming model replaces it with direct communication).
    Shared,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Global => f.write_str("global"),
            MemSpace::Shared => f.write_str("shared"),
        }
    }
}

/// Static configuration of an inter-thread communication node: the linear
/// TID shift, the original multi-dimensional delta (kept for Fig 5
/// statistics) and the transmission window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommConfig {
    /// Receiver TID − sender TID, flattened against the block shape. A
    /// `fromThreadOrConst<v, -1, c>` call (receive from `tid-1`) has
    /// `shift = +1`: the elevator re-tags thread `t`'s token to `t+1`.
    pub shift: i64,
    /// The programmer-visible multi-dimensional ΔTID (Fig 5 metric).
    pub delta: Delta,
    /// Transmission window: the block is partitioned into consecutive
    /// groups of this many threads, and communication never crosses a group
    /// boundary (§3.2). Equal to the block size when the call did not bound
    /// the window.
    pub window: u32,
}

impl CommConfig {
    /// The sender TID for receiver `tid`, or `None` when the sender falls
    /// outside the transmission window or the thread block (the receiver
    /// then gets the fallback constant / must load from memory).
    #[must_use]
    pub fn source_of(&self, tid: u32, block_threads: u32) -> Option<u32> {
        let src = i64::from(tid) - self.shift;
        if src < 0 || src >= i64::from(block_threads) {
            return None;
        }
        let src = src as u32;
        if src / self.window == tid / self.window {
            Some(src)
        } else {
            None
        }
    }

    /// The receiver TID for sender `tid`, or `None` when the receiver falls
    /// outside the window or block (the sender's token is then dropped).
    #[must_use]
    pub fn target_of(&self, tid: u32, block_threads: u32) -> Option<u32> {
        let dst = i64::from(tid) + self.shift;
        if dst < 0 || dst >= i64::from(block_threads) {
            return None;
        }
        let dst = dst as u32;
        if dst / self.window == tid / self.window {
            Some(dst)
        } else {
            None
        }
    }
}

/// A dataflow-graph node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeKind {
    /// A compile-time constant, configured into the consumer's input latch.
    Const(Word),
    /// CUDA `threadIdx` component (0 = x, 1 = y, 2 = z), injected with the
    /// thread.
    ThreadIdx(u8),
    /// CUDA `blockIdx.x` (the harness launches 1-D grids).
    BlockIdx,
    /// A scalar kernel parameter (base pointer, problem size…).
    Param(u8),
    /// Two-input integer arithmetic.
    Alu(AluOp),
    /// Two-input float arithmetic.
    Fpu(FpuOp),
    /// Special function (one- or two-input, see [`SpecialOp`]).
    Special(SpecialOp),
    /// Two-input compare/bitwise control operation.
    Ctrl(CtrlOp),
    /// One-input operation.
    Unary(UnaryOp),
    /// Three-input select: `inputs[0] ? inputs[1] : inputs[2]` (control
    /// unit).
    Select,
    /// Memory load: `inputs[0]` = byte address.
    Load(MemSpace),
    /// Memory store: `inputs[0]` = byte address, `inputs[1]` = value.
    /// Produces an ordering token consumed by [`NodeKind::Join`] nodes (or
    /// nothing).
    Store(MemSpace),
    /// **Elevator node** (§4.1): re-tags its input token from thread `t` to
    /// `t + shift`; threads whose sender is outside the window receive the
    /// fallback constant. Implements `fromThreadOrConst`.
    Elevator {
        /// Communication pattern.
        comm: CommConfig,
        /// Constant delivered when the sender TID is invalid.
        fallback: Word,
    },
    /// **Enhanced load/store** (§4.2): when `inputs[1]` (the predicate) is
    /// true, loads `inputs[0]` from memory; otherwise receives the value
    /// forwarded from thread `t − shift`'s output. Every produced output is
    /// re-offered at `t + shift` within the window. Implements
    /// `fromThreadOrMem`.
    ELoad {
        /// Communication pattern.
        comm: CommConfig,
        /// Address space of the underlying load.
        space: MemSpace,
    },
    /// Ordering join: forwards `inputs[0]` once `inputs[1]` (an ordering
    /// token) has also arrived. Mapped to split/join units.
    Join,
    /// Fan-out split: replicates its single input to many consumers when a
    /// producer's fan-out exceeds the crossbar limit. Mapped to split/join
    /// units.
    Split,
}

impl NodeKind {
    /// Number of input ports this node consumes.
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            NodeKind::Const(_)
            | NodeKind::ThreadIdx(_)
            | NodeKind::BlockIdx
            | NodeKind::Param(_) => 0,
            NodeKind::Unary(_)
            | NodeKind::Split
            | NodeKind::Load(_)
            | NodeKind::Elevator { .. } => 1,
            NodeKind::Alu(_) | NodeKind::Fpu(_) | NodeKind::Ctrl(_) => 2,
            NodeKind::Special(op) => match op {
                SpecialOp::SqrtF | SpecialOp::ExpF => 1,
                _ => 2,
            },
            NodeKind::Store(_) | NodeKind::ELoad { .. } | NodeKind::Join => 2,
            NodeKind::Select => 3,
        }
    }

    /// Whether the node is a source (injected, not executed by a unit).
    #[must_use]
    pub fn is_source(&self) -> bool {
        self.arity() == 0
    }

    /// Whether the node produces an output token (stores produce only an
    /// ordering token, which we model as an output consumed by joins).
    #[must_use]
    pub fn has_output(&self) -> bool {
        true
    }

    /// The inter-thread communication configuration, when the node is an
    /// elevator or eLDST.
    #[must_use]
    pub fn comm(&self) -> Option<&CommConfig> {
        match self {
            NodeKind::Elevator { comm, .. } | NodeKind::ELoad { comm, .. } => Some(comm),
            _ => None,
        }
    }

    /// The functional-unit class executing this node, or `None` for sources
    /// (which are injected rather than executed).
    #[must_use]
    pub fn unit_class(&self) -> Option<UnitClass> {
        match self {
            NodeKind::Const(_)
            | NodeKind::ThreadIdx(_)
            | NodeKind::BlockIdx
            | NodeKind::Param(_) => None,
            NodeKind::Alu(_) => Some(UnitClass::Alu),
            NodeKind::Fpu(_) => Some(UnitClass::Fpu),
            NodeKind::Special(_) => Some(UnitClass::Special),
            NodeKind::Ctrl(_) | NodeKind::Select => Some(UnitClass::Control),
            NodeKind::Unary(op) => Some(op.unit_class()),
            NodeKind::Load(_) | NodeKind::Store(_) | NodeKind::ELoad { .. } => {
                Some(UnitClass::LoadStore)
            }
            NodeKind::Elevator { .. } => Some(UnitClass::Control),
            NodeKind::Join | NodeKind::Split => Some(UnitClass::SplitJoin),
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Const(w) => write!(f, "const {w}"),
            NodeKind::ThreadIdx(d) => write!(f, "threadIdx.{}", ["x", "y", "z"][*d as usize]),
            NodeKind::BlockIdx => f.write_str("blockIdx.x"),
            NodeKind::Param(i) => write!(f, "param[{i}]"),
            NodeKind::Alu(op) => write!(f, "alu.{op:?}"),
            NodeKind::Fpu(op) => write!(f, "fpu.{op:?}"),
            NodeKind::Special(op) => write!(f, "scu.{op:?}"),
            NodeKind::Ctrl(op) => write!(f, "cu.{op:?}"),
            NodeKind::Unary(op) => write!(f, "unary.{op:?}"),
            NodeKind::Select => f.write_str("select"),
            NodeKind::Load(s) => write!(f, "load.{s}"),
            NodeKind::Store(s) => write!(f, "store.{s}"),
            NodeKind::Elevator { comm, fallback } => write!(
                f,
                "elevator shift={} win={} fallback={fallback}",
                comm.shift, comm.window
            ),
            NodeKind::ELoad { comm, space } => {
                write!(f, "eldst.{space} shift={} win={}", comm.shift, comm.window)
            }
            NodeKind::Join => f.write_str("join"),
            NodeKind::Split => f.write_str("split"),
        }
    }
}

/// Evaluates a pure (side-effect-free, single-thread) operation.
///
/// Memory, elevator and eLDST nodes are *not* pure and are handled by each
/// engine; passing them here panics.
///
/// # Panics
///
/// Panics if `kind` is a source, memory or communication node, or when
/// `inputs` does not match the node's arity.
#[must_use]
pub fn eval_pure(kind: &NodeKind, inputs: &[Word]) -> Word {
    assert_eq!(
        inputs.len(),
        kind.arity(),
        "operand count mismatch for {kind}"
    );
    match kind {
        NodeKind::Alu(op) => {
            let (a, b) = (inputs[0].as_i32(), inputs[1].as_i32());
            Word::from_i32(match op {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::Mul => a.wrapping_mul(b),
                AluOp::Min => a.min(b),
                AluOp::Max => a.max(b),
            })
        }
        NodeKind::Fpu(op) => {
            let (a, b) = (inputs[0].as_f32(), inputs[1].as_f32());
            Word::from_f32(match op {
                FpuOp::Add => a + b,
                FpuOp::Sub => a - b,
                FpuOp::Mul => a * b,
                FpuOp::Min => a.min(b),
                FpuOp::Max => a.max(b),
            })
        }
        NodeKind::Special(op) => match op {
            SpecialOp::DivF => Word::from_f32(inputs[0].as_f32() / inputs[1].as_f32()),
            SpecialOp::SqrtF => Word::from_f32(inputs[0].as_f32().sqrt()),
            SpecialOp::ExpF => Word::from_f32(inputs[0].as_f32().exp()),
            SpecialOp::DivS => {
                let (a, b) = (inputs[0].as_i32(), inputs[1].as_i32());
                Word::from_i32(if b == 0 { 0 } else { a.wrapping_div(b) })
            }
            SpecialOp::RemS => {
                let (a, b) = (inputs[0].as_i32(), inputs[1].as_i32());
                Word::from_i32(if b == 0 { 0 } else { a.wrapping_rem(b) })
            }
        },
        NodeKind::Ctrl(op) => {
            let (a, b) = (inputs[0], inputs[1]);
            match op {
                CtrlOp::And => Word(a.0 & b.0),
                CtrlOp::Or => Word(a.0 | b.0),
                CtrlOp::Xor => Word(a.0 ^ b.0),
                CtrlOp::Shl => Word(a.0 << (b.0 & 31)),
                CtrlOp::Shr => Word(a.0 >> (b.0 & 31)),
                CtrlOp::Sra => Word::from_i32(a.as_i32() >> (b.0 & 31)),
                CtrlOp::EqI => Word::from_bool(a.0 == b.0),
                CtrlOp::NeI => Word::from_bool(a.0 != b.0),
                CtrlOp::LtS => Word::from_bool(a.as_i32() < b.as_i32()),
                CtrlOp::LeS => Word::from_bool(a.as_i32() <= b.as_i32()),
                CtrlOp::LtU => Word::from_bool(a.0 < b.0),
                CtrlOp::LtF => Word::from_bool(a.as_f32() < b.as_f32()),
                CtrlOp::LeF => Word::from_bool(a.as_f32() <= b.as_f32()),
            }
        }
        NodeKind::Unary(op) => match op {
            UnaryOp::NegI => Word::from_i32(inputs[0].as_i32().wrapping_neg()),
            UnaryOp::NegF => Word::from_f32(-inputs[0].as_f32()),
            UnaryOp::Not => Word(!inputs[0].0),
            UnaryOp::I2F => Word::from_f32(inputs[0].as_i32() as f32),
            UnaryOp::F2I => Word::from_i32(inputs[0].as_f32() as i32),
            UnaryOp::AbsI => Word::from_i32(inputs[0].as_i32().wrapping_abs()),
            UnaryOp::AbsF => Word::from_f32(inputs[0].as_f32().abs()),
        },
        NodeKind::Select => {
            if inputs[0].as_bool() {
                inputs[1]
            } else {
                inputs[2]
            }
        }
        NodeKind::Join => inputs[0],
        NodeKind::Split => inputs[0],
        other => panic!("eval_pure called on non-pure node {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: i32) -> Word {
        Word::from_i32(v)
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(
            eval_pure(&NodeKind::Alu(AluOp::Add), &[w(2), w(3)]).as_i32(),
            5
        );
        assert_eq!(
            eval_pure(&NodeKind::Alu(AluOp::Add), &[w(i32::MAX), w(1)]).as_i32(),
            i32::MIN,
            "wrapping add"
        );
        assert_eq!(
            eval_pure(&NodeKind::Alu(AluOp::Min), &[w(-2), w(3)]).as_i32(),
            -2
        );
        assert_eq!(
            eval_pure(&NodeKind::Alu(AluOp::Max), &[w(-2), w(3)]).as_i32(),
            3
        );
    }

    #[test]
    fn fpu_semantics() {
        let f = |v: f32| Word::from_f32(v);
        assert_eq!(
            eval_pure(&NodeKind::Fpu(FpuOp::Mul), &[f(1.5), f(2.0)]).as_f32(),
            3.0
        );
        assert_eq!(
            eval_pure(&NodeKind::Fpu(FpuOp::Min), &[f(1.5), f(-2.0)]).as_f32(),
            -2.0
        );
    }

    #[test]
    fn special_guards_division_by_zero() {
        assert_eq!(
            eval_pure(&NodeKind::Special(SpecialOp::DivS), &[w(5), w(0)]).as_i32(),
            0
        );
        assert_eq!(
            eval_pure(&NodeKind::Special(SpecialOp::RemS), &[w(5), w(0)]).as_i32(),
            0
        );
        assert_eq!(
            eval_pure(&NodeKind::Special(SpecialOp::SqrtF), &[Word::from_f32(9.0)]).as_f32(),
            3.0
        );
    }

    #[test]
    fn ctrl_comparisons_produce_canonical_bool() {
        assert_eq!(
            eval_pure(&NodeKind::Ctrl(CtrlOp::LtS), &[w(-1), w(0)]),
            Word::TRUE
        );
        assert_eq!(
            eval_pure(&NodeKind::Ctrl(CtrlOp::LtU), &[w(-1), w(0)]),
            Word::ZERO
        );
        assert_eq!(
            eval_pure(&NodeKind::Ctrl(CtrlOp::Sra), &[w(-8), w(1)]).as_i32(),
            -4
        );
    }

    #[test]
    fn select_picks_by_predicate() {
        assert_eq!(
            eval_pure(&NodeKind::Select, &[Word::TRUE, w(1), w(2)]).as_i32(),
            1
        );
        assert_eq!(
            eval_pure(&NodeKind::Select, &[Word::ZERO, w(1), w(2)]).as_i32(),
            2
        );
    }

    #[test]
    fn unit_class_mapping_matches_paper() {
        assert_eq!(NodeKind::Alu(AluOp::Add).unit_class(), Some(UnitClass::Alu));
        assert_eq!(NodeKind::Select.unit_class(), Some(UnitClass::Control));
        assert_eq!(
            NodeKind::Ctrl(CtrlOp::And).unit_class(),
            Some(UnitClass::Control)
        );
        let comm = CommConfig {
            shift: 1,
            delta: Delta::new(-1),
            window: 64,
        };
        assert_eq!(
            NodeKind::Elevator {
                comm,
                fallback: Word::ZERO
            }
            .unit_class(),
            Some(UnitClass::Control),
            "elevator nodes are converted control units"
        );
        assert_eq!(
            NodeKind::ELoad {
                comm,
                space: MemSpace::Global
            }
            .unit_class(),
            Some(UnitClass::LoadStore),
            "eLDST are converted LDST units"
        );
        assert_eq!(NodeKind::Const(Word::ZERO).unit_class(), None);
    }

    #[test]
    fn comm_source_and_target_respect_window() {
        // Window of 4, shift +1: thread 4k receives const; thread 4k+3 sends
        // nothing.
        let c = CommConfig {
            shift: 1,
            delta: Delta::new(-1),
            window: 4,
        };
        assert_eq!(c.source_of(0, 16), None);
        assert_eq!(c.source_of(1, 16), Some(0));
        assert_eq!(c.source_of(4, 16), None, "window boundary");
        assert_eq!(c.target_of(3, 16), None, "last thread in window");
        assert_eq!(c.target_of(2, 16), Some(3));
        assert_eq!(c.target_of(15, 16), None, "block boundary");
    }

    #[test]
    fn comm_negative_shift() {
        // shift -2: thread t receives from t+2 (downward communication).
        let c = CommConfig {
            shift: -2,
            delta: Delta::new(2),
            window: 8,
        };
        assert_eq!(c.source_of(0, 8), Some(2));
        assert_eq!(c.source_of(6, 8), None, "sender 8 outside block");
        assert_eq!(c.target_of(2, 8), Some(0));
        assert_eq!(c.target_of(1, 8), None, "receiver -1 invalid");
    }

    #[test]
    fn arity_table() {
        assert_eq!(NodeKind::Const(Word::ZERO).arity(), 0);
        assert_eq!(NodeKind::Load(MemSpace::Global).arity(), 1);
        assert_eq!(NodeKind::Store(MemSpace::Shared).arity(), 2);
        assert_eq!(NodeKind::Select.arity(), 3);
        assert_eq!(NodeKind::Special(SpecialOp::SqrtF).arity(), 1);
        assert_eq!(NodeKind::Special(SpecialOp::DivF).arity(), 2);
    }

    #[test]
    #[should_panic(expected = "non-pure")]
    fn eval_pure_rejects_memory_nodes() {
        let _ = eval_pure(&NodeKind::Load(MemSpace::Global), &[Word::ZERO]);
    }
}
