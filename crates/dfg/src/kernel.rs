//! Kernels: named, multi-phase dataflow programs plus their launch inputs.

use crate::graph::Dfg;
use dmt_common::geom::Dim3;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use std::fmt;

/// A compiled-from-source kernel: one or more barrier-delimited phases of
/// dataflow graph, plus launch geometry.
///
/// Kernels using the dMT-CGRA programming model (elevator / eLDST nodes)
/// have exactly one phase — the whole point of direct inter-thread
/// communication is that no barrier is ever needed. Shared-memory kernels
/// (the GPGPU / MT-CGRA baselines) typically have a load phase and a
/// compute phase separated by a barrier.
#[derive(Debug, Clone)]
pub struct Kernel {
    name: String,
    block: Dim3,
    grid_blocks: u32,
    param_names: Vec<String>,
    shared_words: u32,
    phases: Vec<Dfg>,
}

impl Kernel {
    /// Assembles a kernel from parts. Used by `KernelBuilder::finish`;
    /// prefer the builder.
    #[must_use]
    pub(crate) fn from_parts(
        name: String,
        block: Dim3,
        grid_blocks: u32,
        param_names: Vec<String>,
        shared_words: u32,
        phases: Vec<Dfg>,
    ) -> Kernel {
        Kernel {
            name,
            block,
            grid_blocks,
            param_names,
            shared_words,
            phases,
        }
    }

    /// Kernel name (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Thread-block shape.
    #[must_use]
    pub fn block(&self) -> Dim3 {
        self.block
    }

    /// Number of thread blocks in the (1-D) launch grid.
    #[must_use]
    pub fn grid_blocks(&self) -> u32 {
        self.grid_blocks
    }

    /// Threads per block.
    #[must_use]
    pub fn threads_per_block(&self) -> u32 {
        self.block.len()
    }

    /// Total threads across the launch.
    #[must_use]
    pub fn total_threads(&self) -> u64 {
        u64::from(self.threads_per_block()) * u64::from(self.grid_blocks)
    }

    /// Declared parameter names, in slot order.
    #[must_use]
    pub fn param_names(&self) -> &[String] {
        &self.param_names
    }

    /// Scratchpad words allocated per block (zero for dMT kernels).
    #[must_use]
    pub fn shared_words(&self) -> u32 {
        self.shared_words
    }

    /// The barrier-delimited phases.
    #[must_use]
    pub fn phases(&self) -> &[Dfg] {
        &self.phases
    }

    /// Whether any phase contains inter-thread communication nodes
    /// (elevator / eLDST) — i.e. whether this kernel needs the *dMT*-CGRA
    /// extensions rather than the baseline MT-CGRA.
    #[must_use]
    pub fn uses_inter_thread_comm(&self) -> bool {
        self.phases
            .iter()
            .any(|p| p.node_ids().any(|id| p.kind(id).comm().is_some()))
    }

    /// Whether any phase touches the shared-memory scratchpad.
    #[must_use]
    pub fn uses_shared_memory(&self) -> bool {
        use crate::node::{MemSpace, NodeKind};
        self.phases.iter().any(|p| {
            p.node_ids().any(|id| {
                matches!(
                    p.kind(id),
                    NodeKind::Load(MemSpace::Shared) | NodeKind::Store(MemSpace::Shared)
                )
            })
        })
    }

    /// Total node count across phases.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.phases.iter().map(Dfg::len).sum()
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel {} <<<{}, {}>>> ({} phases, {} nodes)",
            self.name,
            self.grid_blocks,
            self.block,
            self.phases.len(),
            self.node_count()
        )
    }
}

/// Architectural inputs to one kernel launch: scalar parameters and the
/// initial global-memory image. The backends consume this and return the
/// final memory image.
#[derive(Debug, Clone, Default)]
pub struct LaunchInput {
    /// Scalar parameters in declaration order (pointers are byte
    /// addresses).
    pub params: Vec<Word>,
    /// Initial global memory.
    pub memory: MemImage,
}

impl LaunchInput {
    /// Creates a launch input.
    #[must_use]
    pub fn new(params: Vec<Word>, memory: MemImage) -> LaunchInput {
        LaunchInput { params, memory }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use dmt_common::geom::Delta;

    #[test]
    fn kernel_accessors() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(64));
        kb.set_grid_blocks(2);
        let p = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(p, tid, 4);
        kb.store_global(a, tid);
        let k = kb.finish().unwrap();
        assert_eq!(k.name(), "t");
        assert_eq!(k.threads_per_block(), 64);
        assert_eq!(k.total_threads(), 128);
        assert_eq!(k.param_names(), ["out"]);
        assert!(!k.uses_inter_thread_comm());
        assert!(!k.uses_shared_memory());
    }

    #[test]
    fn comm_detection() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(64));
        let p = kb.param("out");
        let tid = kb.thread_idx(0);
        let v = kb.from_thread_or_const(tid, Delta::new(-1), 0i32.into(), None);
        let a = kb.index_addr(p, tid, 4);
        kb.store_global(a, v);
        let k = kb.finish().unwrap();
        assert!(k.uses_inter_thread_comm());
    }
}
