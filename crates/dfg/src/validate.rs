//! Kernel validation: the semantic checks run by `KernelBuilder::finish`.

use crate::kernel::Kernel;
use crate::node::{MemSpace, NodeKind};
use dmt_common::{Error, Result};

/// Validates a kernel:
///
/// * at least one phase, and no phase is empty;
/// * every input port of every node is wired;
/// * no combinational cycles (cycles must pass through an elevator);
/// * parameter slots are within the declared parameter list;
/// * communication windows fit the block and exceed the |shift| (otherwise
///   no thread ever communicates — certainly a bug);
/// * shared-memory accesses require a scratchpad allocation.
///
/// # Errors
///
/// Returns [`Error::Validate`] describing the first violation found.
pub fn validate(kernel: &Kernel) -> Result<()> {
    if kernel.phases().is_empty() {
        return Err(Error::Validate("kernel has no phases".into()));
    }
    let block_threads = kernel.threads_per_block();
    for (pi, phase) in kernel.phases().iter().enumerate() {
        if phase.is_empty() {
            return Err(Error::Validate(format!("phase {pi} is empty")));
        }
        for id in phase.node_ids() {
            let kind = phase.kind(id);
            for (port, src) in phase.inputs(id).iter().enumerate() {
                if src.is_none() {
                    return Err(Error::Validate(format!(
                        "phase {pi}: port {port} of {id} ({kind}) is unwired"
                    )));
                }
            }
            if let NodeKind::Param(slot) = kind {
                if usize::from(*slot) >= kernel.param_names().len() {
                    return Err(Error::Validate(format!(
                        "phase {pi}: {id} references parameter slot {slot} but only {} are declared",
                        kernel.param_names().len()
                    )));
                }
            }
            if let Some(comm) = kind.comm() {
                if comm.window == 0 || comm.window > block_threads {
                    return Err(Error::Validate(format!(
                        "phase {pi}: {id} window {} out of range 1..={block_threads}",
                        comm.window
                    )));
                }
                if comm.shift == 0 {
                    return Err(Error::Validate(format!(
                        "phase {pi}: {id} has zero inter-thread shift"
                    )));
                }
                if comm.shift.unsigned_abs() >= u64::from(comm.window) {
                    return Err(Error::Validate(format!(
                        "phase {pi}: {id} shift {} is >= window {}; no thread would ever \
                         communicate",
                        comm.shift, comm.window
                    )));
                }
            }
            if matches!(
                kind,
                NodeKind::Load(MemSpace::Shared) | NodeKind::Store(MemSpace::Shared)
            ) && kernel.shared_words() == 0
            {
                return Err(Error::Validate(format!(
                    "phase {pi}: {id} accesses shared memory but the kernel allocates none \
                     (call set_shared_words)"
                )));
            }
        }
        phase.topo_order()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::graph::Dfg;
    use crate::node::{AluOp, NodeKind};
    use dmt_common::geom::{Delta, Dim3};
    use dmt_common::ids::PortIx;
    use dmt_common::value::Word;

    #[test]
    fn unwired_port_rejected() {
        let mut g = Dfg::new();
        let c = g.add_node(NodeKind::Const(Word::ZERO));
        let add = g.add_node(NodeKind::Alu(AluOp::Add));
        g.connect(c, add, PortIx(0)).unwrap();
        let k = Kernel::from_parts("t".into(), Dim3::linear(4), 1, vec![], 0, vec![g]);
        let err = validate(&k).unwrap_err();
        assert!(err.to_string().contains("unwired"), "{err}");
    }

    #[test]
    fn shared_access_without_allocation_rejected() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(8));
        let t = kb.thread_idx(0);
        let four = kb.const_i(4);
        let a = kb.mul_i(t, four);
        kb.store_shared(a, t);
        let err = kb.finish().unwrap_err();
        assert!(err.to_string().contains("shared memory"), "{err}");
    }

    #[test]
    fn shift_ge_window_rejected() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(64));
        let t = kb.thread_idx(0);
        let v = kb.from_thread_or_const(t, Delta::new(-16), Word::ZERO, Some(16));
        let p = kb.param("out");
        kb.store_global(p, v);
        let err = kb.finish().unwrap_err();
        assert!(err.to_string().contains("window"), "{err}");
    }

    #[test]
    fn valid_kernel_passes() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(64));
        let t = kb.thread_idx(0);
        let p = kb.param("out");
        let a = kb.index_addr(p, t, 4);
        kb.store_global(a, t);
        assert!(kb.finish().is_ok());
    }
}
