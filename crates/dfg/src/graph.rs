//! The dataflow-graph container.
//!
//! A [`Dfg`] is one barrier-delimited phase of a kernel: a set of nodes with
//! ordered input ports and a consumer adjacency. Temporal (inter-thread)
//! semantics live in the node kinds; structurally an elevator's input edge
//! is the only edge allowed to close a cycle (the cycle is broken in time,
//! thread *t* feeding thread *t+Δ*).

use crate::node::NodeKind;
use dmt_common::ids::{NodeId, PortIx};
use dmt_common::{Error, Result};

/// A single-phase dataflow graph.
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    kinds: Vec<NodeKind>,
    /// `inputs[n][p]` = producer of port `p` of node `n` (None = unwired).
    inputs: Vec<Vec<Option<NodeId>>>,
    /// `consumers[n]` = every (consumer, port) fed by node `n`'s output.
    consumers: Vec<Vec<(NodeId, PortIx)>>,
}

impl Dfg {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Dfg {
        Dfg::default()
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        let arity = kind.arity();
        self.kinds.push(kind);
        self.inputs.push(vec![None; arity]);
        self.consumers.push(Vec::new());
        id
    }

    /// Wires `from`'s output into port `port` of `to`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::GraphBuild`] when an id is out of range, the port
    /// exceeds the consumer's arity, or the port is already wired.
    pub fn connect(&mut self, from: NodeId, to: NodeId, port: PortIx) -> Result<()> {
        let n = self.kinds.len();
        if from.index() >= n || to.index() >= n {
            return Err(Error::GraphBuild(format!(
                "connect({from}, {to}): node id out of range (graph has {n} nodes)"
            )));
        }
        let slots = &mut self.inputs[to.index()];
        let p = port.0 as usize;
        if p >= slots.len() {
            return Err(Error::GraphBuild(format!(
                "connect({from}, {to}): port {port} exceeds arity {} of {}",
                slots.len(),
                self.kinds[to.index()]
            )));
        }
        if slots[p].is_some() {
            return Err(Error::GraphBuild(format!(
                "connect({from}, {to}): port {port} already wired"
            )));
        }
        slots[p] = Some(from);
        self.consumers[from.index()].push((to, port));
        Ok(())
    }

    /// The kind of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.kinds[id.index()]
    }

    /// The producers wired into `id`'s ports, in port order.
    #[must_use]
    pub fn inputs(&self, id: NodeId) -> &[Option<NodeId>] {
        &self.inputs[id.index()]
    }

    /// Every (consumer, port) fed by `id`'s output.
    #[must_use]
    pub fn consumers(&self, id: NodeId) -> &[(NodeId, PortIx)] {
        &self.consumers[id.index()]
    }

    /// Fan-out of `id` (number of consumer ports fed).
    #[must_use]
    pub fn fanout(&self, id: NodeId) -> usize {
        self.consumers[id.index()].len()
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// Structural edges of `id` for ordering purposes: the node's input
    /// producers, *excluding* elevator inputs (those are temporal, carrying
    /// values between threads, and may legally close a cycle).
    fn ordering_inputs(&self, id: NodeId) -> &[Option<NodeId>] {
        if matches!(self.kinds[id.index()], NodeKind::Elevator { .. }) {
            &[]
        } else {
            &self.inputs[id.index()]
        }
    }

    /// A topological order of the graph treating elevator inputs as
    /// temporal (non-ordering) edges.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Validate`] if a combinational cycle exists (a cycle
    /// not passing through any elevator node).
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let n = self.kinds.len();
        let mut indegree = vec![0usize; n];
        for id in self.node_ids() {
            for src in self.ordering_inputs(id).iter().flatten() {
                let _ = src;
                indegree[id.index()] += 1;
            }
        }
        let mut queue: Vec<NodeId> = self
            .node_ids()
            .filter(|id| indegree[id.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &(consumer, _) in self.consumers(id) {
                // The edge only orders if the consumer counts it.
                if self.ordering_inputs(consumer).contains(&Some(id)) {
                    indegree[consumer.index()] -= 1;
                    if indegree[consumer.index()] == 0
                        && !order.contains(&consumer)
                        && !queue[head..].contains(&consumer)
                    {
                        queue.push(consumer);
                    }
                }
            }
        }
        if order.len() != n {
            let stuck: Vec<String> = self
                .node_ids()
                .filter(|id| !order.contains(id))
                .map(|id| format!("{id}:{}", self.kind(id)))
                .collect();
            return Err(Error::Validate(format!(
                "combinational cycle through nodes [{}]",
                stuck.join(", ")
            )));
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{AluOp, CommConfig, NodeKind};
    use dmt_common::geom::Delta;
    use dmt_common::value::Word;

    fn add_const(g: &mut Dfg, v: i32) -> NodeId {
        g.add_node(NodeKind::Const(Word::from_i32(v)))
    }

    #[test]
    fn connect_and_query() {
        let mut g = Dfg::new();
        let a = add_const(&mut g, 1);
        let b = add_const(&mut g, 2);
        let s = g.add_node(NodeKind::Alu(AluOp::Add));
        g.connect(a, s, PortIx(0)).unwrap();
        g.connect(b, s, PortIx(1)).unwrap();
        assert_eq!(g.inputs(s), &[Some(a), Some(b)]);
        assert_eq!(g.consumers(a), &[(s, PortIx(0))]);
        assert_eq!(g.fanout(a), 1);
    }

    #[test]
    fn double_wire_rejected() {
        let mut g = Dfg::new();
        let a = add_const(&mut g, 1);
        let s = g.add_node(NodeKind::Alu(AluOp::Add));
        g.connect(a, s, PortIx(0)).unwrap();
        let err = g.connect(a, s, PortIx(0)).unwrap_err();
        assert!(err.to_string().contains("already wired"));
    }

    #[test]
    fn port_out_of_range_rejected() {
        let mut g = Dfg::new();
        let a = add_const(&mut g, 1);
        let s = g.add_node(NodeKind::Alu(AluOp::Add));
        assert!(g.connect(a, s, PortIx(2)).is_err());
    }

    #[test]
    fn topo_order_linear_chain() {
        let mut g = Dfg::new();
        let a = add_const(&mut g, 1);
        let b = add_const(&mut g, 2);
        let s = g.add_node(NodeKind::Alu(AluOp::Add));
        g.connect(a, s, PortIx(0)).unwrap();
        g.connect(b, s, PortIx(1)).unwrap();
        let order = g.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(s));
        assert!(pos(b) < pos(s));
    }

    #[test]
    fn elevator_back_edge_is_not_a_cycle() {
        // Prefix-sum shape: add -> elevator -> add (temporal cycle).
        let mut g = Dfg::new();
        let x = add_const(&mut g, 1);
        let add = g.add_node(NodeKind::Alu(AluOp::Add));
        let elev = g.add_node(NodeKind::Elevator {
            comm: CommConfig {
                shift: 1,
                delta: Delta::new(-1),
                window: 16,
            },
            fallback: Word::ZERO,
        });
        g.connect(x, add, PortIx(0)).unwrap();
        g.connect(add, elev, PortIx(0)).unwrap();
        g.connect(elev, add, PortIx(1)).unwrap();
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn true_combinational_cycle_detected() {
        let mut g = Dfg::new();
        let a = g.add_node(NodeKind::Alu(AluOp::Add));
        let b = g.add_node(NodeKind::Alu(AluOp::Add));
        let c = add_const(&mut g, 0);
        g.connect(a, b, PortIx(0)).unwrap();
        g.connect(b, a, PortIx(0)).unwrap();
        g.connect(c, a, PortIx(1)).unwrap();
        g.connect(c, b, PortIx(1)).unwrap();
        let err = g.topo_order().unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }
}
