//! The functional reference interpreter: the correctness oracle.
//!
//! Executes a [`Kernel`] with pure dataflow semantics — no timing, no
//! resource limits — by pushing value tokens through each phase's graph for
//! every thread. Elevator and eLDST nodes implement exactly the semantics
//! of the paper's Fig 4/8/9 pseudo-code (windowed re-tagging, fallback
//! constants, memory-value forwarding). Both cycle-accurate backends
//! (`dmt-fabric`, `dmt-gpu`) must produce memory images identical to this
//! interpreter's.

use crate::graph::Dfg;
use crate::kernel::{Kernel, LaunchInput};
use crate::node::{eval_pure, MemSpace, NodeKind};
use dmt_common::ids::{Addr, NodeId};
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_common::{Error, Result};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Event counts gathered by the interpreter. These are *architectural*
/// counts (loads issued, values forwarded); they let tests check the
/// paper's memory-traffic claims (e.g. matmul loads drop from `N·K·M` to
/// `N·M`) without running the timing simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterpStats {
    /// Global-memory loads actually issued.
    pub global_loads: u64,
    /// Global-memory stores issued.
    pub global_stores: u64,
    /// Scratchpad loads.
    pub shared_loads: u64,
    /// Scratchpad stores.
    pub shared_stores: u64,
    /// Loads avoided because an eLDST forwarded the value from another
    /// thread.
    pub eldst_forwards: u64,
    /// Tokens re-tagged by elevator nodes (inter-thread value transfers).
    pub elevator_transfers: u64,
    /// Elevator fallback constants injected.
    pub elevator_consts: u64,
}

/// The interpreter's result: final global memory plus event counts.
#[derive(Debug, Clone)]
pub struct InterpOutcome {
    /// Final global-memory image.
    pub memory: MemImage,
    /// Architectural event counts.
    pub stats: InterpStats,
}

/// Runs `kernel` to completion on `input`.
///
/// # Errors
///
/// Returns [`Error::Runtime`] on bad addresses, conflicting same-phase
/// stores to one address, or an eLDST thread with a false predicate and no
/// in-window source; [`Error::Deadlock`] when the dataflow graph cannot
/// make progress for some thread (an ill-formed communication pattern).
pub fn run(kernel: &Kernel, input: LaunchInput) -> Result<InterpOutcome> {
    run_impl(kernel, &input.params, input.memory)
}

/// [`run`] over borrowed inputs: the oracle entry point for differential
/// tests, which pit a timing backend against the interpreter on the *same*
/// launch. The backend consumes the `LaunchInput`; the oracle only needs
/// to read it, so borrowing here halves the per-check clones (the one
/// internal memory copy below is inherent — the interpreter mutates it).
///
/// # Errors
///
/// As [`run`].
pub fn run_ref(kernel: &Kernel, params: &[Word], memory: &MemImage) -> Result<InterpOutcome> {
    run_impl(kernel, params, memory.clone())
}

fn run_impl(kernel: &Kernel, params: &[Word], mut global: MemImage) -> Result<InterpOutcome> {
    let mut stats = InterpStats::default();
    let nparams = kernel.param_names().len();
    if params.len() != nparams {
        return Err(Error::Runtime(format!(
            "kernel {} expects {nparams} parameters, got {}",
            kernel.name(),
            params.len()
        )));
    }
    for block in 0..kernel.grid_blocks() {
        let mut shared = MemImage::with_words(kernel.shared_words() as usize);
        for phase in kernel.phases() {
            let mut exec = PhaseExec::new(kernel, phase, block, params);
            exec.run(&mut global, &mut shared, &mut stats)?;
        }
    }
    Ok(InterpOutcome {
        memory: global,
        stats,
    })
}

/// Per-(node, thread) execution state for one phase of one block.
struct PhaseExec<'k> {
    phase: &'k Dfg,
    block: u32,
    block_dims: dmt_common::geom::Dim3,
    params: &'k [Word],
    threads: u32,
    /// `out[n][t]`: the output token of node `n` for thread `t`.
    out: Vec<Vec<Option<Word>>>,
    /// `got[n][t]`: number of input operands received.
    got: Vec<Vec<u8>>,
    /// `inp[n][t]`: received operand values, port-ordered.
    inp: Vec<Vec<[Option<Word>; 3]>>,
    /// Produce queue: (node, tid, value).
    queue: VecDeque<(NodeId, u32, Word)>,
    /// Store-conflict detection: (space, addr) → writing tid.
    written: HashMap<(u8, u64), u32>,
}

impl<'k> PhaseExec<'k> {
    fn new(kernel: &'k Kernel, phase: &'k Dfg, block: u32, params: &'k [Word]) -> PhaseExec<'k> {
        let n = phase.len();
        let threads = kernel.threads_per_block();
        PhaseExec {
            phase,
            block,
            block_dims: kernel.block(),
            params,
            threads,
            out: vec![vec![None; threads as usize]; n],
            got: vec![vec![0; threads as usize]; n],
            inp: vec![vec![[None; 3]; threads as usize]; n],
            queue: VecDeque::new(),
            written: HashMap::new(),
        }
    }

    fn run(
        &mut self,
        global: &mut MemImage,
        shared: &mut MemImage,
        stats: &mut InterpStats,
    ) -> Result<()> {
        self.seed(stats);
        while let Some((node, tid, value)) = self.queue.pop_front() {
            self.produce(node, tid, value, global, shared, stats)?;
        }
        self.check_complete()
    }

    /// Seeds source nodes for every thread, plus elevator fallback tokens
    /// for threads whose sender is outside the window/block.
    fn seed(&mut self, stats: &mut InterpStats) {
        for node in self.phase.node_ids() {
            match *self.phase.kind(node) {
                NodeKind::Const(w) => {
                    for t in 0..self.threads {
                        self.queue.push_back((node, t, w));
                    }
                }
                NodeKind::ThreadIdx(dim) => {
                    for t in 0..self.threads {
                        let coord = self.dims().coord(dmt_common::ids::ThreadId(t), dim);
                        self.queue.push_back((node, t, Word::from_u32(coord)));
                    }
                }
                NodeKind::BlockIdx => {
                    for t in 0..self.threads {
                        self.queue.push_back((node, t, Word::from_u32(self.block)));
                    }
                }
                NodeKind::Param(slot) => {
                    let w = self.params[usize::from(slot)];
                    for t in 0..self.threads {
                        self.queue.push_back((node, t, w));
                    }
                }
                NodeKind::Elevator { comm, fallback } => {
                    for t in 0..self.threads {
                        if comm.source_of(t, self.threads).is_none() {
                            stats.elevator_consts += 1;
                            self.queue.push_back((node, t, fallback));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn dims(&self) -> dmt_common::geom::Dim3 {
        self.block_dims
    }

    /// Sets node output for a thread and delivers it to consumers.
    fn produce(
        &mut self,
        node: NodeId,
        tid: u32,
        value: Word,
        global: &mut MemImage,
        shared: &mut MemImage,
        stats: &mut InterpStats,
    ) -> Result<()> {
        let slot = &mut self.out[node.index()][tid as usize];
        if slot.is_some() {
            return Err(Error::Runtime(format!(
                "node {node} produced twice for thread {tid}"
            )));
        }
        *slot = Some(value);

        // eLDST forward-resume: a waiting downstream thread (predicate
        // false, inputs complete) can now consume this output.
        if let NodeKind::ELoad { comm, .. } = self.phase.kind(node) {
            if let Some(dst) = comm.target_of(tid, self.threads) {
                let d = dst as usize;
                if self.out[node.index()][d].is_none()
                    && self.got[node.index()][d] == 2
                    && !self.inp[node.index()][d][1]
                        .expect("inputs complete")
                        .as_bool()
                {
                    stats.eldst_forwards += 1;
                    self.queue.push_back((node, dst, value));
                }
            }
        }

        for &(consumer, port) in self.phase.consumers(node) {
            self.deliver(consumer, tid, port.0 as usize, value, global, shared, stats)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        node: NodeId,
        tid: u32,
        port: usize,
        value: Word,
        global: &mut MemImage,
        shared: &mut MemImage,
        stats: &mut InterpStats,
    ) -> Result<()> {
        let n = node.index();
        let t = tid as usize;
        debug_assert!(self.inp[n][t][port].is_none(), "duplicate operand");
        self.inp[n][t][port] = Some(value);
        self.got[n][t] += 1;
        let kind = self.phase.kind(node);
        if usize::from(self.got[n][t]) < kind.arity() {
            return Ok(());
        }
        let ops: Vec<Word> = (0..kind.arity())
            .map(|p| self.inp[n][t][p].expect("all operands received"))
            .collect();
        self.execute(node, tid, &ops, global, shared, stats)
    }

    fn execute(
        &mut self,
        node: NodeId,
        tid: u32,
        ops: &[Word],
        global: &mut MemImage,
        shared: &mut MemImage,
        stats: &mut InterpStats,
    ) -> Result<()> {
        match *self.phase.kind(node) {
            NodeKind::Load(space) => {
                let addr = Addr(u64::from(ops[0].as_u32()));
                let v = match space {
                    MemSpace::Global => {
                        stats.global_loads += 1;
                        global.try_load(addr)?
                    }
                    MemSpace::Shared => {
                        stats.shared_loads += 1;
                        shared.try_load(addr)?
                    }
                };
                self.queue.push_back((node, tid, v));
            }
            NodeKind::Store(space) => {
                let addr = Addr(u64::from(ops[0].as_u32()));
                let space_id = match space {
                    MemSpace::Global => 0u8,
                    MemSpace::Shared => 1u8,
                };
                match self.written.entry((space_id, addr.0)) {
                    Entry::Occupied(prev) => {
                        return Err(Error::Runtime(format!(
                            "store conflict: threads {} and {tid} both write {space} {addr} \
                             in the same phase",
                            prev.get()
                        )));
                    }
                    Entry::Vacant(e) => {
                        e.insert(tid);
                    }
                }
                match space {
                    MemSpace::Global => {
                        stats.global_stores += 1;
                        global.try_store(addr, ops[1])?;
                    }
                    MemSpace::Shared => {
                        stats.shared_stores += 1;
                        shared.try_store(addr, ops[1])?;
                    }
                }
                // The ordering token.
                self.queue.push_back((node, tid, Word::ZERO));
            }
            NodeKind::Elevator { comm, .. } => {
                // Input token from thread `tid` becomes this node's output
                // for thread `tid + shift` (if in window); otherwise it is
                // dropped at the window edge.
                if let Some(dst) = comm.target_of(tid, self.threads) {
                    stats.elevator_transfers += 1;
                    self.queue.push_back((node, dst, ops[0]));
                }
            }
            NodeKind::ELoad { comm, space } => {
                let enable = ops[1].as_bool();
                if enable {
                    let addr = Addr(u64::from(ops[0].as_u32()));
                    let v = match space {
                        MemSpace::Global => {
                            stats.global_loads += 1;
                            global.try_load(addr)?
                        }
                        MemSpace::Shared => {
                            stats.shared_loads += 1;
                            shared.try_load(addr)?
                        }
                    };
                    self.queue.push_back((node, tid, v));
                } else {
                    let src = comm.source_of(tid, self.threads).ok_or_else(|| {
                        Error::Runtime(format!(
                            "eLDST {node}: thread {tid} has a false predicate but no \
                             in-window source thread"
                        ))
                    })?;
                    if let Some(v) = self.out[node.index()][src as usize] {
                        stats.eldst_forwards += 1;
                        self.queue.push_back((node, tid, v));
                    }
                    // Otherwise: wait; resumed by `produce` on the source.
                }
            }
            ref pure => {
                let v = eval_pure(pure, ops);
                self.queue.push_back((node, tid, v));
            }
        }
        Ok(())
    }

    fn check_complete(&self) -> Result<()> {
        for node in self.phase.node_ids() {
            for t in 0..self.threads as usize {
                if self.out[node.index()][t].is_none() {
                    return Err(Error::Deadlock {
                        cycle: 0,
                        detail: format!(
                            "node {node} ({}) never produced a value for thread {t}",
                            self.phase.kind(node)
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use dmt_common::geom::{Delta, Dim3};

    /// result[tid] = in[tid] + (tid > 0 ? in[tid-1] : 0)
    fn pairwise_kernel(n: u32) -> Kernel {
        let mut kb = KernelBuilder::new("pairwise", Dim3::linear(n));
        let input = kb.param("in");
        let output = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(input, tid, 4);
        let x = kb.load_global(a);
        let prev = kb.from_thread_or_const(x, Delta::new(-1), Word::from_i32(0), None);
        let sum = kb.add_i(x, prev);
        let oa = kb.index_addr(output, tid, 4);
        kb.store_global(oa, sum);
        kb.finish().unwrap()
    }

    #[test]
    fn pairwise_sums_via_elevator() {
        let n = 8;
        let k = pairwise_kernel(n);
        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_i32_slice(Addr(0), &[1, 2, 3, 4, 5, 6, 7, 8]);
        let out_base = 4 * n as u64;
        let input = LaunchInput::new(
            vec![Word::from_u32(0), Word::from_u32(out_base as u32)],
            mem,
        );
        let got = run(&k, input).unwrap();
        let out = got.memory.read_i32_slice(Addr(out_base), n as usize);
        assert_eq!(out, vec![1, 3, 5, 7, 9, 11, 13, 15]);
        assert_eq!(got.stats.elevator_consts, 1, "thread 0 gets the constant");
        assert_eq!(got.stats.elevator_transfers, (n - 1) as u64);
    }

    #[test]
    fn param_count_mismatch_is_runtime_error() {
        let k = pairwise_kernel(4);
        let input = LaunchInput::new(vec![Word::ZERO], MemImage::with_words(8));
        assert!(run(&k, input).is_err());
    }
}
