//! Kernel dataflow-graph IR and the dMT-CGRA programming model.
//!
//! This crate is the front half of the reproduction of Voitsechov & Etsion's
//! dMT-CGRA (MICRO 2018): the dataflow-graph intermediate representation
//! that SIMT kernels compile to, together with the paper's Table 1
//! programming-model extensions —
//! [`from_thread_or_const`](builder::KernelBuilder::from_thread_or_const),
//! [`tag_value`](builder::KernelBuilder::tag_value) and
//! [`from_thread_or_mem`](builder::KernelBuilder::from_thread_or_mem).
//!
//! The crate also hosts the [functional reference interpreter](interp) used
//! as the correctness oracle by every timing backend, and the
//! [ΔTID statistics](delta_stats) behind the paper's Fig 5.
//!
//! # Examples
//!
//! Build and functionally execute a neighbour-sum kernel:
//!
//! ```
//! use dmt_dfg::builder::KernelBuilder;
//! use dmt_dfg::kernel::LaunchInput;
//! use dmt_common::geom::{Delta, Dim3};
//! use dmt_common::memimg::MemImage;
//! use dmt_common::ids::Addr;
//! use dmt_common::value::Word;
//!
//! let mut kb = KernelBuilder::new("neighbour_sum", Dim3::linear(4));
//! let inp = kb.param("in");
//! let out = kb.param("out");
//! let tid = kb.thread_idx(0);
//! let addr = kb.index_addr(inp, tid, 4);
//! let mem_val = kb.load_global(addr);
//! kb.tag_value(mem_val);
//! // Receive the neighbour's loaded value instead of re-loading it:
//! let prev = kb.from_thread_or_const(mem_val, Delta::new(-1), Word::from_i32(0), None);
//! let sum = kb.add_i(prev, mem_val);
//! let oaddr = kb.index_addr(out, tid, 4);
//! kb.store_global(oaddr, sum);
//! let kernel = kb.finish()?;
//!
//! let mut mem = MemImage::with_words(8);
//! mem.write_i32_slice(Addr(0), &[1, 2, 3, 4]);
//! let run = dmt_dfg::interp::run(
//!     &kernel,
//!     LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(16)], mem),
//! )?;
//! // Thread t computes in[t-1] + in[t] (thread 0 uses the constant 0).
//! assert_eq!(run.memory.read_i32_slice(Addr(16), 4), vec![1, 3, 5, 7]);
//! # Ok::<(), dmt_common::Error>(())
//! ```

pub mod builder;
pub mod delta_stats;
pub mod graph;
pub mod interp;
pub mod kernel;
pub mod node;
pub mod pretty;
pub mod validate;

pub use builder::{KernelBuilder, Recurrence, ValueRef};
pub use graph::Dfg;
pub use kernel::{Kernel, LaunchInput};
pub use node::{AluOp, CommConfig, CtrlOp, FpuOp, MemSpace, NodeKind, SpecialOp, UnaryOp};
