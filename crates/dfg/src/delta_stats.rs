//! Transmission-distance statistics — the machinery behind the paper's
//! Fig 5 (CDF of ΔTID lengths across benchmarks).
//!
//! For every inter-thread communication site (elevator or eLDST node) we
//! record the multi-dimensional ΔTID, its Euclidean length (the paper's
//! metric for 2D/3D TID spaces) and the number of tokens dynamically
//! transmitted (computable in closed form from the window configuration and
//! launch geometry — every in-window thread pair transfers exactly one
//! token per launch).

use crate::kernel::Kernel;
use crate::node::NodeKind;
use dmt_common::geom::Delta;

/// One inter-thread communication site in a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct CommSite {
    /// Kernel name the site belongs to.
    pub kernel: String,
    /// `"elevator"` (fromThreadOrConst) or `"eldst"` (fromThreadOrMem).
    pub primitive: &'static str,
    /// Programmer-visible ΔTID.
    pub delta: Delta,
    /// Euclidean transmission distance (Fig 5 x-axis).
    pub euclidean: f64,
    /// |linear shift| in flattened TID space — what the token buffer must
    /// cover (§4.3 cascading criterion).
    pub linear_distance: u64,
    /// Transmission window.
    pub window: u32,
    /// Tokens transmitted per launch (threads with an in-window source).
    pub dynamic_tokens: u64,
}

/// Extracts every communication site of a kernel.
#[must_use]
pub fn comm_sites(kernel: &Kernel) -> Vec<CommSite> {
    let mut sites = Vec::new();
    let threads = kernel.threads_per_block();
    for phase in kernel.phases() {
        for id in phase.node_ids() {
            let (primitive, comm) = match phase.kind(id) {
                NodeKind::Elevator { comm, .. } => ("elevator", comm),
                NodeKind::ELoad { comm, .. } => ("eldst", comm),
                _ => continue,
            };
            let per_block = (0..threads)
                .filter(|&t| comm.source_of(t, threads).is_some())
                .count() as u64;
            sites.push(CommSite {
                kernel: kernel.name().to_owned(),
                primitive,
                delta: comm.delta,
                euclidean: comm.delta.euclidean(),
                linear_distance: comm.shift.unsigned_abs(),
                window: comm.window,
                dynamic_tokens: per_block * u64::from(kernel.grid_blocks()),
            });
        }
    }
    sites
}

/// A point of the transmission-distance CDF: fraction of dynamic tokens
/// (y) transmitted across at most the given distance (x).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Transmission distance.
    pub distance: f64,
    /// Cumulative fraction of tokens at or below `distance`, in [0, 1].
    pub cumulative: f64,
}

/// Builds the dynamic-token-weighted CDF of transmission distances over a
/// set of communication sites, using the metric chosen by `metric`.
#[must_use]
pub fn cdf(sites: &[CommSite], metric: DistanceMetric) -> Vec<CdfPoint> {
    let total: u64 = sites.iter().map(|s| s.dynamic_tokens).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut weighted: Vec<(f64, u64)> = sites
        .iter()
        .map(|s| (metric.of(s), s.dynamic_tokens))
        .collect();
    weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut points: Vec<CdfPoint> = Vec::new();
    let mut acc = 0u64;
    for (d, w) in weighted {
        acc += w;
        let frac = acc as f64 / total as f64;
        match points.last_mut() {
            Some(p) if p.distance == d => p.cumulative = frac,
            _ => points.push(CdfPoint {
                distance: d,
                cumulative: frac,
            }),
        }
    }
    points
}

/// Which distance metric a CDF is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceMetric {
    /// Euclidean distance in TID coordinate space (the paper's Fig 5).
    Euclidean,
    /// |linear TID shift| — what determines token-buffer/cascading needs.
    Linear,
}

impl DistanceMetric {
    fn of(self, site: &CommSite) -> f64 {
        match self {
            DistanceMetric::Euclidean => site.euclidean,
            DistanceMetric::Linear => site.linear_distance as f64,
        }
    }
}

/// Fraction of dynamic tokens transmitted across at most `distance`
/// (the paper reports 0.87 at distance 16).
#[must_use]
pub fn fraction_within(sites: &[CommSite], metric: DistanceMetric, distance: f64) -> f64 {
    let total: u64 = sites.iter().map(|s| s.dynamic_tokens).sum();
    if total == 0 {
        return 1.0;
    }
    let within: u64 = sites
        .iter()
        .filter(|s| metric.of(s) <= distance)
        .map(|s| s.dynamic_tokens)
        .sum();
    within as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use dmt_common::geom::Dim3;
    use dmt_common::value::Word;

    fn kernel_with_deltas(deltas: &[i32]) -> Kernel {
        let mut kb = KernelBuilder::new("k", Dim3::linear(64));
        let t = kb.thread_idx(0);
        let out = kb.param("out");
        let mut acc = t;
        for &d in deltas {
            acc = kb.from_thread_or_const(acc, Delta::new(d), Word::ZERO, None);
        }
        let a = kb.index_addr(out, t, 4);
        kb.store_global(a, acc);
        kb.finish().unwrap()
    }

    #[test]
    fn sites_extracted_with_dynamic_counts() {
        let k = kernel_with_deltas(&[-1]);
        let sites = comm_sites(&k);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].linear_distance, 1);
        // 63 of 64 threads have an in-window source.
        assert_eq!(sites[0].dynamic_tokens, 63);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let k = kernel_with_deltas(&[-1, -4, 8]);
        let sites = comm_sites(&k);
        let points = cdf(&sites, DistanceMetric::Euclidean);
        assert!(!points.is_empty());
        for w in points.windows(2) {
            assert!(w[0].distance < w[1].distance);
            assert!(w[0].cumulative <= w[1].cumulative);
        }
        let last = points.last().unwrap();
        assert!((last.cumulative - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_within_matches_cdf() {
        let k = kernel_with_deltas(&[-1, -20]);
        let sites = comm_sites(&k);
        let f = fraction_within(&sites, DistanceMetric::Linear, 16.0);
        // Δ=1 transmits 63 tokens, Δ=20 transmits 44; 63/107 within 16.
        assert!((f - 63.0 / 107.0).abs() < 1e-12);
    }
}
