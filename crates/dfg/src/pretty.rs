//! Human-readable dumps of kernels: indented text and Graphviz DOT.

use crate::kernel::Kernel;
use std::fmt::Write as _;

/// Renders the kernel as an indented node listing, one line per node.
#[must_use]
pub fn dump(kernel: &Kernel) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{kernel}");
    for (pi, phase) in kernel.phases().iter().enumerate() {
        let _ = writeln!(s, "phase {pi}:");
        for id in phase.node_ids() {
            let inputs: Vec<String> = phase
                .inputs(id)
                .iter()
                .map(|i| match i {
                    Some(n) => n.to_string(),
                    None => "?".to_owned(),
                })
                .collect();
            let _ = writeln!(s, "  {id} = {} [{}]", phase.kind(id), inputs.join(", "));
        }
    }
    s
}

/// Renders the kernel as a Graphviz `digraph`, one cluster per phase.
/// Elevator/eLDST nodes are highlighted (they are the paper's new units).
#[must_use]
pub fn to_dot(kernel: &Kernel) -> String {
    use crate::node::NodeKind;
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", kernel.name());
    let _ = writeln!(s, "  rankdir=TB; node [shape=box, fontsize=10];");
    for (pi, phase) in kernel.phases().iter().enumerate() {
        let _ = writeln!(s, "  subgraph cluster_{pi} {{ label=\"phase {pi}\";");
        for id in phase.node_ids() {
            let kind = phase.kind(id);
            let style = match kind {
                NodeKind::Elevator { .. } => ", style=filled, fillcolor=lightblue",
                NodeKind::ELoad { .. } => ", style=filled, fillcolor=lightgreen",
                NodeKind::Load(_) | NodeKind::Store(_) => ", style=filled, fillcolor=wheat",
                _ => "",
            };
            let _ = writeln!(s, "    p{pi}_{} [label=\"{kind}\"{style}];", id.0);
        }
        for id in phase.node_ids() {
            for (port, src) in phase.inputs(id).iter().enumerate() {
                if let Some(src) = src {
                    let _ = writeln!(
                        s,
                        "    p{pi}_{} -> p{pi}_{} [label=\"p{port}\"];",
                        src.0, id.0
                    );
                }
            }
        }
        let _ = writeln!(s, "  }}");
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use dmt_common::geom::{Delta, Dim3};
    use dmt_common::value::Word;

    fn sample() -> Kernel {
        let mut kb = KernelBuilder::new("sample", Dim3::linear(8));
        let t = kb.thread_idx(0);
        let v = kb.from_thread_or_const(t, Delta::new(-1), Word::ZERO, None);
        let p = kb.param("out");
        let a = kb.index_addr(p, t, 4);
        kb.store_global(a, v);
        kb.finish().unwrap()
    }

    #[test]
    fn dump_lists_every_node() {
        let k = sample();
        let d = dump(&k);
        assert!(d.contains("elevator"));
        assert!(d.contains("store.global"));
        assert_eq!(
            d.lines().filter(|l| l.contains(" = ")).count(),
            k.node_count()
        );
    }

    #[test]
    fn dot_is_well_formed() {
        let k = sample();
        let d = to_dot(&k);
        assert!(d.starts_with("digraph"));
        assert!(d.trim_end().ends_with('}'));
        assert!(d.contains("lightblue"), "elevator highlighted");
    }
}
