//! The kernel builder: the programming model of Table 1 as a Rust DSL.
//!
//! The paper extends CUDA with `fromThreadOrConst`, `tagValue` and
//! `fromThreadOrMem`; this builder exposes the same primitives (plus the
//! ordinary arithmetic/memory vocabulary of a SIMT kernel) and produces a
//! validated [`Kernel`]. Builder misuse (wrong phase, foreign value refs)
//! panics with a diagnostic, mirroring a compiler's front-end errors;
//! semantic validation happens in [`KernelBuilder::finish`].
//!
//! # Examples
//!
//! The paper's Fig 1c separable convolution, kernel width 3:
//!
//! ```
//! use dmt_dfg::builder::KernelBuilder;
//! use dmt_common::geom::{Delta, Dim3};
//!
//! let mut kb = KernelBuilder::new("convolution", Dim3::linear(256));
//! let image = kb.param("image");
//! let result = kb.param("result");
//! let tid = kb.thread_idx(0);
//!
//! // load one element from global memory
//! let addr = kb.index_addr(image, tid, 4);
//! let mem_elem = kb.load_global(addr);
//! kb.tag_value(mem_elem);
//!
//! // wait for tokens from threads tid-1 and tid+1
//! let lt = kb.from_thread_or_const(mem_elem, Delta::new(-1), 0.0f32.into(), None);
//! let rt = kb.from_thread_or_const(mem_elem, Delta::new(1), 0.0f32.into(), None);
//!
//! let k0 = kb.const_f(0.25);
//! let k1 = kb.const_f(0.5);
//! let a = kb.mul_f(lt, k0);
//! let b = kb.mul_f(mem_elem, k1);
//! let c = kb.mul_f(rt, k0);
//! let ab = kb.add_f(a, b);
//! let sum = kb.add_f(ab, c);
//! let out = kb.index_addr(result, tid, 4);
//! kb.store_global(out, sum);
//!
//! let kernel = kb.finish().unwrap();
//! assert!(kernel.uses_inter_thread_comm());
//! ```

use crate::graph::Dfg;
use crate::kernel::Kernel;
use crate::node::{AluOp, CommConfig, CtrlOp, FpuOp, MemSpace, NodeKind, SpecialOp, UnaryOp};
use crate::validate;
use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::{NodeId, PortIx};
use dmt_common::value::Word;
use dmt_common::Result;
use std::collections::HashMap;

/// A handle to a value produced in some phase of the kernel under
/// construction.
///
/// Value refs are phase-scoped: using a ref created before a
/// [`KernelBuilder::barrier`] call panics, because on the simulated
/// machines values do not survive a fabric drain — they must round-trip
/// through memory, exactly like the shared-memory kernels the paper
/// baselines against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueRef {
    phase: u32,
    node: NodeId,
}

impl ValueRef {
    /// The underlying graph node (for inspection/tests).
    #[must_use]
    pub fn node(self) -> NodeId {
        self.node
    }

    /// The phase index this value lives in.
    #[must_use]
    pub fn phase(self) -> u32 {
        self.phase
    }
}

/// Handle to a not-yet-closed recurrent communication (see
/// [`KernelBuilder::recurrent_from_thread_or_const`]). Must be closed with
/// [`KernelBuilder::close_recurrence`] before `finish`, or validation
/// fails with an unwired-port error.
#[derive(Debug)]
#[must_use = "close the recurrence with close_recurrence, or finish() will fail"]
pub struct Recurrence {
    phase: u32,
    node: NodeId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum InternKey {
    Const(u32),
    ThreadIdx(u8),
    BlockIdx,
    Param(u8),
}

/// Builds a [`Kernel`] phase by phase. See the [module docs](self) for an
/// end-to-end example.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    block: Dim3,
    grid_blocks: u32,
    shared_words: u32,
    param_names: Vec<String>,
    phases: Vec<Dfg>,
    interned: HashMap<(u32, InternKey), NodeId>,
    tagged: Vec<NodeId>,
}

impl KernelBuilder {
    /// Starts a kernel named `name` with thread-block shape `block` and a
    /// 1-block grid.
    #[must_use]
    pub fn new(name: impl Into<String>, block: Dim3) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            block,
            grid_blocks: 1,
            shared_words: 0,
            param_names: Vec::new(),
            phases: vec![Dfg::new()],
            interned: HashMap::new(),
            tagged: Vec::new(),
        }
    }

    /// Sets the number of thread blocks in the launch grid.
    pub fn set_grid_blocks(&mut self, n: u32) -> &mut Self {
        assert!(n > 0, "grid must have at least one block");
        self.grid_blocks = n;
        self
    }

    /// Allocates `n` 32-bit words of per-block shared memory (baseline
    /// kernels only).
    pub fn set_shared_words(&mut self, n: u32) -> &mut Self {
        self.shared_words = n;
        self
    }

    /// The block shape this kernel was declared with.
    #[must_use]
    pub fn block(&self) -> Dim3 {
        self.block
    }

    fn cur(&self) -> u32 {
        (self.phases.len() - 1) as u32
    }

    fn graph(&mut self) -> &mut Dfg {
        self.phases.last_mut().expect("builder always has a phase")
    }

    fn check(&self, v: ValueRef, what: &str) {
        assert!(
            v.phase == self.cur(),
            "{what}: value {:?} was produced in phase {} but the builder is in phase {} \
             (values do not cross barriers; reload them from memory)",
            v.node,
            v.phase,
            self.cur()
        );
    }

    fn node(&mut self, kind: NodeKind, inputs: &[ValueRef]) -> ValueRef {
        for (i, v) in inputs.iter().enumerate() {
            self.check(*v, &format!("operand {i} of {kind}"));
        }
        let phase = self.cur();
        let id = self.graph().add_node(kind);
        for (i, v) in inputs.iter().enumerate() {
            self.graph()
                .connect(v.node, id, PortIx(i as u8))
                .expect("fresh node ports are unwired");
        }
        ValueRef { phase, node: id }
    }

    fn interned_node(&mut self, key: InternKey, kind: NodeKind) -> ValueRef {
        let phase = self.cur();
        if let Some(&id) = self.interned.get(&(phase, key)) {
            return ValueRef { phase, node: id };
        }
        let id = self.graph().add_node(kind);
        self.interned.insert((phase, key), id);
        ValueRef { phase, node: id }
    }

    // ---- Sources -------------------------------------------------------

    /// An `i32` constant.
    pub fn const_i(&mut self, v: i32) -> ValueRef {
        self.const_w(Word::from_i32(v))
    }

    /// An `f32` constant.
    pub fn const_f(&mut self, v: f32) -> ValueRef {
        self.const_w(Word::from_f32(v))
    }

    /// A raw-bits constant.
    pub fn const_w(&mut self, w: Word) -> ValueRef {
        self.interned_node(InternKey::Const(w.0), NodeKind::Const(w))
    }

    /// CUDA `threadIdx` component (`dim`: 0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `dim > 2`.
    pub fn thread_idx(&mut self, dim: u8) -> ValueRef {
        assert!(dim <= 2, "threadIdx dimension must be 0..=2");
        self.interned_node(InternKey::ThreadIdx(dim), NodeKind::ThreadIdx(dim))
    }

    /// CUDA `blockIdx.x` (launch grids are 1-D).
    pub fn block_idx(&mut self) -> ValueRef {
        self.interned_node(InternKey::BlockIdx, NodeKind::BlockIdx)
    }

    /// Declares (on first use) and reads a scalar kernel parameter. Calling
    /// `param` with the same name after a barrier re-materializes the value
    /// in the new phase; the slot is shared.
    pub fn param(&mut self, name: &str) -> ValueRef {
        let slot = match self.param_names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.param_names.push(name.to_owned());
                self.param_names.len() - 1
            }
        };
        let slot = u8::try_from(slot).expect("at most 256 kernel parameters");
        self.interned_node(InternKey::Param(slot), NodeKind::Param(slot))
    }

    // ---- Integer arithmetic ---------------------------------------------

    /// `a + b` (i32, wrapping).
    pub fn add_i(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Alu(AluOp::Add), &[a, b])
    }

    /// `a - b` (i32, wrapping).
    pub fn sub_i(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Alu(AluOp::Sub), &[a, b])
    }

    /// `a * b` (i32, wrapping).
    pub fn mul_i(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Alu(AluOp::Mul), &[a, b])
    }

    /// Signed minimum.
    pub fn min_i(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Alu(AluOp::Min), &[a, b])
    }

    /// Signed maximum.
    pub fn max_i(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Alu(AluOp::Max), &[a, b])
    }

    /// `a / b` (i32; SCU).
    pub fn div_i(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Special(SpecialOp::DivS), &[a, b])
    }

    /// `a mod b` (i32; SCU).
    pub fn rem_i(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Special(SpecialOp::RemS), &[a, b])
    }

    // ---- Float arithmetic -----------------------------------------------

    /// `a + b` (f32).
    pub fn add_f(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Fpu(FpuOp::Add), &[a, b])
    }

    /// `a - b` (f32).
    pub fn sub_f(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Fpu(FpuOp::Sub), &[a, b])
    }

    /// `a * b` (f32).
    pub fn mul_f(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Fpu(FpuOp::Mul), &[a, b])
    }

    /// IEEE minimum (f32).
    pub fn min_f(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Fpu(FpuOp::Min), &[a, b])
    }

    /// IEEE maximum (f32).
    pub fn max_f(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Fpu(FpuOp::Max), &[a, b])
    }

    /// `a / b` (f32; SCU).
    pub fn div_f(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Special(SpecialOp::DivF), &[a, b])
    }

    /// `√a` (f32; SCU).
    pub fn sqrt_f(&mut self, a: ValueRef) -> ValueRef {
        self.node(NodeKind::Special(SpecialOp::SqrtF), &[a])
    }

    /// `eᵃ` (f32; SCU).
    pub fn exp_f(&mut self, a: ValueRef) -> ValueRef {
        self.node(NodeKind::Special(SpecialOp::ExpF), &[a])
    }

    // ---- Bitwise / comparisons / select ----------------------------------

    /// Bitwise AND.
    pub fn and(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::And), &[a, b])
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::Or), &[a, b])
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::Xor), &[a, b])
    }

    /// Logical shift left.
    pub fn shl(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::Shl), &[a, b])
    }

    /// Logical shift right.
    pub fn shr(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::Shr), &[a, b])
    }

    /// Arithmetic shift right.
    pub fn sra(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::Sra), &[a, b])
    }

    /// Integer equality.
    pub fn eq_i(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::EqI), &[a, b])
    }

    /// Integer inequality.
    pub fn ne_i(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::NeI), &[a, b])
    }

    /// Signed `a < b`.
    pub fn lt_s(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::LtS), &[a, b])
    }

    /// Signed `a <= b`.
    pub fn le_s(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::LeS), &[a, b])
    }

    /// Unsigned `a < b`.
    pub fn lt_u(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::LtU), &[a, b])
    }

    /// Float `a < b`.
    pub fn lt_f(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::LtF), &[a, b])
    }

    /// Float `a <= b`.
    pub fn le_f(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Ctrl(CtrlOp::LeF), &[a, b])
    }

    /// `pred ? a : b`.
    pub fn select(&mut self, pred: ValueRef, a: ValueRef, b: ValueRef) -> ValueRef {
        self.node(NodeKind::Select, &[pred, a, b])
    }

    // ---- Unary ------------------------------------------------------------

    /// Integer negation.
    pub fn neg_i(&mut self, a: ValueRef) -> ValueRef {
        self.node(NodeKind::Unary(UnaryOp::NegI), &[a])
    }

    /// Float negation.
    pub fn neg_f(&mut self, a: ValueRef) -> ValueRef {
        self.node(NodeKind::Unary(UnaryOp::NegF), &[a])
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: ValueRef) -> ValueRef {
        self.node(NodeKind::Unary(UnaryOp::Not), &[a])
    }

    /// `i32 → f32`.
    pub fn i2f(&mut self, a: ValueRef) -> ValueRef {
        self.node(NodeKind::Unary(UnaryOp::I2F), &[a])
    }

    /// `f32 → i32` (truncating).
    pub fn f2i(&mut self, a: ValueRef) -> ValueRef {
        self.node(NodeKind::Unary(UnaryOp::F2I), &[a])
    }

    /// Integer absolute value.
    pub fn abs_i(&mut self, a: ValueRef) -> ValueRef {
        self.node(NodeKind::Unary(UnaryOp::AbsI), &[a])
    }

    /// Float absolute value.
    pub fn abs_f(&mut self, a: ValueRef) -> ValueRef {
        self.node(NodeKind::Unary(UnaryOp::AbsF), &[a])
    }

    // ---- Memory -------------------------------------------------------------

    /// `base + index·scale` — the ubiquitous array-address computation.
    /// Emits real ALU nodes (address arithmetic costs operations, as on the
    /// modelled machines).
    pub fn index_addr(&mut self, base: ValueRef, index: ValueRef, scale: i32) -> ValueRef {
        let s = self.const_i(scale);
        let off = self.mul_i(index, s);
        self.add_i(base, off)
    }

    /// Load from an address space.
    pub fn load(&mut self, space: MemSpace, addr: ValueRef) -> ValueRef {
        self.node(NodeKind::Load(space), &[addr])
    }

    /// Store to an address space; returns the ordering token.
    pub fn store(&mut self, space: MemSpace, addr: ValueRef, value: ValueRef) -> ValueRef {
        self.node(NodeKind::Store(space), &[addr, value])
    }

    /// Load from global memory.
    pub fn load_global(&mut self, addr: ValueRef) -> ValueRef {
        self.load(MemSpace::Global, addr)
    }

    /// Store to global memory; returns the ordering token.
    pub fn store_global(&mut self, addr: ValueRef, value: ValueRef) -> ValueRef {
        self.store(MemSpace::Global, addr, value)
    }

    /// Load from the shared-memory scratchpad.
    pub fn load_shared(&mut self, addr: ValueRef) -> ValueRef {
        self.load(MemSpace::Shared, addr)
    }

    /// Store to the shared-memory scratchpad; returns the ordering token.
    pub fn store_shared(&mut self, addr: ValueRef, value: ValueRef) -> ValueRef {
        self.store(MemSpace::Shared, addr, value)
    }

    /// Forwards `value` only after `order` (typically a store token) has
    /// arrived — an intra-thread memory-ordering join (SJU).
    pub fn after(&mut self, value: ValueRef, order: ValueRef) -> ValueRef {
        self.node(NodeKind::Join, &[value, order])
    }

    // ---- Inter-thread communication (Table 1) --------------------------------

    /// `fromThreadOrConst<var, ΔTID, constant[, win]>()` — reads `var` from
    /// the thread at offset `delta`, or `fallback` when that thread is
    /// outside the block / transmission window (§3.2).
    ///
    /// `delta` is the *source* offset: `delta = -1` means "receive from
    /// thread `tid − 1`", exactly as in the paper's Fig 1c.
    ///
    /// # Panics
    ///
    /// Panics if `delta` flattens to zero or `window` is 0 or exceeds the
    /// block size.
    pub fn from_thread_or_const(
        &mut self,
        var: ValueRef,
        delta: Delta,
        fallback: Word,
        window: Option<u32>,
    ) -> ValueRef {
        let comm = self.comm_config(delta, window);
        self.tag_value(var);
        self.node(NodeKind::Elevator { comm, fallback }, &[var])
    }

    /// `tagValue<var>()` — tags the version of a variable to be sent to
    /// other threads (§3.2). Recorded for diagnostics; the dataflow edge
    /// into the elevator already pins the version, so tagging is idempotent
    /// and `from_thread_or_const` auto-tags its input.
    pub fn tag_value(&mut self, var: ValueRef) {
        self.check(var, "tag_value");
        if !self.tagged.contains(&var.node) {
            self.tagged.push(var.node);
        }
    }

    /// The recurrent form of `fromThreadOrConst`: receive a value *that
    /// this kernel has not computed yet*. Returns the received value and a
    /// [`Recurrence`] handle; once the communicated value exists, close the
    /// loop with [`KernelBuilder::close_recurrence`] — the paper's Fig 6
    /// prefix sum is exactly this shape (`tagValue<sum>` placed *after*
    /// the `fromThreadOrConst<sum, -1, 0>` call):
    ///
    /// ```
    /// # use dmt_dfg::KernelBuilder;
    /// # use dmt_common::geom::{Delta, Dim3};
    /// # use dmt_common::value::Word;
    /// let mut kb = KernelBuilder::new("scan", Dim3::linear(8));
    /// let inp = kb.param("in");
    /// let out = kb.param("out");
    /// let tid = kb.thread_idx(0);
    /// let a = kb.index_addr(inp, tid, 4);
    /// let mem_val = kb.load_global(a);
    /// // sum = fromThreadOrConst<sum, -1, 0>() + mem_val;
    /// let (prev_sum, rec) = kb.recurrent_from_thread_or_const(
    ///     Delta::new(-1), Word::from_i32(0), None);
    /// let sum = kb.add_i(prev_sum, mem_val);
    /// kb.close_recurrence(rec, sum); // tagValue<sum>()
    /// let oa = kb.index_addr(out, tid, 4);
    /// kb.store_global(oa, sum);
    /// assert!(kb.finish().is_ok());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on invalid `delta`/`window`, like
    /// [`KernelBuilder::from_thread_or_const`].
    pub fn recurrent_from_thread_or_const(
        &mut self,
        delta: Delta,
        fallback: Word,
        window: Option<u32>,
    ) -> (ValueRef, Recurrence) {
        let comm = self.comm_config(delta, window);
        let phase = self.cur();
        let node = self.graph().add_node(NodeKind::Elevator { comm, fallback });
        (ValueRef { phase, node }, Recurrence { phase, node })
    }

    /// Closes a recurrence: wires `var` into the deferred elevator's input
    /// (the `tagValue` of the communicated variable).
    ///
    /// # Panics
    ///
    /// Panics if `var` belongs to another phase or the recurrence was
    /// already closed.
    pub fn close_recurrence(&mut self, rec: Recurrence, var: ValueRef) {
        self.check(var, "close_recurrence");
        assert!(
            rec.phase == self.cur(),
            "recurrence belongs to phase {} but the builder is in phase {}",
            rec.phase,
            self.cur()
        );
        self.tag_value(var);
        self.graph()
            .connect(var.node, rec.node, PortIx(0))
            .expect("recurrence closed twice");
    }

    /// `fromThreadOrMem<ΔTID[, win]>(address, predicate)` — loads `addr`
    /// when `enable` is true, otherwise receives the value loaded by the
    /// thread at offset `delta` (§3.3). `delta` is the source offset, as in
    /// [`KernelBuilder::from_thread_or_const`].
    ///
    /// # Panics
    ///
    /// Panics if `delta` flattens to zero or `window` is invalid.
    pub fn from_thread_or_mem(
        &mut self,
        addr: ValueRef,
        enable: ValueRef,
        delta: Delta,
        window: Option<u32>,
    ) -> ValueRef {
        let comm = self.comm_config(delta, window);
        self.node(
            NodeKind::ELoad {
                comm,
                space: MemSpace::Global,
            },
            &[addr, enable],
        )
    }

    fn comm_config(&self, delta: Delta, window: Option<u32>) -> CommConfig {
        let flat = delta.flatten(self.block);
        assert!(flat != 0, "inter-thread delta must be non-zero: {delta}");
        let window = window.unwrap_or_else(|| self.block.len());
        assert!(
            window > 0 && window <= self.block.len(),
            "transmission window {window} must be in 1..={}",
            self.block.len()
        );
        CommConfig {
            shift: -flat,
            delta,
            window,
        }
    }

    // ---- Phases ---------------------------------------------------------------

    /// A barrier (CUDA `__syncthreads()`): ends the current phase. Values
    /// created before the barrier may not be used after it — round-trip
    /// them through memory, as real shared-memory kernels do.
    pub fn barrier(&mut self) -> &mut Self {
        assert!(
            !self.phases.last().expect("phase").is_empty(),
            "barrier() on an empty phase"
        );
        self.phases.push(Dfg::new());
        self
    }

    /// Nodes explicitly or implicitly tagged with `tagValue`.
    #[must_use]
    pub fn tagged_nodes(&self) -> &[NodeId] {
        &self.tagged
    }

    /// Validates and returns the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`dmt_common::Error::Validate`] when a phase has unwired
    /// ports, a combinational cycle, an invalid window, or when a kernel
    /// both uses inter-thread communication and barriers in a way that
    /// violates the model (see `validate`).
    pub fn finish(self) -> Result<Kernel> {
        let kernel = Kernel::from_parts(
            self.name,
            self.block,
            self.grid_blocks,
            self.param_names,
            self.shared_words,
            self.phases,
        );
        validate::validate(&kernel)?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> KernelBuilder {
        KernelBuilder::new("t", Dim3::linear(32))
    }

    #[test]
    fn constants_are_interned_per_phase() {
        let mut kb = builder();
        let a = kb.const_i(7);
        let b = kb.const_i(7);
        assert_eq!(a, b);
        let t = kb.thread_idx(0);
        kb.store_global(a, t);
        kb.barrier();
        let c = kb.const_i(7);
        assert_ne!(a, c, "constants re-materialize per phase");
        assert_eq!(c.phase(), 1);
    }

    #[test]
    fn params_share_slots_across_phases() {
        let mut kb = builder();
        let p0 = kb.param("x");
        let t = kb.thread_idx(0);
        kb.store_global(p0, t);
        kb.barrier();
        let p1 = kb.param("x");
        let t1 = kb.thread_idx(0);
        kb.store_global(p1, t1);
        let k = kb.finish().unwrap();
        assert_eq!(k.param_names(), ["x"]);
    }

    #[test]
    #[should_panic(expected = "values do not cross barriers")]
    fn cross_phase_use_panics() {
        let mut kb = builder();
        let t = kb.thread_idx(0);
        let p = kb.param("x");
        kb.store_global(p, t);
        kb.barrier();
        let one = kb.const_i(1);
        let _ = kb.add_i(t, one); // t is from phase 0
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn zero_delta_panics() {
        let mut kb = builder();
        let t = kb.thread_idx(0);
        let _ = kb.from_thread_or_const(t, Delta::new(0), Word::ZERO, None);
    }

    #[test]
    #[should_panic(expected = "transmission window")]
    fn oversized_window_panics() {
        let mut kb = builder();
        let t = kb.thread_idx(0);
        let _ = kb.from_thread_or_const(t, Delta::new(-1), Word::ZERO, Some(64));
    }

    #[test]
    fn delta_sign_convention_matches_paper() {
        // fromThreadOrConst<v, -1, c>: receive from tid-1 => elevator
        // shifts tokens upward (+1).
        let mut kb = builder();
        let t = kb.thread_idx(0);
        let v = kb.from_thread_or_const(t, Delta::new(-1), Word::ZERO, None);
        let p = kb.param("out");
        kb.store_global(p, v);
        let k = kb.finish().unwrap();
        let phase = &k.phases()[0];
        let comm = phase
            .node_ids()
            .find_map(|id| phase.kind(id).comm().copied())
            .unwrap();
        assert_eq!(comm.shift, 1);
    }

    #[test]
    fn index_addr_emits_real_ops() {
        let mut kb = builder();
        let p = kb.param("base");
        let t = kb.thread_idx(0);
        let a = kb.index_addr(p, t, 4);
        kb.store_global(a, t);
        let k = kb.finish().unwrap();
        // param, tid, const4, mul, add, store = 6 nodes
        assert_eq!(k.node_count(), 6);
    }

    #[test]
    fn tag_value_is_idempotent() {
        let mut kb = builder();
        let t = kb.thread_idx(0);
        kb.tag_value(t);
        kb.tag_value(t);
        assert_eq!(kb.tagged_nodes().len(), 1);
    }
}
