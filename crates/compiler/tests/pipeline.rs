//! Compiler-pipeline integration tests over the real benchmark suite.

use dmt_common::config::{SystemConfig, UnitClass};
use dmt_compiler::{compile, place::Layout, rewrite};
use dmt_kernels::{suite, Benchmark};

#[test]
fn every_suite_kernel_compiles_within_the_table2_grid() {
    let cfg = SystemConfig::default();
    for bench in suite::all() {
        for kernel in [bench.dmt_kernel(), bench.shared_kernel()] {
            let program =
                compile(&kernel, &cfg).unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
            assert!(program.replication >= 1);
            for (pi, phase) in program.phases.iter().enumerate() {
                for (&class, &used) in &phase.unit_usage {
                    assert!(
                        used <= cfg.grid.capacity(class),
                        "{} phase {pi}: {used} {class} > {}",
                        kernel.name(),
                        cfg.grid.capacity(class)
                    );
                }
            }
        }
    }
}

#[test]
fn placement_is_deterministic_and_slots_unique() {
    let cfg = SystemConfig::default();
    let kernel = dmt_kernels::srad::Srad.dmt_kernel();
    let a = compile(&kernel, &cfg).unwrap();
    let b = compile(&kernel, &cfg).unwrap();
    assert_eq!(a.phases[0].placement, b.phases[0].placement);
    // No two occupied nodes share a slot.
    let phase = &a.phases[0];
    let mut seen = std::collections::HashSet::new();
    for id in phase.graph.node_ids() {
        if phase.graph.kind(id).unit_class().is_some() {
            assert!(
                seen.insert(phase.placement[id.index()]),
                "slot reuse at {id}"
            );
        }
    }
}

#[test]
fn fanout_limit_holds_after_compilation() {
    let cfg = SystemConfig::default();
    for bench in suite::all() {
        let program = compile(&bench.dmt_kernel(), &cfg).unwrap();
        for phase in &program.phases {
            for id in phase.graph.node_ids() {
                assert!(
                    phase.graph.fanout(id) <= rewrite::MAX_FANOUT,
                    "{}: {id} fanout {}",
                    bench.info().name,
                    phase.graph.fanout(id)
                );
            }
        }
    }
}

#[test]
fn layout_adapts_to_custom_grid_mixes() {
    let grid = dmt_common::config::GridConfig {
        alus: 48,
        fpus: 16,
        ..Default::default()
    };
    let layout = Layout::new(&grid, 12).unwrap();
    let count = |c: UnitClass| layout.slots().iter().filter(|(_, k)| *k == c).count() as u32;
    assert_eq!(count(UnitClass::Alu), 48);
    assert_eq!(count(UnitClass::Fpu), 16);
    assert_eq!(layout.slots().len(), grid.total_units() as usize);
}

#[test]
fn shrinking_the_grid_reduces_replication_then_rejects() {
    let kernel = dmt_kernels::convolution::Convolution::default().dmt_kernel();
    let base = SystemConfig::default();
    let r_full = compile(&kernel, &base).unwrap().replication;
    assert!(r_full > 1);

    let mut small = base;
    small.grid.alus = 8;
    let r_small = compile(&kernel, &small).unwrap().replication;
    assert!(r_small < r_full, "{r_small} !< {r_full}");

    let mut tiny = base;
    tiny.grid.fpus = 2;
    let err = compile(&kernel, &tiny).unwrap_err();
    assert!(matches!(
        err,
        dmt_common::Error::CapacityExceeded {
            class: UnitClass::Fpu,
            ..
        }
    ));
}

#[test]
fn dce_runs_inside_the_pipeline() {
    use dmt_common::geom::Dim3;
    use dmt_dfg::KernelBuilder;
    let mut kb = KernelBuilder::new("dead", Dim3::linear(8));
    let _unused = kb.param("unused");
    let dead = kb.thread_idx(1); // y index never consumed
    let _ = dead;
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let a = kb.index_addr(out, tid, 4);
    kb.store_global(a, tid);
    let kernel = kb.finish().unwrap();
    let nodes_before = kernel.node_count();
    let program = compile(&kernel, &SystemConfig::default()).unwrap();
    assert!(
        program.phases[0].graph.len() < nodes_before,
        "dead sources must be eliminated"
    );
}

#[test]
fn edge_hops_match_placement_distances() {
    let cfg = SystemConfig::default();
    let program = compile(&dmt_kernels::hotspot::Hotspot.dmt_kernel(), &cfg).unwrap();
    let phase = &program.phases[0];
    for id in phase.graph.node_ids() {
        for (i, &(consumer, _)) in phase.graph.consumers(id).iter().enumerate() {
            let expect = phase.placement[id.index()]
                .manhattan(phase.placement[consumer.index()])
                .max(1);
            assert_eq!(phase.edge_hops[id.index()][i], expect);
        }
    }
}
