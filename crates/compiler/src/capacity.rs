//! Unit-capacity accounting and graph-replication planning.
//!
//! The grid provides fixed pools per unit class (Table 2). The compiler
//! (a) verifies a kernel phase fits at replication 1, (b) charges elevator
//! cascades and eLDST loops against the Control-unit pool, and (c) computes
//! the replication factor — how many copies of the kernel graph fill the
//! grid (§3), which sets the fabric's thread-injection rate.

use dmt_common::config::{GridConfig, UnitClass};
use dmt_common::{Error, Result};
use dmt_dfg::node::NodeKind;
use dmt_dfg::Dfg;
use std::collections::BTreeMap;

/// Upper bound on replication (beyond this, thread-injection bandwidth —
/// not the grid — is the limit).
pub const MAX_REPLICATION: u32 = 16;

/// Counts the functional units a graph occupies, per class. Sources are
/// free (they are injected); every other node occupies one unit.
#[must_use]
pub fn unit_usage(graph: &Dfg) -> BTreeMap<UnitClass, u32> {
    let mut usage = BTreeMap::new();
    for id in graph.node_ids() {
        if let Some(class) = graph.kind(id).unit_class() {
            *usage.entry(class).or_insert(0) += 1;
        }
    }
    usage
}

/// Control units consumed by the long-distance transform of one
/// communication node: a |shift| ≤ B elevator/eLDST costs nothing extra; a
/// longer elevator cascades into ⌈|shift|/B⌉ nodes (the original plus
/// extras); a longer eLDST is backed by a closed elevator loop plus two
/// MUX control nodes (Fig 10b).
#[must_use]
pub fn long_distance_cu_cost(kind: &NodeKind, token_buffer: u32) -> u32 {
    let Some(comm) = kind.comm() else { return 0 };
    let dist = comm.shift.unsigned_abs();
    let b = u64::from(token_buffer);
    if dist <= b {
        return 0;
    }
    let segments = dist.div_ceil(b) as u32;
    match kind {
        NodeKind::Elevator { .. } => segments - 1, // the node itself is one
        NodeKind::ELoad { .. } => segments + 2,    // loop elevators + 2 MUXes
        _ => 0,
    }
}

/// Verifies `usage` fits the grid and computes the replication factor:
/// `min_c ⌊capacity(c) / usage(c)⌋` over occupied classes, clamped to
/// [1, [`MAX_REPLICATION`]].
///
/// # Errors
///
/// Returns [`Error::CapacityExceeded`] naming the first over-subscribed
/// class when the graph does not fit even once.
pub fn replication_factor(usage: &BTreeMap<UnitClass, u32>, grid: &GridConfig) -> Result<u32> {
    let mut r = MAX_REPLICATION;
    for (&class, &used) in usage {
        if used == 0 {
            continue;
        }
        let cap = grid.capacity(class);
        if used > cap {
            return Err(Error::CapacityExceeded {
                class,
                required: used,
                available: cap,
            });
        }
        r = r.min(cap / used);
    }
    Ok(r.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_common::geom::Delta;
    use dmt_common::value::Word;
    use dmt_dfg::node::{CommConfig, MemSpace};

    fn comm(shift: i64) -> CommConfig {
        CommConfig {
            shift,
            delta: Delta::new(-(shift as i32)),
            window: 256,
        }
    }

    #[test]
    fn short_distance_costs_nothing() {
        let e = NodeKind::Elevator {
            comm: comm(16),
            fallback: Word::ZERO,
        };
        assert_eq!(long_distance_cu_cost(&e, 16), 0);
    }

    #[test]
    fn elevator_cascade_cost() {
        let e = NodeKind::Elevator {
            comm: comm(18),
            fallback: Word::ZERO,
        };
        assert_eq!(
            long_distance_cu_cost(&e, 16),
            1,
            "16+2 needs one extra node"
        );
        let e40 = NodeKind::Elevator {
            comm: comm(40),
            fallback: Word::ZERO,
        };
        assert_eq!(long_distance_cu_cost(&e40, 16), 2, "16+16+8");
    }

    #[test]
    fn eldst_loop_cost() {
        let e = NodeKind::ELoad {
            comm: comm(40),
            space: MemSpace::Global,
        };
        assert_eq!(
            long_distance_cu_cost(&e, 16),
            5,
            "3 loop elevators + 2 MUXes"
        );
    }

    #[test]
    fn replication_is_grid_over_usage() {
        let grid = GridConfig::default();
        let mut usage = BTreeMap::new();
        usage.insert(UnitClass::Fpu, 8);
        usage.insert(UnitClass::LoadStore, 2);
        usage.insert(UnitClass::Alu, 4);
        // 32/8 = 4 is the binding constraint.
        assert_eq!(replication_factor(&usage, &grid).unwrap(), 4);
    }

    #[test]
    fn replication_clamps_to_max() {
        let grid = GridConfig::default();
        let mut usage = BTreeMap::new();
        usage.insert(UnitClass::Alu, 1);
        assert_eq!(replication_factor(&usage, &grid).unwrap(), MAX_REPLICATION);
    }

    #[test]
    fn over_capacity_is_an_error() {
        let grid = GridConfig::default();
        let mut usage = BTreeMap::new();
        usage.insert(UnitClass::Special, 13);
        let err = replication_factor(&usage, &grid).unwrap_err();
        assert!(matches!(
            err,
            Error::CapacityExceeded {
                class: UnitClass::Special,
                required: 13,
                available: 12
            }
        ));
    }
}
