//! The dMT-CGRA compiler back-end: kernel dataflow graphs → placed, routed
//! fabric programs.
//!
//! The paper compiles CUDA through LLVM to SSA and configures the grid from
//! it (§5.1); this crate is the corresponding back-end for our IR. The
//! pipeline per phase:
//!
//! 1. **Dead-node elimination** — drop values nobody consumes.
//! 2. **Fan-out splitting** — interpose split/join (SJU) nodes when a
//!    producer exceeds its crossbar fan-out.
//! 3. **Long-distance planning** — charge elevator cascades (Fig 10a) and
//!    eLDST loops (Fig 10b) against the control-unit pool; when even
//!    cascading does not fit, fall back to Live-Value-Cache spills (§4.3).
//! 4. **Cascading** — structurally split long elevators into chains.
//! 5. **Capacity & replication** — verify the phase fits the Table 2 grid
//!    and compute how many graph replicas fill it (§3).
//! 6. **Placement & routing** — bind nodes to physical units
//!    (Fig 7a-style interleaved floorplan) and derive NoC hop counts.
//!
//! # Examples
//!
//! ```
//! use dmt_compiler::compile;
//! use dmt_dfg::KernelBuilder;
//! use dmt_common::{SystemConfig, Word};
//! use dmt_common::geom::{Delta, Dim3};
//!
//! let mut kb = KernelBuilder::new("shift", Dim3::linear(64));
//! let out = kb.param("out");
//! let tid = kb.thread_idx(0);
//! // ΔTID of 18 exceeds the 16-entry token buffer: the compiler cascades.
//! let v = kb.from_thread_or_const(tid, Delta::new(-18), Word::from_i32(0), None);
//! let a = kb.index_addr(out, tid, 4);
//! kb.store_global(a, v);
//! let kernel = kb.finish()?;
//!
//! let program = compile(&kernel, &SystemConfig::default())?;
//! assert!(program.replication >= 1);
//! # Ok::<(), dmt_common::Error>(())
//! ```

pub mod capacity;
pub mod place;
pub mod rewrite;

use dmt_common::config::SystemConfig;
use dmt_common::ids::NodeId;
use dmt_common::{Error, Result};
use dmt_dfg::node::NodeKind;
use dmt_dfg::{Dfg, Kernel};
use dmt_fabric::program::{FabricProgram, PhaseProgram};
use std::collections::{HashMap, HashSet};

/// A compiled phase plus its diagnostics.
#[derive(Debug, Clone)]
struct CompiledPhase {
    program: PhaseProgram,
    replication: u32,
}

/// Compiles a kernel for the configured machine.
///
/// # Errors
///
/// Returns [`Error::CapacityExceeded`] when a phase cannot fit the grid
/// even at replication 1 with every long-distance communication spilled,
/// and [`Error::Compile`] for unroutable graphs or communication distances
/// exceeding the in-flight thread window (which would deadlock the
/// fabric).
pub fn compile(kernel: &Kernel, cfg: &SystemConfig) -> Result<FabricProgram> {
    let layout = place::Layout::new(&cfg.grid, cfg.fabric.grid_width)?;
    let mut phases = Vec::with_capacity(kernel.phases().len());
    let mut replication = capacity::MAX_REPLICATION;
    for graph in kernel.phases() {
        let compiled = compile_phase(graph, cfg, &layout)?;
        replication = replication.min(compiled.replication);
        phases.push(compiled.program);
    }
    Ok(FabricProgram {
        name: kernel.name().to_owned(),
        block: kernel.block(),
        grid_blocks: kernel.grid_blocks(),
        param_count: kernel.param_names().len(),
        shared_words: kernel.shared_words(),
        replication: replication.max(1),
        phases,
    })
}

fn compile_phase(graph: &Dfg, cfg: &SystemConfig, layout: &place::Layout) -> Result<CompiledPhase> {
    let tb = cfg.fabric.token_buffer_entries;
    let window = cfg.fabric.inflight_threads;

    // Communication distances beyond the in-flight window can never be
    // satisfied: the sender would have to retire before the receiver
    // injects.
    for id in graph.node_ids() {
        if let Some(comm) = graph.kind(id).comm() {
            if comm.shift.unsigned_abs() >= u64::from(window) {
                return Err(Error::Compile(format!(
                    "node {id}: |ΔTID| {} ≥ in-flight window {window}; the fabric would \
                     deadlock",
                    comm.shift.unsigned_abs()
                )));
            }
        }
    }

    // 1. Dead-node elimination.
    let (graph, _removed) = rewrite::dead_node_elimination(graph);
    // 2. Fan-out splitting.
    let (graph, _splits) = rewrite::split_fanout(&graph)?;

    // 3. Long-distance planning: does the fully cascaded/looped form fit
    //    the control-unit pool?
    let base_usage = capacity::unit_usage(&graph);
    let cu_cap = cfg.grid.controls;
    let base_cu = base_usage
        .get(&dmt_common::config::UnitClass::Control)
        .copied()
        .unwrap_or(0);
    let extra_cu: u32 = graph
        .node_ids()
        .map(|id| capacity::long_distance_cu_cost(graph.kind(id), tb))
        .sum();
    let spill_all = base_cu + extra_cu > cu_cap;
    if spill_all && base_cu > cu_cap {
        return Err(Error::CapacityExceeded {
            class: dmt_common::config::UnitClass::Control,
            required: base_cu,
            available: cu_cap,
        });
    }
    let spill_list: Vec<NodeId> = if spill_all {
        graph
            .node_ids()
            .filter(|&id| {
                graph
                    .kind(id)
                    .comm()
                    .is_some_and(|c| c.shift.unsigned_abs() > u64::from(tb))
            })
            .collect()
    } else {
        Vec::new()
    };

    // 4. Cascade the elevators that are not spilled.
    let (graph, _origins) = rewrite::cascade_elevators(&graph, tb, &spill_list)?;

    // Post-transform annotations, derivable from the final graph: any
    // remaining long-distance elevator is spilled; long eLDSTs are either
    // looped (costing CU budget and latency) or spilled with everything
    // else.
    let mut lvc_spilled = HashSet::new();
    let mut eldst_loop_latency = HashMap::new();
    let mut loop_cu = 0u32;
    for id in graph.node_ids() {
        let kind = graph.kind(id);
        let Some(comm) = kind.comm() else { continue };
        let dist = comm.shift.unsigned_abs();
        if dist <= u64::from(tb) {
            continue;
        }
        match kind {
            NodeKind::Elevator { .. } => {
                lvc_spilled.insert(id);
            }
            NodeKind::ELoad { .. } => {
                if spill_all {
                    lvc_spilled.insert(id);
                } else {
                    let segments = dist.div_ceil(u64::from(tb));
                    loop_cu += capacity::long_distance_cu_cost(kind, tb);
                    let latency = segments * (cfg.latencies.elevator + cfg.fabric.noc_hop_latency)
                        + 2 * cfg.latencies.control;
                    eldst_loop_latency.insert(id, latency);
                }
            }
            _ => unreachable!("comm() is Some only for elevator/eLDST"),
        }
    }

    // 5. Capacity and replication on the final graph (loop CUs charged).
    let mut usage = capacity::unit_usage(&graph);
    if loop_cu > 0 {
        *usage
            .entry(dmt_common::config::UnitClass::Control)
            .or_insert(0) += loop_cu;
    }
    let replication = capacity::replication_factor(&usage, &cfg.grid)?;

    // 6. Placement and routing.
    let placement = place::place(&graph, layout)?;
    let edge_hops = PhaseProgram::hops_from_placement(&graph, &placement);

    Ok(CompiledPhase {
        program: PhaseProgram {
            graph,
            placement,
            edge_hops,
            unit_usage: usage,
            lvc_spilled,
            eldst_loop_latency,
        },
        replication,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_common::config::{FabricConfig, SystemConfig};
    use dmt_common::geom::{Delta, Dim3};
    use dmt_common::ids::Addr;
    use dmt_common::memimg::MemImage;
    use dmt_common::value::Word;
    use dmt_dfg::{interp, KernelBuilder, LaunchInput};
    use dmt_fabric::FabricMachine;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    fn shift_kernel(delta: i32, n: u32) -> Kernel {
        let mut kb = KernelBuilder::new("shift", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(inp, tid, 4);
        let x = kb.load_global(a);
        let v = kb.from_thread_or_const(x, Delta::new(delta), Word::from_i32(-1), None);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, v);
        kb.finish().unwrap()
    }

    /// Compile + run on the fabric, compare against the interpreter.
    fn check_compiled(kernel: &Kernel, n: u32) -> dmt_common::stats::RunStats {
        let program = compile(kernel, &cfg()).unwrap();
        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_i32_slice(Addr(0), &(0..n as i32).map(|i| i * 3).collect::<Vec<_>>());
        let params = vec![Word::from_u32(0), Word::from_u32(4 * n)];
        let oracle = interp::run_ref(kernel, &params, &mem).unwrap();
        let run = FabricMachine::new(cfg())
            .run(&program, LaunchInput::new(params, mem))
            .unwrap();
        assert_eq!(run.memory, oracle.memory, "compiled program diverges");
        run.stats
    }

    #[test]
    fn long_delta_cascades_and_stays_correct() {
        let k = shift_kernel(-18, 64);
        let program = compile(&k, &cfg()).unwrap();
        let elevators = program.phases[0]
            .graph
            .node_ids()
            .filter(|&id| program.phases[0].graph.kind(id).comm().is_some())
            .count();
        assert_eq!(elevators, 2, "Fig 10a: 18 = 16 + 2");
        check_compiled(&k, 64);
    }

    #[test]
    fn very_long_delta_spills_to_lvc_when_cu_pool_exhausts() {
        // Shrink the CU pool so cascading cannot fit.
        let mut c = cfg();
        c.grid.controls = 2;
        let k = shift_kernel(-60, 128);
        let program = compile(&k, &c).unwrap();
        assert_eq!(
            program.phases[0].lvc_spilled.len(),
            1,
            "the elevator rides the LVC"
        );
        // And the result is still correct.
        let mut mem = MemImage::with_words(256);
        mem.write_i32_slice(Addr(0), &(0..128).collect::<Vec<_>>());
        let params = vec![Word::from_u32(0), Word::from_u32(512)];
        let oracle = interp::run_ref(&k, &params, &mem).unwrap();
        let run = FabricMachine::new(c)
            .run(&program, LaunchInput::new(params, mem))
            .unwrap();
        assert_eq!(run.memory, oracle.memory);
        assert!(run.stats.lvc_writes > 0, "spill traffic recorded");
    }

    #[test]
    fn replication_reflects_grid_pressure() {
        // A tiny kernel should replicate many times; default cap is 16.
        let mut kb = KernelBuilder::new("tiny", Dim3::linear(32));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(out, tid, 4);
        kb.store_global(a, tid);
        let k = kb.finish().unwrap();
        let program = compile(&k, &cfg()).unwrap();
        assert!(
            program.replication >= 8,
            "tiny kernels replicate heavily, got {}",
            program.replication
        );
    }

    #[test]
    fn comm_distance_beyond_inflight_window_rejected() {
        let mut c = cfg();
        c.fabric = FabricConfig {
            inflight_threads: 16,
            ..c.fabric
        };
        let k = shift_kernel(-20, 64);
        let err = compile(&k, &c).unwrap_err();
        assert!(err.to_string().contains("deadlock"), "{err}");
    }

    #[test]
    fn eldst_long_distance_gets_loop_latency() {
        let n = 128u32;
        let mut kb = KernelBuilder::new("eld", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let zero = kb.const_i(0);
        let is_first = kb.eq_i(tid, zero);
        // Forward across 20 threads: exceeds the 16-entry token buffer.
        let win = 20u32;
        let w = kb.const_i(win as i32);
        let lane = kb.rem_i(tid, w);
        let lead = kb.eq_i(lane, zero);
        let _ = is_first;
        let group = kb.div_i(tid, w);
        let ga = kb.index_addr(inp, group, 4);
        let v = kb.from_thread_or_mem(ga, lead, Delta::new(-1), Some(win));
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, v);
        let k = kb.finish().unwrap();
        let program = compile(&k, &cfg()).unwrap();
        // shift of 1 is small: no loop. (The *window* is 20, but the hop
        // distance is 1.) So no loop latency expected here.
        assert!(program.phases[0].eldst_loop_latency.is_empty());
        check_compiled(&k, n);
    }

    #[test]
    fn compiled_tiny_kernel_is_faster_with_replication() {
        // Same kernel, replication forced to 1 vs computed: computed must
        // not be slower.
        let mut kb = KernelBuilder::new("tiny", Dim3::linear(256));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(out, tid, 4);
        kb.store_global(a, tid);
        let k = kb.finish().unwrap();
        let program = compile(&k, &cfg()).unwrap();
        let mut serial = program.clone();
        serial.replication = 1;
        let run = |p: &FabricProgram| {
            FabricMachine::new(cfg())
                .run(
                    p,
                    LaunchInput::new(vec![Word::from_u32(0)], MemImage::with_words(256)),
                )
                .unwrap()
                .stats
                .cycles
        };
        let fast = run(&program);
        let slow = run(&serial);
        assert!(
            fast < slow,
            "replication {}× should beat serial: {fast} vs {slow}",
            program.replication
        );
    }
}
