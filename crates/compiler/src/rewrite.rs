//! Graph transformation passes.
//!
//! * [`dead_node_elimination`] — drops value-producing nodes nobody
//!   consumes (unused sources, dead arithmetic), so every remaining sink is
//!   an effectful operation and thread retirement is well-defined.
//! * [`cascade_elevators`] — splits elevator nodes whose |ΔTID| exceeds the
//!   token buffer into a chain of in-budget elevator nodes (§4.3, Fig 10a).
//! * [`split_fanout`] — materializes split (SJU) nodes when a producer
//!   feeds more consumers than its crossbar switch supports.

use dmt_common::ids::{NodeId, PortIx};
use dmt_common::{Error, Result};
use dmt_dfg::node::NodeKind;
use dmt_dfg::Dfg;

/// Maximum consumers a unit's crossbar switch can feed directly; beyond
/// this the compiler inserts split nodes.
pub const MAX_FANOUT: usize = 8;

/// Rebuilds `graph` keeping only nodes satisfying `keep` (plus everything
/// they transitively need). Panics if a kept node consumes a dropped one —
/// callers must pass a consumer-closed predicate.
fn rebuild_keeping(graph: &Dfg, keep: &[bool]) -> Dfg {
    let mut out = Dfg::new();
    let mut remap: Vec<Option<NodeId>> = vec![None; graph.len()];
    for id in graph.node_ids() {
        if keep[id.index()] {
            remap[id.index()] = Some(out.add_node(*graph.kind(id)));
        }
    }
    for id in graph.node_ids() {
        if !keep[id.index()] {
            continue;
        }
        let new_to = remap[id.index()].expect("kept");
        for (port, src) in graph.inputs(id).iter().enumerate() {
            let src = src.expect("validated graph has no unwired ports");
            let new_from = remap[src.index()]
                .expect("kept node consumes a dropped producer: predicate not closed");
            out.connect(new_from, new_to, PortIx(port as u8))
                .expect("rebuild preserves well-formedness");
        }
    }
    out
}

/// Iteratively removes non-store nodes with no consumers. Returns the
/// cleaned graph and the number of nodes removed.
#[must_use]
pub fn dead_node_elimination(graph: &Dfg) -> (Dfg, usize) {
    let mut keep = vec![true; graph.len()];
    loop {
        let mut changed = false;
        for id in graph.node_ids() {
            if !keep[id.index()] {
                continue;
            }
            if matches!(graph.kind(id), NodeKind::Store(_)) {
                continue;
            }
            let live_consumers = graph.consumers(id).iter().any(|(c, _)| keep[c.index()]);
            if !live_consumers {
                keep[id.index()] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let removed = keep.iter().filter(|&&k| !k).count();
    if removed == 0 {
        return (graph.clone(), 0);
    }
    (rebuild_keeping(graph, &keep), removed)
}

/// Splits every elevator whose |shift| exceeds `token_buffer` into a chain
/// of ⌈|shift|/B⌉ elevators, each shifting at most B (Fig 10a: a distance
/// of 18 with 16-entry buffers becomes a 16-shift node feeding a 2-shift
/// node). Elevators listed in `spill` are left intact (they will ride the
/// Live Value Cache instead). Returns the rewritten graph and, for each
/// new node, the id of the original elevator it was expanded from.
pub fn cascade_elevators(
    graph: &Dfg,
    token_buffer: u32,
    spill: &[NodeId],
) -> Result<(Dfg, Vec<Option<NodeId>>)> {
    let mut out = Dfg::new();
    let mut remap: Vec<NodeId> = Vec::with_capacity(graph.len());
    let mut origin: Vec<Option<NodeId>> = Vec::new();
    // First create all nodes (chains included) so edges can be wired after.
    for id in graph.node_ids() {
        match graph.kind(id) {
            NodeKind::Elevator { comm, fallback }
                if comm.shift.unsigned_abs() > u64::from(token_buffer) && !spill.contains(&id) =>
            {
                let total = comm.shift;
                let b = i64::from(token_buffer);
                let sign = if total >= 0 { 1 } else { -1 };
                let mut remaining = total.abs();
                let mut head: Option<NodeId> = None;
                let mut last: Option<NodeId> = None;
                while remaining > 0 {
                    let seg = remaining.min(b);
                    remaining -= seg;
                    let mut c = *comm;
                    c.shift = sign * seg;
                    let n = out.add_node(NodeKind::Elevator {
                        comm: c,
                        fallback: *fallback,
                    });
                    origin.push(Some(id));
                    if let Some(prev) = last {
                        out.connect(prev, n, PortIx(0))
                            .expect("chain ports are fresh");
                    } else {
                        head = Some(n);
                    }
                    last = Some(n);
                }
                // `remap[id]` records the chain *tail* (what consumers see);
                // the head is wired to the original input below via the
                // parallel `chain_heads` table.
                let head = head.ok_or_else(|| {
                    Error::Compile(format!("elevator {id} has zero shift after cascading"))
                })?;
                chain_bounds_push(&mut remap, head, last.expect("nonempty chain"));
            }
            kind => {
                let n = out.add_node(*kind);
                origin.push(None);
                chain_bounds_push(&mut remap, n, n);
            }
        }
    }
    // remap holds pairs (head, tail) flattened; unpack.
    let heads: Vec<NodeId> = remap.iter().step_by(2).copied().collect();
    let tails: Vec<NodeId> = remap.iter().skip(1).step_by(2).copied().collect();
    for id in graph.node_ids() {
        for (port, src) in graph.inputs(id).iter().enumerate() {
            let src = src.expect("validated graph");
            out.connect(tails[src.index()], heads[id.index()], PortIx(port as u8))
                .map_err(|e| Error::Compile(format!("cascade rewiring failed: {e}")))?;
        }
    }
    Ok((out, origin))
}

fn chain_bounds_push(remap: &mut Vec<NodeId>, head: NodeId, tail: NodeId) {
    remap.push(head);
    remap.push(tail);
}

/// Inserts split (SJU) nodes so that no producer feeds more than
/// [`MAX_FANOUT`] consumer ports directly. Multi-level trees are built when
/// fan-out is very large. Returns the rewritten graph and the number of
/// split nodes added.
pub fn split_fanout(graph: &Dfg) -> Result<(Dfg, usize)> {
    // Work on a copy: repeatedly find an overloaded producer and interpose
    // a split over its excess consumers. Rebuilding edges requires a fresh
    // graph each round; fan-outs in real kernels are small, so the loop
    // converges quickly.
    let mut g = graph.clone();
    let mut added = 0usize;
    loop {
        let Some(over) = g.node_ids().find(|&id| g.fanout(id) > MAX_FANOUT) else {
            return Ok((g, added));
        };
        // Move all but (MAX_FANOUT - 1) consumers behind a split node.
        let consumers: Vec<(NodeId, PortIx)> = g.consumers(over).to_vec();
        let keep_direct = MAX_FANOUT - 1;
        let moved: Vec<(NodeId, PortIx)> = consumers[keep_direct..].to_vec();
        let mut out = Dfg::new();
        let mut remap: Vec<NodeId> = Vec::with_capacity(g.len() + 1);
        for id in g.node_ids() {
            remap.push(out.add_node(*g.kind(id)));
        }
        let split = out.add_node(NodeKind::Split);
        added += 1;
        out.connect(remap[over.index()], split, PortIx(0))
            .expect("fresh split input");
        for id in g.node_ids() {
            for (port, src) in g.inputs(id).iter().enumerate() {
                let src = src.expect("validated graph");
                let from = if src == over && moved.contains(&(id, PortIx(port as u8))) {
                    split
                } else {
                    remap[src.index()]
                };
                out.connect(from, remap[id.index()], PortIx(port as u8))
                    .map_err(|e| Error::Compile(format!("fanout rewiring failed: {e}")))?;
            }
        }
        g = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_common::geom::{Delta, Dim3};
    use dmt_common::value::Word;
    use dmt_dfg::node::{AluOp, CommConfig};
    use dmt_dfg::KernelBuilder;

    #[test]
    fn dce_removes_unused_param() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(8));
        let _unused = kb.param("unused");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(out, tid, 4);
        kb.store_global(a, tid);
        let k = kb.finish().unwrap();
        let (g, removed) = dead_node_elimination(&k.phases()[0]);
        assert_eq!(removed, 1);
        assert!(g
            .node_ids()
            .all(|id| !matches!(g.kind(id), NodeKind::Param(0))
                || !k.param_names()[0].contains("unused")
                || g.fanout(id) > 0));
    }

    #[test]
    fn dce_removes_dead_arithmetic_chains() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(8));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let dead1 = kb.add_i(tid, tid);
        let _dead2 = kb.mul_i(dead1, tid);
        let a = kb.index_addr(out, tid, 4);
        kb.store_global(a, tid);
        let k = kb.finish().unwrap();
        let before = k.phases()[0].len();
        let (g, removed) = dead_node_elimination(&k.phases()[0]);
        assert_eq!(removed, 2, "both dead nodes drop");
        assert_eq!(g.len(), before - 2);
    }

    #[test]
    fn cascade_splits_long_shift() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(64));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let v = kb.from_thread_or_const(tid, Delta::new(-18), Word::ZERO, None);
        let a = kb.index_addr(out, tid, 4);
        kb.store_global(a, v);
        let k = kb.finish().unwrap();
        let (g, origin) = cascade_elevators(&k.phases()[0], 16, &[]).unwrap();
        let shifts: Vec<i64> = g
            .node_ids()
            .filter_map(|id| g.kind(id).comm().map(|c| c.shift))
            .collect();
        assert_eq!(shifts, vec![16, 2], "18 = 16 + 2 (Fig 10a)");
        assert_eq!(origin.iter().filter(|o| o.is_some()).count(), 2);
    }

    #[test]
    fn cascade_preserves_short_shifts() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(64));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let v = kb.from_thread_or_const(tid, Delta::new(-8), Word::ZERO, None);
        let a = kb.index_addr(out, tid, 4);
        kb.store_global(a, v);
        let k = kb.finish().unwrap();
        let before = k.phases()[0].len();
        let (g, _) = cascade_elevators(&k.phases()[0], 16, &[]).unwrap();
        assert_eq!(g.len(), before);
    }

    #[test]
    fn cascade_negative_shift() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(64));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        // delta +20: receive from tid+20 → shift −20.
        let v = kb.from_thread_or_const(tid, Delta::new(20), Word::ZERO, None);
        let a = kb.index_addr(out, tid, 4);
        kb.store_global(a, v);
        let k = kb.finish().unwrap();
        let (g, _) = cascade_elevators(&k.phases()[0], 16, &[]).unwrap();
        let shifts: Vec<i64> = g
            .node_ids()
            .filter_map(|id| g.kind(id).comm().map(|c| c.shift))
            .collect();
        assert_eq!(shifts, vec![-16, -4]);
    }

    #[test]
    fn split_fanout_inserts_sju() {
        let mut g = Dfg::new();
        let src = g.add_node(NodeKind::Const(Word::ZERO));
        let one = g.add_node(NodeKind::Const(Word::TRUE));
        for _ in 0..12 {
            let n = g.add_node(NodeKind::Alu(AluOp::Add));
            g.connect(src, n, PortIx(0)).unwrap();
            g.connect(one, n, PortIx(1)).unwrap();
        }
        let (out, added) = split_fanout(&g).unwrap();
        assert!(added >= 1);
        for id in out.node_ids() {
            assert!(
                out.fanout(id) <= MAX_FANOUT,
                "fanout {} of {id} exceeds the crossbar",
                out.fanout(id)
            );
        }
        // Functional shape preserved: 12 adders remain.
        let adders = out
            .node_ids()
            .filter(|&id| matches!(out.kind(id), NodeKind::Alu(AluOp::Add)))
            .count();
        assert_eq!(adders, 12);
    }

    #[test]
    fn cascade_composition_is_semantically_identity() {
        // Composite behaviour of the cascade equals a single long elevator:
        // verified against CommConfig directly.
        let win = 32u32;
        let threads = 64u32;
        let long = CommConfig {
            shift: 18,
            delta: Delta::new(-18),
            window: win,
        };
        let seg1 = CommConfig { shift: 16, ..long };
        let seg2 = CommConfig { shift: 2, ..long };
        for t in 0..threads {
            let direct = long.source_of(t, threads);
            let composed = seg2
                .source_of(t, threads)
                .and_then(|m| seg1.source_of(m, threads));
            assert_eq!(direct, composed, "thread {t}");
        }
    }
}
