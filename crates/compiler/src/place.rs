//! Physical layout and greedy placement.
//!
//! The grid is a fixed, heterogeneous arrangement of functional units
//! (Fig 7a); the compiler binds each graph node to a free unit of its
//! class, trying to keep producers close to consumers so that token routes
//! stay short. Placement quality feeds directly into NoC hop counts and
//! therefore both performance and interconnect energy.

use dmt_common::config::{GridConfig, UnitClass};
use dmt_common::{Error, Result};
use dmt_dfg::Dfg;
use dmt_fabric::program::Coord;

/// The fixed physical layout: each slot is a grid coordinate hosting one
/// unit of a fixed class. Classes are interleaved evenly (Bresenham-style
/// weighted round-robin) so every neighbourhood has a mix of unit types,
/// as in the paper's Fig 7a floorplan.
#[derive(Debug, Clone)]
pub struct Layout {
    slots: Vec<(Coord, UnitClass)>,
    width: u32,
}

impl Layout {
    /// Builds the layout for a grid composition on a `width × width` array.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when the grid does not fit the array.
    pub fn new(grid: &GridConfig, width: u32) -> Result<Layout> {
        let total = grid.total_units();
        if total > width * width {
            return Err(Error::Config(format!(
                "{total} units do not fit a {width}×{width} placement array"
            )));
        }
        // Weighted round-robin: each class accumulates its share every
        // step; the class with the largest accumulator gets the slot.
        let classes = UnitClass::ALL;
        let counts: Vec<u32> = classes.iter().map(|&c| grid.capacity(c)).collect();
        let mut acc = vec![0i64; classes.len()];
        let mut remaining = counts.clone();
        let mut slots = Vec::with_capacity(total as usize);
        for i in 0..total {
            for (j, &count) in counts.iter().enumerate() {
                if remaining[j] > 0 {
                    acc[j] += i64::from(count);
                }
            }
            let j = (0..classes.len())
                .filter(|&j| remaining[j] > 0)
                .max_by_key(|&j| acc[j])
                .expect("remaining units exist while i < total");
            acc[j] -= i64::from(total);
            remaining[j] -= 1;
            slots.push((
                Coord {
                    x: i % width,
                    y: i / width,
                },
                classes[j],
            ));
        }
        Ok(Layout { slots, width })
    }

    /// The placement-array side length.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// All slots with their classes.
    #[must_use]
    pub fn slots(&self) -> &[(Coord, UnitClass)] {
        &self.slots
    }
}

/// Greedily places `graph` onto `layout`: nodes are visited in topological
/// order and bound to the free slot of their class closest to the centroid
/// of their already-placed producers. Sources (injected, occupying no
/// unit) are co-located with their first consumer.
///
/// # Errors
///
/// Returns [`Error::Compile`] if a class pool runs out of slots — the
/// capacity planner should have rejected the graph earlier.
pub fn place(graph: &Dfg, layout: &Layout) -> Result<Vec<Coord>> {
    let order = graph.topo_order()?;
    let mut taken = vec![false; layout.slots.len()];
    let mut coords: Vec<Option<Coord>> = vec![None; graph.len()];

    for &id in &order {
        let Some(class) = graph.kind(id).unit_class() else {
            continue; // sources placed in the second pass
        };
        // Centroid of placed producers (sources may be unplaced yet).
        let placed: Vec<Coord> = graph
            .inputs(id)
            .iter()
            .flatten()
            .filter_map(|src| coords[src.index()])
            .collect();
        let target = centroid(&placed).unwrap_or(Coord {
            x: layout.width / 2,
            y: layout.width / 2,
        });
        let slot = layout
            .slots
            .iter()
            .enumerate()
            .filter(|&(i, &(_, c))| !taken[i] && c == class)
            .min_by_key(|&(_, &(coord, _))| coord.manhattan(target))
            .map(|(i, _)| i)
            .ok_or_else(|| {
                Error::Compile(format!(
                    "no free {class} slot while placing {id} (capacity check missed this)"
                ))
            })?;
        taken[slot] = true;
        coords[id.index()] = Some(layout.slots[slot].0);
    }
    // Second pass: sources sit with their first consumer (their tokens are
    // injected straight into the consumer's input latch).
    for id in graph.node_ids() {
        if coords[id.index()].is_some() {
            continue;
        }
        let c = graph
            .consumers(id)
            .first()
            .and_then(|&(c, _)| coords[c.index()])
            .unwrap_or(Coord { x: 0, y: 0 });
        coords[id.index()] = Some(c);
    }
    Ok(coords.into_iter().map(|c| c.expect("all placed")).collect())
}

fn centroid(coords: &[Coord]) -> Option<Coord> {
    if coords.is_empty() {
        return None;
    }
    let n = coords.len() as u64;
    let sx: u64 = coords.iter().map(|c| u64::from(c.x)).sum();
    let sy: u64 = coords.iter().map(|c| u64::from(c.y)).sum();
    Some(Coord {
        x: (sx / n) as u32,
        y: (sy / n) as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_common::geom::Dim3;
    use dmt_dfg::KernelBuilder;

    #[test]
    fn layout_hosts_exact_table2_mix() {
        let grid = GridConfig::default();
        let layout = Layout::new(&grid, 12).unwrap();
        assert_eq!(layout.slots().len(), 140);
        for class in UnitClass::ALL {
            let n = layout.slots().iter().filter(|(_, c)| *c == class).count() as u32;
            assert_eq!(n, grid.capacity(class), "{class}");
        }
    }

    #[test]
    fn layout_rejects_undersized_array() {
        let grid = GridConfig::default();
        assert!(Layout::new(&grid, 10).is_err(), "100 < 140 slots");
    }

    #[test]
    fn layout_interleaves_classes() {
        // No class should occupy a long contiguous run; check the first row
        // mixes at least three classes.
        let layout = Layout::new(&GridConfig::default(), 12).unwrap();
        let first_row: std::collections::BTreeSet<_> = layout
            .slots()
            .iter()
            .filter(|(c, _)| c.y == 0)
            .map(|(_, class)| *class)
            .collect();
        assert!(first_row.len() >= 3, "row 0 classes: {first_row:?}");
    }

    #[test]
    fn placement_assigns_distinct_slots_per_class() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(8));
        let p = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(p, tid, 4);
        let b = kb.add_i(tid, tid);
        let c = kb.mul_i(b, tid);
        kb.store_global(a, c);
        let k = kb.finish().unwrap();
        let g = &k.phases()[0];
        let layout = Layout::new(&GridConfig::default(), 12).unwrap();
        let coords = place(g, &layout).unwrap();
        assert_eq!(coords.len(), g.len());
        // Occupied (non-source) nodes have pairwise distinct coordinates.
        let mut seen = std::collections::HashSet::new();
        for id in g.node_ids() {
            if g.kind(id).unit_class().is_some() {
                assert!(seen.insert(coords[id.index()]), "slot reused");
            }
        }
    }

    #[test]
    fn placement_keeps_producers_near_consumers() {
        // A simple chain should be placed far better than worst-case.
        let mut kb = KernelBuilder::new("chain", Dim3::linear(8));
        let p = kb.param("out");
        let tid = kb.thread_idx(0);
        let mut v = tid;
        for _ in 0..6 {
            v = kb.add_i(v, tid);
        }
        let a = kb.index_addr(p, tid, 4);
        kb.store_global(a, v);
        let k = kb.finish().unwrap();
        let g = &k.phases()[0];
        let layout = Layout::new(&GridConfig::default(), 12).unwrap();
        let coords = place(g, &layout).unwrap();
        // Average edge length must be far below the grid diameter (22).
        let mut total = 0u64;
        let mut edges = 0u64;
        for id in g.node_ids() {
            for &(c, _) in g.consumers(id) {
                total += coords[id.index()].manhattan(coords[c.index()]);
                edges += 1;
            }
        }
        let avg = total as f64 / edges as f64;
        assert!(avg < 6.0, "average hop distance {avg} too large");
    }
}
