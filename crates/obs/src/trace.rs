//! The bounded ring-buffer event tracer.
//!
//! Events are fixed-size [`Copy`] records pushed into a ring
//! preallocated at construction — the hot path is one bounds check and
//! one slot write, never an allocation. When the ring is full the
//! *oldest* event is overwritten (a trace's most recent window is the
//! diagnostic one) and the drop is counted, so an exported trace always
//! says how much history it lost.

use crate::profile::StoreKind;

/// Default tracer ring capacity, in events (~1.5 MiB per run).
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// One typed simulation event. Cycle stamps are simulation cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A phase began executing.
    PhaseBegin {
        /// Phase index within the program.
        phase: u32,
        /// Start cycle.
        cycle: u64,
    },
    /// A phase finished executing.
    PhaseEnd {
        /// Phase index within the program.
        phase: u32,
        /// End cycle.
        cycle: u64,
    },
    /// A periodic counter sample (aggregation window: see
    /// [`crate::DEFAULT_SAMPLE_EVERY`]). `fires` and the per-class token
    /// counts cover the window since the previous sample; the remaining
    /// counters are cumulative at `cycle`.
    Sample {
        /// Sample cycle.
        cycle: u64,
        /// Threads injected so far.
        injected: u64,
        /// Threads retired so far.
        retired: u64,
        /// Calendar-queue events pending.
        calendar: u64,
        /// Operand sets queued at firing units.
        ready: u64,
        /// Outstanding memory operations.
        outstanding: u64,
        /// Occupied matching-store / eLDST ring slots.
        ring_live: u64,
        /// Node firings in this window.
        fires: u64,
        /// Direct-edge tokens in this window.
        direct: u64,
        /// Elevator tokens in this window.
        elevator: u64,
        /// eLDST tokens in this window.
        eldst: u64,
        /// Cumulative L1 fills.
        l1_fills: u64,
        /// Cumulative L2 fills.
        l2_fills: u64,
    },
    /// A ring overflow into a spill map.
    Spill {
        /// Which store spilled.
        kind: StoreKind,
        /// Spill cycle.
        cycle: u64,
        /// The node whose store spilled.
        node: u32,
    },
}

impl TraceEvent {
    /// The event's cycle stamp.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::PhaseBegin { cycle, .. }
            | TraceEvent::PhaseEnd { cycle, .. }
            | TraceEvent::Sample { cycle, .. }
            | TraceEvent::Spill { cycle, .. } => cycle,
        }
    }
}

/// A bounded ring of [`TraceEvent`]s: drop-oldest on overflow, with a
/// drop count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tracer {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
    cap: usize,
}

impl Tracer {
    /// A ring holding at most `capacity` events (0 disables recording —
    /// every push is dropped and *not* counted, matching the
    /// zero-overhead contract of a disabled handle).
    #[must_use]
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            buf: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
            cap: capacity,
        }
    }

    /// Appends an event, overwriting (and counting) the oldest when
    /// full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Events in chronological (push) order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..].iter().chain(&self.buf[..self.head])
    }

    /// Events retained in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Oldest events overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring's capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::Spill {
            kind: StoreKind::Match,
            cycle,
            node: 0,
        }
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut t = Tracer::new(4);
        for c in 0..7 {
            t.push(ev(c));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 3);
        let cycles: Vec<u64> = t.events().map(TraceEvent::cycle).collect();
        // Events 0..=2 were overwritten; the newest four remain, in order.
        assert_eq!(cycles, vec![3, 4, 5, 6]);
    }

    #[test]
    fn ring_wraps_repeatedly_without_losing_order() {
        let mut t = Tracer::new(3);
        for c in 0..10 {
            t.push(ev(c));
        }
        let cycles: Vec<u64> = t.events().map(TraceEvent::cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
        assert_eq!(t.dropped(), 7);
    }

    #[test]
    fn zero_capacity_ring_is_inert() {
        let mut t = Tracer::new(0);
        t.push(ev(1));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut t = Tracer::new(8);
        for c in 0..5 {
            t.push(ev(c));
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.events().count(), 5);
    }
}
