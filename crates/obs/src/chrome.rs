//! Chrome-trace (Perfetto / `chrome://tracing`) export.
//!
//! Renders one or more run traces as a Chrome-trace JSON document —
//! `{"traceEvents": [...], "displayTimeUnit": "ms"}` — with one *pid*
//! per run, phase spans as `"B"`/`"E"` duration events, periodic counter
//! tracks as `"C"` events and spills as `"i"` instants. Timestamps are
//! simulation cycles (Chrome renders them as microseconds; relative
//! widths are what matters).

use crate::trace::{TraceEvent, Tracer};
use dmt_common::json::Json;

fn base(name: &str, ph: &str, pid: u64, cycle: u64) -> Json {
    Json::obj()
        .with("name", name)
        .with("ph", ph)
        .with("pid", pid)
        .with("tid", 0u64)
        .with("ts", cycle)
}

fn counter(name: &str, pid: u64, cycle: u64, args: Json) -> Json {
    base(name, "C", pid, cycle).with("args", args)
}

fn push_event(out: &mut Vec<Json>, pid: u64, ev: &TraceEvent) {
    match *ev {
        TraceEvent::PhaseBegin { phase, cycle } => {
            out.push(base(&format!("phase {phase}"), "B", pid, cycle));
        }
        TraceEvent::PhaseEnd { phase, cycle } => {
            out.push(base(&format!("phase {phase}"), "E", pid, cycle));
        }
        TraceEvent::Sample {
            cycle,
            injected,
            retired,
            calendar,
            ready,
            outstanding,
            ring_live,
            fires,
            direct,
            elevator,
            eldst,
            l1_fills,
            l2_fills,
        } => {
            out.push(counter(
                "threads",
                pid,
                cycle,
                Json::obj()
                    .with("injected", injected)
                    .with("retired", retired),
            ));
            out.push(counter(
                "engine",
                pid,
                cycle,
                Json::obj()
                    .with("calendar", calendar)
                    .with("ready", ready)
                    .with("outstanding", outstanding)
                    .with("ring_live", ring_live),
            ));
            out.push(counter(
                "window",
                pid,
                cycle,
                Json::obj()
                    .with("fires", fires)
                    .with("direct", direct)
                    .with("elevator", elevator)
                    .with("eldst", eldst),
            ));
            out.push(counter(
                "cache_fills",
                pid,
                cycle,
                Json::obj().with("l1", l1_fills).with("l2", l2_fills),
            ));
        }
        TraceEvent::Spill { kind, cycle, node } => {
            out.push(
                base(&format!("spill:{}", kind.key()), "i", pid, cycle)
                    .with("s", "t")
                    .with("args", Json::obj().with("node", u64::from(node))),
            );
        }
    }
}

/// Renders named run traces as one Chrome-trace document. Each run gets
/// its own pid with a `process_name` metadata record; a run that
/// overflowed its ring also gets a `dropped_events` instant at ts 0 so
/// the lost-history count is visible in the viewer.
#[must_use]
pub fn chrome_trace_json(runs: &[(String, &Tracer)]) -> Json {
    let mut events = Vec::new();
    for (i, (name, tracer)) in runs.iter().enumerate() {
        let pid = i as u64;
        events.push(
            Json::obj()
                .with("name", "process_name")
                .with("ph", "M")
                .with("pid", pid)
                .with("tid", 0u64)
                .with("args", Json::obj().with("name", name.as_str())),
        );
        if tracer.dropped() > 0 {
            events.push(
                base("dropped_events", "i", pid, 0)
                    .with("s", "p")
                    .with("args", Json::obj().with("count", tracer.dropped())),
            );
        }
        for ev in tracer.events() {
            push_event(&mut events, pid, ev);
        }
    }
    Json::obj()
        .with("traceEvents", Json::Arr(events))
        .with("displayTimeUnit", "ms")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::StoreKind;

    fn tracer() -> Tracer {
        let mut t = Tracer::new(16);
        t.push(TraceEvent::PhaseBegin { phase: 0, cycle: 0 });
        t.push(TraceEvent::Sample {
            cycle: 256,
            injected: 32,
            retired: 10,
            calendar: 4,
            ready: 2,
            outstanding: 1,
            ring_live: 7,
            fires: 900,
            direct: 800,
            elevator: 64,
            eldst: 16,
            l1_fills: 12,
            l2_fills: 3,
        });
        t.push(TraceEvent::Spill {
            kind: StoreKind::Match,
            cycle: 300,
            node: 5,
        });
        t.push(TraceEvent::PhaseEnd {
            phase: 0,
            cycle: 410,
        });
        t
    }

    #[test]
    fn export_round_trips_through_json_parse() {
        let t = tracer();
        let doc = chrome_trace_json(&[("dot/dmt_cgra".to_string(), &t)]);
        let text = doc.render();
        let back = Json::parse(&text).expect("exported trace must be valid JSON");
        assert_eq!(back, doc);
        // And the compact rendering parses identically too.
        assert_eq!(Json::parse(&doc.render_compact()).unwrap(), doc);
    }

    #[test]
    fn phases_become_duration_spans() {
        let t = tracer();
        let doc = chrome_trace_json(&[("run".to_string(), &t)]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phs: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("phase 0"))
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phs, vec!["B", "E"]);
        let begin = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("B"))
            .unwrap();
        assert_eq!(begin.get("ts").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn samples_fan_out_into_counter_tracks() {
        let t = tracer();
        let doc = chrome_trace_json(&[("run".to_string(), &t)]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(counters, vec!["threads", "engine", "window", "cache_fills"]);
        let window = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("window"))
            .unwrap();
        let args = window.get("args").unwrap();
        assert_eq!(args.get("fires").unwrap().as_u64(), Some(900));
        assert_eq!(args.get("eldst").unwrap().as_u64(), Some(16));
    }

    #[test]
    fn each_run_gets_metadata_and_dropped_marker() {
        let mut t = Tracer::new(2);
        for c in 0..5 {
            t.push(TraceEvent::PhaseBegin { phase: 0, cycle: c });
        }
        let full = tracer();
        let doc = chrome_trace_json(&[("a".to_string(), &full), ("b".to_string(), &t)]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let metas: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| e.get("pid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(metas, vec![0, 1]);
        let dropped = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("dropped_events"))
            .unwrap();
        assert_eq!(dropped.get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(
            dropped.get("args").unwrap().get("count").unwrap().as_u64(),
            Some(3)
        );
    }
}
