//! Hot-spot aggregation: where token volume actually concentrates.
//!
//! A [`RunProfile`] accumulates per-(phase, node) firing counts,
//! per-(phase, edge) token counts, per-class token totals, spill counts,
//! a ring-occupancy histogram and calendar-queue marks over one
//! simulation. Rankings ([`RunProfile::top_nodes`] /
//! [`RunProfile::top_edges`]) break count ties by ascending key, so the
//! tables are total-ordered and deterministic for any thread count.

use crate::hist::Histogram;
use dmt_common::json::Json;
use std::collections::HashMap;

/// The communication class of a token-carrying edge, keyed by the
/// producing node: ordinary dataflow fan-out, elevator (direct
/// inter-thread register communication, §3.1) or eLDST (memory-based
/// inter-thread communication, §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum EdgeClass {
    /// Ordinary dataflow edge.
    Direct = 0,
    /// Out of an elevator node.
    Elevator = 1,
    /// Out of an eLDST unit.
    Eldst = 2,
}

impl EdgeClass {
    /// All classes, in serialization order.
    pub const ALL: [EdgeClass; 3] = [EdgeClass::Direct, EdgeClass::Elevator, EdgeClass::Eldst];

    /// The stable artifact key.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            EdgeClass::Direct => "direct",
            EdgeClass::Elevator => "elevator",
            EdgeClass::Eldst => "eldst",
        }
    }
}

/// Which bounded store overflowed into its spill map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum StoreKind {
    /// A matching-store ring.
    Match = 0,
    /// An eLDST token-buffer ring.
    Eldst = 1,
}

impl StoreKind {
    /// All kinds, in serialization order.
    pub const ALL: [StoreKind; 2] = [StoreKind::Match, StoreKind::Eldst];

    /// The stable artifact key.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            StoreKind::Match => "matching_store",
            StoreKind::Eldst => "eldst",
        }
    }
}

/// One run's traffic aggregates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunProfile {
    /// Firing count per (phase, node).
    pub node_fires: HashMap<(u32, u32), u64>,
    /// Token count per (phase, src node, dst node).
    pub edge_tokens: HashMap<(u32, u32, u32), u64>,
    /// Token totals per [`EdgeClass`].
    pub class_tokens: [u64; 3],
    /// Spill totals per [`StoreKind`].
    pub spills: [u64; 2],
    /// Occupied-ring-slot counts at sample boundaries.
    pub ring_occupancy: Histogram,
    /// Peak calendar-queue depth observed.
    pub calendar_high_water: u64,
    /// Total events ever scheduled on the calendar queue.
    pub calendar_scheduled: u64,
    /// Phases observed.
    pub phases: u32,
    /// Final simulation cycle.
    pub cycles: u64,
}

/// Sorts a count map's entries most-trafficked first (ties by ascending
/// key) and keeps the top `k`.
fn ranked<K: Ord + Copy>(map: &HashMap<K, u64>, k: usize) -> Vec<(K, u64)> {
    let mut rows: Vec<(K, u64)> = map.iter().map(|(&key, &n)| (key, n)).collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(k);
    rows
}

impl RunProfile {
    /// The `k` hottest nodes: `((phase, node), fires)`, descending.
    #[must_use]
    pub fn top_nodes(&self, k: usize) -> Vec<((u32, u32), u64)> {
        ranked(&self.node_fires, k)
    }

    /// The `k` hottest edges: `((phase, src, dst), tokens)`, descending.
    #[must_use]
    pub fn top_edges(&self, k: usize) -> Vec<((u32, u32, u32), u64)> {
        ranked(&self.edge_tokens, k)
    }

    /// Total tokens across all classes.
    #[must_use]
    pub fn total_tokens(&self) -> u64 {
        self.class_tokens.iter().sum()
    }

    /// Serializes the profile with its top-`k` node and edge rankings —
    /// the per-job body of `BENCH_profile.json`. Fully deterministic
    /// (thread-count- and host-invariant).
    #[must_use]
    pub fn to_json(&self, k: usize) -> Json {
        let mut tokens = Json::obj();
        for class in EdgeClass::ALL {
            tokens = tokens.with(class.key(), self.class_tokens[class as usize]);
        }
        let mut spills = Json::obj();
        for kind in StoreKind::ALL {
            spills = spills.with(kind.key(), self.spills[kind as usize]);
        }
        Json::obj()
            .with("cycles", self.cycles)
            .with("phases", self.phases)
            .with("tokens", tokens)
            .with("spills", spills)
            .with("ring_occupancy", self.ring_occupancy.to_json())
            .with(
                "calendar",
                Json::obj()
                    .with("high_water", self.calendar_high_water)
                    .with("scheduled", self.calendar_scheduled),
            )
            .with(
                "top_nodes",
                Json::Arr(
                    self.top_nodes(k)
                        .into_iter()
                        .map(|((phase, node), fires)| {
                            Json::obj()
                                .with("phase", phase)
                                .with("node", node)
                                .with("fires", fires)
                        })
                        .collect(),
                ),
            )
            .with(
                "top_edges",
                Json::Arr(
                    self.top_edges(k)
                        .into_iter()
                        .map(|((phase, src, dst), tokens)| {
                            Json::obj()
                                .with("phase", phase)
                                .with("src", src)
                                .with("dst", dst)
                                .with("tokens", tokens)
                        })
                        .collect(),
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> RunProfile {
        let mut p = RunProfile {
            cycles: 100,
            phases: 1,
            ..Default::default()
        };
        p.edge_tokens.insert((0, 1, 2), 50);
        p.edge_tokens.insert((0, 2, 3), 80);
        p.edge_tokens.insert((0, 0, 1), 80);
        p.node_fires.insert((0, 2), 9);
        p.node_fires.insert((0, 1), 4);
        p.class_tokens = [200, 10, 0];
        p
    }

    #[test]
    fn rankings_are_descending_with_key_tiebreak() {
        let p = profile();
        assert_eq!(
            p.top_edges(10),
            vec![((0, 0, 1), 80), ((0, 2, 3), 80), ((0, 1, 2), 50)]
        );
        assert_eq!(p.top_edges(1), vec![((0, 0, 1), 80)]);
        assert_eq!(p.top_nodes(10), vec![((0, 2), 9), ((0, 1), 4)]);
        assert_eq!(p.total_tokens(), 210);
    }

    #[test]
    fn json_carries_rankings_and_class_totals() {
        let doc = profile().to_json(2);
        assert_eq!(doc.get("cycles").unwrap().as_u64(), Some(100));
        let tokens = doc.get("tokens").unwrap();
        assert_eq!(tokens.get("direct").unwrap().as_u64(), Some(200));
        assert_eq!(tokens.get("elevator").unwrap().as_u64(), Some(10));
        let edges = doc.get("top_edges").unwrap().as_arr().unwrap();
        assert_eq!(edges.len(), 2, "top-k truncates");
        assert_eq!(edges[0].get("tokens").unwrap().as_u64(), Some(80));
        assert_eq!(edges[0].get("src").unwrap().as_u64(), Some(0));
        // The document round-trips through the parser.
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }
}
