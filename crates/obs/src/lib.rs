//! Observability for the dMT-CGRA simulators: structured event tracing,
//! hot-spot profiling and metrics primitives.
//!
//! The cycle engines accept one [`Obs`] handle per run and report typed
//! events into it — phase boundaries, node firings, token deliveries per
//! edge class, matching-store spills, periodic counter samples (calendar
//! depth, in-flight threads, cache fills). The handle fans the stream
//! into two sinks:
//!
//! * the **tracer** ([`Tracer`]) — a bounded ring buffer of
//!   [`TraceEvent`]s exported as Chrome-trace JSON
//!   ([`chrome_trace_json`]), so a run's timeline opens directly in
//!   `chrome://tracing` / Perfetto;
//! * the **profiler** ([`RunProfile`]) — per-node and per-edge traffic
//!   aggregates, a ring-occupancy histogram and calendar-queue
//!   high-water marks, rendered into the versioned `BENCH_profile.json`
//!   artifact by the `profile_hotspots` bench binary.
//!
//! # The zero-overhead-when-disabled contract
//!
//! Every recording method begins with an `#[inline]` check of one
//! boolean and returns immediately when the handle is disabled
//! ([`Obs::disabled`]), so an unobserved simulation pays one predictable
//! branch per call site and nothing else: no allocation, no hashing, no
//! atomic traffic. The engines' `run()` entry points pass a disabled
//! handle, which is why the smoke goldens are byte-identical with and
//! without this crate compiled in, and why `bench_hotpath` wall-clock
//! stays within the CI regression tolerance. When enabled, the hot path
//! is allocation-free too: the tracer writes into a ring preallocated at
//! construction, dropping the *oldest* events on overflow and counting
//! the drops ([`Tracer::dropped`]); only the profiler's per-edge map may
//! allocate, and profiling is opt-in per run.
//!
//! The handle is plain data (`Send`), owned by exactly one run on one
//! worker thread — the shared-nothing pool discipline — so observation
//! is lock-free by construction and per-job results merge
//! deterministically by job index, independent of `--threads`.

pub mod chrome;
pub mod hist;
pub mod profile;
pub mod trace;

pub use chrome::chrome_trace_json;
pub use hist::Histogram;
pub use profile::{EdgeClass, RunProfile, StoreKind};
pub use trace::{TraceEvent, Tracer, DEFAULT_RING_CAPACITY};

/// Counter snapshot delivered by an engine at one sample boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleSample {
    /// Simulation cycle of the sample.
    pub cycle: u64,
    /// Threads injected so far.
    pub injected: u64,
    /// Threads retired so far.
    pub retired: u64,
    /// Scheduled deliveries currently pending, in *tokens*: an engine
    /// that coalesces several tokens into one calendar entry still
    /// reports every token, so the series is identical whether or not
    /// delivery is batched.
    pub calendar: u64,
    /// Operand sets queued at firing units.
    pub ready: u64,
    /// Outstanding memory operations.
    pub outstanding: u64,
    /// Cumulative L1 fills (misses serviced) so far.
    pub l1_fills: u64,
    /// Cumulative L2 fills so far.
    pub l2_fills: u64,
}

/// Cycles between periodic counter samples (the tracer's "per N cycles"
/// aggregation window for node firings and token counts).
pub const DEFAULT_SAMPLE_EVERY: u64 = 256;

/// One run's observation handle: the engines' single reporting surface.
///
/// See the crate docs for the zero-overhead-when-disabled contract.
#[derive(Debug)]
pub struct Obs {
    on: bool,
    trace_on: bool,
    profile_on: bool,
    phase: u32,
    next_sample: u64,
    sample_every: u64,
    ring_live: u64,
    fires_since: u64,
    tokens_since: [u64; 3],
    /// The bounded event ring (empty when tracing is off).
    pub tracer: Tracer,
    /// The traffic aggregates (empty when profiling is off).
    pub profile: RunProfile,
}

impl Obs {
    /// A disabled handle: every recording method is a no-op.
    #[must_use]
    pub fn disabled() -> Obs {
        Obs::with_capacity(false, false, 0)
    }

    /// A handle with the given sinks enabled and the default ring
    /// capacity ([`DEFAULT_RING_CAPACITY`]).
    #[must_use]
    pub fn new(trace: bool, profile: bool) -> Obs {
        Obs::with_capacity(trace, profile, DEFAULT_RING_CAPACITY)
    }

    /// [`Obs::new`] with an explicit tracer ring capacity (events kept
    /// before the oldest are dropped).
    #[must_use]
    pub fn with_capacity(trace: bool, profile: bool, ring_capacity: usize) -> Obs {
        Obs {
            on: trace || profile,
            trace_on: trace,
            profile_on: profile,
            phase: 0,
            next_sample: 0,
            sample_every: DEFAULT_SAMPLE_EVERY,
            ring_live: 0,
            fires_since: 0,
            tokens_since: [0; 3],
            tracer: Tracer::new(if trace { ring_capacity } else { 0 }),
            profile: RunProfile::default(),
        }
    }

    /// Whether any sink is enabled — the engines' one hot-path gate.
    #[inline]
    #[must_use]
    pub fn on(&self) -> bool {
        self.on
    }

    /// Whether the tracer ring is recording.
    #[must_use]
    pub fn is_tracing(&self) -> bool {
        self.trace_on
    }

    /// Whether traffic aggregation is recording.
    #[must_use]
    pub fn is_profiling(&self) -> bool {
        self.profile_on
    }

    /// Marks the start of phase `phase` at `cycle`. Subsequent per-node /
    /// per-edge records are attributed to this phase.
    #[inline]
    pub fn phase_begin(&mut self, phase: u32, cycle: u64) {
        if !self.on {
            return;
        }
        self.phase = phase;
        self.profile.phases = self.profile.phases.max(phase + 1);
        if self.trace_on {
            self.tracer.push(TraceEvent::PhaseBegin { phase, cycle });
        }
    }

    /// Marks the end of the current phase at `cycle`.
    #[inline]
    pub fn phase_end(&mut self, cycle: u64) {
        if self.trace_on {
            self.tracer.push(TraceEvent::PhaseEnd {
                phase: self.phase,
                cycle,
            });
        }
    }

    /// Records one node firing (aggregated: the tracer reports firings
    /// per sample window, the profiler per (phase, node) totals).
    #[inline]
    pub fn node_fire(&mut self, node: u32) {
        self.node_fires(node, 1);
    }

    /// Records `count` firings of `node` in one call — what the
    /// block-firing fabric engine reports, so a node's whole ready block
    /// costs the same bookkeeping as a single per-token firing.
    /// Aggregates are count-denominated, so batched and per-token
    /// reporting produce identical windows and profiles.
    #[inline]
    pub fn node_fires(&mut self, node: u32, count: u64) {
        if !self.on {
            return;
        }
        self.fires_since += count;
        if self.profile_on {
            *self
                .profile
                .node_fires
                .entry((self.phase, node))
                .or_insert(0) += count;
        }
    }

    /// Records one token delivery on the `src → dst` edge of the given
    /// class.
    #[inline]
    pub fn edge_token(&mut self, class: EdgeClass, src: u32, dst: u32) {
        self.edge_tokens(class, src, dst, 1);
    }

    /// Records `count` token deliveries on the `src → dst` edge in one
    /// call (the block-send counterpart of [`Obs::node_fires`]).
    #[inline]
    pub fn edge_tokens(&mut self, class: EdgeClass, src: u32, dst: u32, count: u64) {
        if !self.on {
            return;
        }
        self.tokens_since[class as usize] += count;
        if self.profile_on {
            self.profile.class_tokens[class as usize] += count;
            *self
                .profile
                .edge_tokens
                .entry((self.phase, src, dst))
                .or_insert(0) += count;
        }
    }

    /// Records a matching-store / eLDST ring overflow into the spill map
    /// at `node`.
    #[inline]
    pub fn spill(&mut self, kind: StoreKind, cycle: u64, node: u32) {
        if !self.on {
            return;
        }
        if self.profile_on {
            self.profile.spills[kind as usize] += 1;
        }
        if self.trace_on {
            self.tracer.push(TraceEvent::Spill { kind, cycle, node });
        }
    }

    /// Records one ring slot becoming occupied (matching store or eLDST
    /// buffer). Occupancy is sampled into the profile histogram at each
    /// sample boundary.
    #[inline]
    pub fn ring_claim(&mut self) {
        if self.on {
            self.ring_live += 1;
        }
    }

    /// Records one ring slot being freed.
    #[inline]
    pub fn ring_free(&mut self) {
        if self.on {
            self.ring_live = self.ring_live.saturating_sub(1);
        }
    }

    /// Tracks the calendar queue's depth high-water mark (call once per
    /// cycle; cheap — one compare).
    #[inline]
    pub fn calendar_depth(&mut self, depth: u64) {
        if self.profile_on && depth > self.profile.calendar_high_water {
            self.profile.calendar_high_water = depth;
        }
    }

    /// Adds a phase's total scheduled-event count to the profile.
    #[inline]
    pub fn calendar_scheduled(&mut self, total: u64) {
        if self.profile_on {
            self.profile.calendar_scheduled += total;
        }
    }

    /// Tokens recorded since the last flushed sample window, per edge
    /// class (`EdgeClass` discriminant order). The tracer flushes these
    /// into `Sample` events at each boundary; the run's final partial
    /// window stays here, so for any completed run
    /// `Σ sampled tokens + Σ pending == Σ profile.class_tokens` exactly
    /// — the invariant tying the tracer's windowed counters to the
    /// profiler's per-edge aggregates.
    #[must_use]
    pub fn pending_window_tokens(&self) -> [u64; 3] {
        self.tokens_since
    }

    /// Whether `cycle` has reached the next sample boundary — guard the
    /// (comparatively expensive) gathering of a [`CycleSample`] with
    /// this.
    #[inline]
    #[must_use]
    pub fn due(&self, cycle: u64) -> bool {
        self.on && cycle >= self.next_sample
    }

    /// Ingests one counter sample: updates the occupancy histogram,
    /// emits an aggregated tracer event (firings and per-class tokens
    /// since the previous sample) and schedules the next boundary.
    pub fn sample(&mut self, s: CycleSample) {
        if !self.on {
            return;
        }
        self.next_sample = s.cycle + self.sample_every;
        if self.profile_on {
            self.profile.ring_occupancy.record(self.ring_live);
        }
        if self.trace_on {
            self.tracer.push(TraceEvent::Sample {
                cycle: s.cycle,
                injected: s.injected,
                retired: s.retired,
                calendar: s.calendar,
                ready: s.ready,
                outstanding: s.outstanding,
                ring_live: self.ring_live,
                fires: self.fires_since,
                direct: self.tokens_since[EdgeClass::Direct as usize],
                elevator: self.tokens_since[EdgeClass::Elevator as usize],
                eldst: self.tokens_since[EdgeClass::Eldst as usize],
                l1_fills: s.l1_fills,
                l2_fills: s.l2_fills,
            });
        }
        self.fires_since = 0;
        self.tokens_since = [0; 3];
    }

    /// Seals the observation at the run's final cycle.
    pub fn finish(&mut self, cycles: u64) {
        if self.profile_on {
            self.profile.cycles = cycles;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let mut obs = Obs::disabled();
        assert!(!obs.on());
        obs.phase_begin(0, 0);
        obs.node_fire(3);
        obs.edge_token(EdgeClass::Direct, 1, 2);
        obs.spill(StoreKind::Match, 5, 1);
        obs.ring_claim();
        obs.calendar_depth(99);
        assert!(!obs.due(1_000_000));
        obs.sample(CycleSample::default());
        obs.finish(123);
        assert_eq!(obs.tracer.events().count(), 0);
        assert_eq!(obs.tracer.dropped(), 0);
        assert_eq!(obs.profile, RunProfile::default());
    }

    #[test]
    fn sampling_aggregates_and_resets_window_counters() {
        let mut obs = Obs::new(true, true);
        obs.phase_begin(0, 0);
        for _ in 0..5 {
            obs.node_fire(1);
        }
        obs.edge_token(EdgeClass::Direct, 1, 2);
        obs.edge_token(EdgeClass::Elevator, 2, 3);
        assert!(obs.due(0));
        obs.sample(CycleSample {
            cycle: 100,
            ..Default::default()
        });
        assert!(!obs.due(100 + DEFAULT_SAMPLE_EVERY - 1));
        assert!(obs.due(100 + DEFAULT_SAMPLE_EVERY));
        let events: Vec<_> = obs.tracer.events().collect();
        let Some(TraceEvent::Sample {
            fires,
            direct,
            elevator,
            ..
        }) = events.last()
        else {
            panic!("expected a sample event, got {events:?}");
        };
        assert_eq!((*fires, *direct, *elevator), (5, 1, 1));
        // A second sample reports only the new window.
        obs.sample(CycleSample {
            cycle: 400,
            ..Default::default()
        });
        let Some(TraceEvent::Sample { fires, .. }) = obs.tracer.events().last() else {
            panic!("expected a sample event");
        };
        assert_eq!(*fires, 0);
    }

    #[test]
    fn profile_attributes_traffic_per_phase() {
        let mut obs = Obs::new(false, true);
        obs.phase_begin(0, 0);
        obs.node_fire(4);
        obs.edge_token(EdgeClass::Direct, 1, 4);
        obs.phase_end(50);
        obs.phase_begin(1, 60);
        obs.edge_token(EdgeClass::Direct, 1, 4);
        obs.spill(StoreKind::Eldst, 70, 2);
        obs.finish(80);
        assert_eq!(obs.profile.phases, 2);
        assert_eq!(obs.profile.cycles, 80);
        assert_eq!(obs.profile.node_fires[&(0, 4)], 1);
        assert_eq!(obs.profile.edge_tokens[&(0, 1, 4)], 1);
        assert_eq!(obs.profile.edge_tokens[&(1, 1, 4)], 1);
        assert_eq!(obs.profile.spills[StoreKind::Eldst as usize], 1);
        // Tracing off: the ring stays empty.
        assert_eq!(obs.tracer.events().count(), 0);
    }

    #[test]
    fn counted_reports_equal_repeated_singular_reports() {
        // The block-firing engine's counted calls must aggregate exactly
        // like N singular ones — windows, profile maps and class totals.
        let mut per_token = Obs::new(false, true);
        per_token.phase_begin(0, 0);
        for _ in 0..7 {
            per_token.node_fire(4);
            per_token.edge_token(EdgeClass::Direct, 4, 9);
        }
        per_token.finish(10);

        let mut counted = Obs::new(false, true);
        counted.phase_begin(0, 0);
        counted.node_fires(4, 7);
        counted.edge_tokens(EdgeClass::Direct, 4, 9, 7);
        counted.finish(10);

        assert_eq!(per_token.profile, counted.profile);
        assert_eq!(
            per_token.pending_window_tokens(),
            counted.pending_window_tokens()
        );
    }

    #[test]
    fn counted_reports_on_disabled_handle_record_nothing() {
        let mut obs = Obs::disabled();
        obs.node_fires(1, 100);
        obs.edge_tokens(EdgeClass::Eldst, 1, 2, 100);
        assert_eq!(obs.profile, RunProfile::default());
    }

    #[test]
    fn ring_occupancy_follows_claims_and_frees() {
        let mut obs = Obs::new(false, true);
        obs.ring_claim();
        obs.ring_claim();
        obs.ring_claim();
        obs.ring_free();
        obs.sample(CycleSample {
            cycle: 0,
            ..Default::default()
        });
        assert_eq!(obs.profile.ring_occupancy.count(), 1);
        assert_eq!(obs.profile.ring_occupancy.max(), 2);
    }
}
