//! A log2-bucketed histogram for occupancies and latencies.
//!
//! Thirty-three fixed buckets cover the whole `u64` range — bucket 0
//! holds the value 0, bucket *i* (1..=32) holds `2^(i-1) ..= 2^i - 1`,
//! and everything at or beyond `2^32` lands in the last bucket —
//! so recording is branch-light, allocation-free and `O(1)`. Used for
//! matching-store ring occupancies in run profiles and per-verb request
//! latencies in the `dmt-serve` `metrics` verb.

use dmt_common::json::Json;

const BUCKETS: usize = 33;

/// A fixed-size power-of-two histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - u64::leading_zeros(v)) as usize).min(BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of bucket `i`.
    fn upper(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i == BUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.total += 1;
        if v > self.max {
            self.max = v;
        }
    }

    /// Values recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest value recorded (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Occupied buckets as `(inclusive_upper_bound, count)` pairs, in
    /// ascending bound order.
    #[must_use]
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::upper(i), n))
            .collect()
    }

    /// Serializes as `{"count", "max", "buckets": [{"le", "n"}...]}`
    /// (empty buckets omitted).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", self.total)
            .with("max", self.max)
            .with(
                "buckets",
                Json::Arr(
                    self.buckets()
                        .into_iter()
                        .map(|(le, n)| Json::obj().with("le", le).with("n", n))
                        .collect(),
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), u64::MAX);
        let b = h.buckets();
        // 0 | 1 | 2..=3 (two values) | 4..=7 (two) | 8..=15 | 512..=1023 | top
        assert_eq!(
            b,
            vec![
                (0, 1),
                (1, 1),
                (3, 2),
                (7, 2),
                (15, 1),
                (1023, 1),
                (u64::MAX, 1)
            ]
        );
    }

    #[test]
    fn json_shape_omits_empty_buckets() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(6);
        let doc = h.to_json();
        assert_eq!(doc.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("max").unwrap().as_u64(), Some(6));
        let buckets = doc.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("le").unwrap().as_u64(), Some(7));
        assert_eq!(buckets[0].get("n").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn empty_histogram_serializes_cleanly() {
        let h = Histogram::new();
        let doc = h.to_json();
        assert_eq!(doc.get("count").unwrap().as_u64(), Some(0));
        assert!(doc.get("buckets").unwrap().as_arr().unwrap().is_empty());
    }
}
