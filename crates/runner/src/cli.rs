//! The shared command-line surface of every experiment binary.
//!
//! Flags are **declared, not hand-parsed**: a [`Flag`] names one flag,
//! says whether it takes a value, and carries its help line. The
//! [`SHARED_FLAGS`] registry declares the runner flags every binary
//! accepts (`--threads/--json/--cache/--no-cache/--progress/--smoke/`
//! `--trace/--faults/--deadline-cycles`);
//! a binary with flags of its own passes one more `&[Flag]` table to
//! [`RunnerArgs::from_env_registry`] and reads them back with
//! [`RunnerArgs::has_flag`] / [`RunnerArgs::flag_value`]. From the two
//! tables the parser generates `--help` output and the usage line shown
//! on errors, so help text can never drift from what is actually
//! parsed, and unknown-`--flag` rejection is uniform across all
//! binaries (a misspelled flag must not silently degrade the run).
//!
//! Unrecognized bare arguments pass through in order (`rest`) for
//! binary-specific positionals (e.g. `sweep_csv token_buffer`).

use crate::cache::Cache;
use std::path::PathBuf;

/// One declared command-line flag: its name, whether it takes a value,
/// and the help line `--help` prints for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flag {
    /// The flag itself, `--`-prefixed (e.g. `"--threads"`).
    pub name: &'static str,
    /// Value placeholder for the help text (`None` for a switch).
    pub value_name: Option<&'static str>,
    /// One-line description shown by `--help`.
    pub help: &'static str,
}

impl Flag {
    /// Declares a boolean switch (`--per-phase`).
    #[must_use]
    pub const fn switch(name: &'static str, help: &'static str) -> Flag {
        Flag {
            name,
            value_name: None,
            help,
        }
    }

    /// Declares a flag that takes a value (`--iters N`, also accepted
    /// as `--iters=N`).
    #[must_use]
    pub const fn with_value(
        name: &'static str,
        value_name: &'static str,
        help: &'static str,
    ) -> Flag {
        Flag {
            name,
            value_name: Some(value_name),
            help,
        }
    }

    /// The flag as it appears in a usage line: `--iters N` or
    /// `--per-phase`.
    fn synopsis(&self) -> String {
        match self.value_name {
            Some(v) => format!("{} {v}", self.name),
            None => self.name.to_owned(),
        }
    }

    /// The two-column help line for this flag.
    fn help_line(&self) -> String {
        format!("  {:<22} {}\n", self.synopsis(), self.help)
    }
}

/// The runner flags every experiment binary accepts. Binary-specific
/// tables compose with (never override) this one.
pub const SHARED_FLAGS: &[Flag] = &[
    Flag::with_value(
        "--threads",
        "N",
        "worker count (default: DMT_THREADS, else all cores)",
    ),
    Flag::with_value("--json", "PATH", "also write the versioned JSON artifact"),
    Flag::with_value(
        "--cache",
        "DIR",
        "content-addressed result cache (or DMT_CACHE=DIR)",
    ),
    Flag::switch("--no-cache", "disable caching even when DMT_CACHE is set"),
    Flag::switch(
        "--progress",
        "live per-job progress on stderr (or DMT_PROGRESS=1)",
    ),
    Flag::switch("--smoke", "reduced suite, where the binary supports it"),
    Flag::with_value(
        "--trace",
        "PATH",
        "export a Chrome-trace JSON of the runs (or DMT_TRACE=1|PATH)",
    ),
    Flag::with_value(
        "--faults",
        "SPEC",
        "deterministic fault injection, e.g. 'seed=1;cache.read:nth=2' (or DMT_FAULTS)",
    ),
    Flag::with_value(
        "--deadline-cycles",
        "N",
        "per-job simulated-cycle budget; exceeding jobs report timed_out",
    ),
];

/// The generated `--help` text: usage line, the shared registry, then
/// the binary's own table.
#[must_use]
pub fn help_text(binary: &str, extra: &[Flag]) -> String {
    let mut s = format!("{}\n\nrunner flags:\n", usage_line(binary, extra));
    for f in SHARED_FLAGS {
        s.push_str(&f.help_line());
    }
    if !extra.is_empty() {
        s.push_str("\nbinary flags:\n");
        for f in extra {
            s.push_str(&f.help_line());
        }
    }
    s.push('\n');
    s.push_str(&Flag::switch("--help", "print this help").help_line());
    s
}

/// The generated one-line usage summary (also shown on parse errors).
#[must_use]
pub fn usage_line(binary: &str, extra: &[Flag]) -> String {
    let mut s = format!("usage: {binary}");
    for f in SHARED_FLAGS.iter().chain(extra) {
        s.push_str(&format!(" [{}]", f.synopsis()));
    }
    s.push_str(" [args...]");
    s
}

// The binary name for usage/help lines, recovered from argv[0].
fn binary_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .map(std::path::Path::new)
        .and_then(|p| p.file_stem())
        .map_or_else(|| "dmt".to_owned(), |s| s.to_string_lossy().into_owned())
}

/// Parsed runner arguments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunnerArgs {
    /// `--threads N`: requested worker count.
    pub threads: Option<usize>,
    /// `--json PATH`: artifact destination.
    pub json: Option<PathBuf>,
    /// `--cache DIR`: result-cache directory.
    pub cache: Option<PathBuf>,
    /// `--no-cache`: caching off, overriding `DMT_CACHE`.
    pub no_cache: bool,
    /// `--smoke`: reduced suite.
    pub smoke: bool,
    /// `--trace PATH`: Chrome-trace destination.
    pub trace: Option<PathBuf>,
    /// `--faults SPEC`: deterministic fault-injection plan.
    pub faults: Option<String>,
    /// `--deadline-cycles N`: per-job simulated-cycle budget.
    pub deadline_cycles: Option<u64>,
    /// `--progress`: live stderr progress.
    pub progress: bool,
    /// `--help`/`-h`: print generated help and exit.
    pub help: bool,
    /// Binary-specific registered flags, in order of appearance
    /// (`(name, value)`; read via [`RunnerArgs::has_flag`] and
    /// [`RunnerArgs::flag_value`]).
    pub extras: Vec<(String, Option<String>)>,
    /// Positional / binary-specific arguments, in order.
    pub rest: Vec<String>,
}

impl RunnerArgs {
    /// Parses the process arguments (`std::env::args`, program name
    /// skipped) against the shared registry only: prints generated help
    /// on `--help`, exits with status 2 on malformed flags.
    #[must_use]
    pub fn from_env() -> RunnerArgs {
        RunnerArgs::from_env_registry(&[])
    }

    /// [`RunnerArgs::from_env`] with a binary-specific flag table on
    /// top of [`SHARED_FLAGS`]. The binary name in help/usage output is
    /// recovered from `argv[0]`.
    #[must_use]
    pub fn from_env_registry(extra: &[Flag]) -> RunnerArgs {
        let binary = binary_name();
        match RunnerArgs::parse_registry(std::env::args().skip(1), extra) {
            Ok(a) if a.help => {
                print!("{}", help_text(&binary, extra));
                std::process::exit(0);
            }
            Ok(a) => {
                // Every binary honors fault injection: the plan installs
                // into the process-global registry here, so seams deep in
                // the stack (cache I/O, pool execution) see it without
                // any per-binary wiring.
                if let Err(e) = a.install_faults() {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
                a
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{}", usage_line(&binary, extra));
                std::process::exit(2);
            }
        }
    }

    /// [`RunnerArgs::from_env`] with binary-specific boolean flags
    /// named as bare strings.
    #[deprecated(
        since = "0.1.0",
        note = "declare a `&[Flag]` table and use from_env_registry (generated --help)"
    )]
    #[must_use]
    pub fn from_env_with(extra_flags: &[&str]) -> RunnerArgs {
        let binary = binary_name();
        #[allow(deprecated)]
        match RunnerArgs::parse_with(std::env::args().skip(1), extra_flags) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{}", usage_line(&binary, &[]));
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument list against the shared registry.
    ///
    /// # Errors
    ///
    /// Returns a message for a missing or malformed flag value.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<RunnerArgs, String> {
        RunnerArgs::parse_registry(args, &[])
    }

    /// True when a registered binary-specific flag was given.
    #[must_use]
    pub fn has_flag(&self, flag: &str) -> bool {
        self.extras.iter().any(|(n, _)| n == flag) || self.rest.iter().any(|a| a == flag)
    }

    /// The value of a registered value-taking flag (last occurrence
    /// wins, matching the usual CLI override idiom).
    #[must_use]
    pub fn flag_value(&self, flag: &str) -> Option<&str> {
        self.extras
            .iter()
            .rev()
            .find(|(n, _)| n == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    /// [`RunnerArgs::parse`] with binary-specific boolean pass-through
    /// flags named as bare strings.
    ///
    /// # Errors
    ///
    /// Returns a message for a missing or malformed flag value.
    #[deprecated(
        since = "0.1.0",
        note = "declare a `&[Flag]` table and use parse_registry"
    )]
    pub fn parse_with(
        args: impl IntoIterator<Item = String>,
        extra_flags: &[&str],
    ) -> Result<RunnerArgs, String> {
        // The legacy table is switches only, so occurrences can be
        // lifted out before registry parsing without reordering any
        // value that follows its flag.
        let mut out_extras = Vec::new();
        let remaining: Vec<String> = args
            .into_iter()
            .filter(|a| {
                let registered = extra_flags.contains(&a.as_str());
                if registered {
                    out_extras.push((a.clone(), None));
                }
                !registered
            })
            .collect();
        let mut out = RunnerArgs::parse_registry(remaining, &[])?;
        out.extras = out_extras;
        Ok(out)
    }

    /// Parses an argument list against [`SHARED_FLAGS`] plus a
    /// binary-specific flag table. `--help`/`-h` set
    /// [`RunnerArgs::help`] instead of erroring.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown flag or a missing or malformed
    /// flag value.
    pub fn parse_registry(
        args: impl IntoIterator<Item = String>,
        extra: &[Flag],
    ) -> Result<RunnerArgs, String> {
        let mut out = RunnerArgs::default();
        let mut it = args.into_iter();
        'args: while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                out.help = true;
                continue;
            }
            for f in extra {
                if arg == f.name {
                    let v = match f.value_name {
                        Some(_) => Some(it.next().ok_or(format!("{} needs a value", f.name))?),
                        None => None,
                    };
                    out.extras.push((f.name.to_owned(), v));
                    continue 'args;
                }
                if f.value_name.is_some() {
                    if let Some(v) = arg.strip_prefix(f.name).and_then(|r| r.strip_prefix('=')) {
                        out.extras.push((f.name.to_owned(), Some(v.to_owned())));
                        continue 'args;
                    }
                }
            }
            match arg.as_str() {
                "--smoke" => out.smoke = true,
                "--progress" => out.progress = true,
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    out.threads = Some(parse_threads(&v)?);
                }
                s if s.starts_with("--threads=") => {
                    out.threads = Some(parse_threads(&s["--threads=".len()..])?);
                }
                "--json" => {
                    let v = it.next().ok_or("--json needs a value")?;
                    out.json = Some(PathBuf::from(v));
                }
                s if s.starts_with("--json=") => {
                    out.json = Some(PathBuf::from(&s["--json=".len()..]));
                }
                "--cache" => {
                    let v = it.next().ok_or("--cache needs a directory")?;
                    out.cache = Some(parse_cache_dir(&v)?);
                }
                s if s.starts_with("--cache=") => {
                    out.cache = Some(parse_cache_dir(&s["--cache=".len()..])?);
                }
                "--no-cache" => out.no_cache = true,
                "--trace" => {
                    let v = it.next().ok_or("--trace needs a path")?;
                    out.trace = Some(PathBuf::from(v));
                }
                s if s.starts_with("--trace=") => {
                    out.trace = Some(PathBuf::from(&s["--trace=".len()..]));
                }
                "--faults" => {
                    let v = it.next().ok_or("--faults needs a spec")?;
                    out.faults = Some(parse_faults_spec(&v)?);
                }
                s if s.starts_with("--faults=") => {
                    out.faults = Some(parse_faults_spec(&s["--faults=".len()..])?);
                }
                "--deadline-cycles" => {
                    let v = it.next().ok_or("--deadline-cycles needs a value")?;
                    out.deadline_cycles = Some(parse_deadline(&v)?);
                }
                s if s.starts_with("--deadline-cycles=") => {
                    out.deadline_cycles = Some(parse_deadline(&s["--deadline-cycles=".len()..])?);
                }
                // A misspelled flag must not silently degrade the run
                // (e.g. `--thread 8` quietly using all cores); only bare
                // positionals pass through to the binary.
                s if s.starts_with("--") => return Err(format!("unknown flag {s}")),
                _ => out.rest.push(arg),
            }
        }
        if out.cache.is_some() && out.no_cache {
            return Err("--cache and --no-cache are mutually exclusive".to_owned());
        }
        Ok(out)
    }

    /// The effective worker count: `--threads`, else `DMT_THREADS`, else
    /// the machine's available parallelism (min 1).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// The progress reporter these arguments ask for: `--progress` forces
    /// it on, otherwise the `DMT_PROGRESS` environment variable decides.
    #[must_use]
    pub fn progress_reporter(&self) -> crate::Progress {
        if self.progress {
            crate::Progress::new(true)
        } else {
            crate::Progress::from_env()
        }
    }

    /// The effective cache directory: `--no-cache` wins, then `--cache
    /// DIR`, then a non-empty `DMT_CACHE` environment variable, else no
    /// caching.
    #[must_use]
    pub fn cache_dir(&self) -> Option<PathBuf> {
        if self.no_cache {
            return None;
        }
        if let Some(dir) = &self.cache {
            return Some(dir.clone());
        }
        match std::env::var("DMT_CACHE") {
            Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
            _ => None,
        }
    }

    /// Opens the result cache these arguments ask for. An unusable
    /// directory **degrades** to counted no-cache operation with one
    /// stderr line instead of aborting the run — hours of simulation
    /// must not die over a full disk, and the degradation is visible in
    /// the cache report (`[degraded: no-cache]`).
    #[must_use]
    pub fn cache_store(&self) -> Option<Cache> {
        Some(Cache::open_or_degraded(&self.cache_dir()?))
    }

    /// Installs the fault-injection plan these arguments ask for:
    /// `--faults SPEC` wins, else `DMT_FAULTS`, else the failpoints stay
    /// disabled (the zero-overhead path).
    ///
    /// # Errors
    ///
    /// Returns the parse message for a malformed spec — a CLI must
    /// refuse to run with a half-applied fault schedule.
    pub fn install_faults(&self) -> Result<bool, String> {
        if let Some(spec) = &self.faults {
            dmt_common::faults::install(dmt_common::faults::FaultPlan::parse(spec)?);
            return Ok(true);
        }
        dmt_common::faults::init_from_env()
    }

    /// The effective Chrome-trace destination: `--trace PATH` wins, then
    /// the `DMT_TRACE` environment variable — the historical tracing
    /// switch, kept as an alias. An empty value, `1` or `true` selects
    /// the default `artifacts/trace.json`; `0`/`false` disables; any
    /// other value is the destination path.
    #[must_use]
    pub fn trace_path(&self) -> Option<PathBuf> {
        if let Some(p) = &self.trace {
            return Some(p.clone());
        }
        match std::env::var("DMT_TRACE") {
            Err(_) => None,
            Ok(v) if v == "0" || v.eq_ignore_ascii_case("false") => None,
            Ok(v) if v.is_empty() || v == "1" || v.eq_ignore_ascii_case("true") => {
                Some(PathBuf::from("artifacts/trace.json"))
            }
            Ok(v) => Some(PathBuf::from(v)),
        }
    }

    /// Exits with status 2 when `--trace` was passed to a binary that
    /// does not export run traces (`DMT_TRACE` alone is ignored there,
    /// like `DMT_CACHE` — an environment default must not break binaries
    /// it cannot apply to).
    pub fn forbid_trace(&self, binary: &str) {
        if self.trace.is_some() {
            eprintln!("error: {binary} does not support --trace (use fig11_speedup)");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--cache`/`--no-cache` was passed to a
    /// binary that does not run a cacheable job grid (`DMT_CACHE` alone
    /// is ignored there, like `DMT_THREADS` — an environment default must
    /// not break binaries it cannot apply to).
    pub fn forbid_cache(&self, binary: &str) {
        if self.cache.is_some() || self.no_cache {
            eprintln!("error: {binary} does not support --cache/--no-cache (no job grid)");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--json` was passed to a binary that has
    /// no machine-readable output — a requested recording must never be
    /// silently dropped.
    pub fn forbid_json(&self, binary: &str) {
        if self.json.is_some() {
            eprintln!("error: {binary} does not support --json (no job-grid artifact)");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--progress` was passed to a binary whose
    /// runs bypass the job pool's progress hook.
    pub fn forbid_progress(&self, binary: &str) {
        if self.progress {
            eprintln!("error: {binary} does not support --progress");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--smoke` was passed to a binary that has
    /// no reduced suite.
    pub fn forbid_smoke(&self, binary: &str) {
        if self.smoke {
            eprintln!("error: {binary} does not support --smoke");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--threads` was passed to a binary that
    /// does not simulate anything (nothing to parallelize).
    pub fn forbid_threads(&self, binary: &str) {
        if self.threads.is_some() {
            eprintln!("error: {binary} does not support --threads (no simulation grid)");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--deadline-cycles` was passed to a
    /// binary whose runs bypass the limit-aware executor — a requested
    /// budget must never be silently ignored.
    pub fn forbid_deadline(&self, binary: &str) {
        if self.deadline_cycles.is_some() {
            eprintln!("error: {binary} does not support --deadline-cycles");
            std::process::exit(2);
        }
    }
}

// An empty directory would resolve entries to bare `<hash>.json` in the
// working directory — reject it like an absent value (an empty
// `DMT_CACHE` already means "no caching").
fn parse_cache_dir(v: &str) -> Result<PathBuf, String> {
    if v.is_empty() {
        return Err("--cache needs a directory".to_owned());
    }
    Ok(PathBuf::from(v))
}

// The spec is validated at parse time (not at install time) so a typo'd
// site name dies with the usage line, before any simulation starts.
fn parse_faults_spec(v: &str) -> Result<String, String> {
    dmt_common::faults::FaultPlan::parse(v)?;
    Ok(v.to_owned())
}

fn parse_deadline(v: &str) -> Result<u64, String> {
    match v.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "invalid deadline {v:?} (need a cycle count >= 1; omit the flag for unlimited)"
        )),
    }
}

fn parse_threads(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("invalid thread count {v:?} (need an integer >= 1)")),
    }
}

/// Resolves a worker count: explicit request > `DMT_THREADS` > available
/// cores. Malformed environment values are ignored rather than fatal —
/// an experiment must not die over a stale shell export.
#[must_use]
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("DMT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> RunnerArgs {
        RunnerArgs::parse(args.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn parses_all_flags_and_passthrough() {
        let a = parse(&[
            "--threads",
            "4",
            "--json",
            "out/x.json",
            "--cache",
            "artifacts/cache",
            "--smoke",
            "--progress",
            "token_buffer",
        ]);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.json, Some(PathBuf::from("out/x.json")));
        assert_eq!(a.cache, Some(PathBuf::from("artifacts/cache")));
        assert!(!a.no_cache);
        assert!(a.smoke && a.progress);
        assert_eq!(a.rest, vec!["token_buffer"]);
    }

    #[test]
    fn parses_inline_forms() {
        let a = parse(&["--threads=2", "--json=artifacts/a.json", "--cache=c"]);
        assert_eq!(a.threads, Some(2));
        assert_eq!(a.json, Some(PathBuf::from("artifacts/a.json")));
        assert_eq!(a.cache, Some(PathBuf::from("c")));
    }

    #[test]
    fn cache_flags_resolve_and_conflict() {
        let a = parse(&["--no-cache"]);
        assert!(a.no_cache);
        // --no-cache wins over any environment default.
        assert_eq!(a.cache_dir(), None);
        let a = parse(&["--cache", "dir"]);
        assert_eq!(a.cache_dir(), Some(PathBuf::from("dir")));
        // Asking for both at once is a contradiction, not a precedence
        // puzzle.
        assert!(RunnerArgs::parse(
            [
                "--cache".to_owned(),
                "d".to_owned(),
                "--no-cache".to_owned()
            ]
            .into_iter()
        )
        .is_err());
        assert!(RunnerArgs::parse(["--cache".to_owned()].into_iter()).is_err());
        // An empty directory must not scatter entries into the cwd.
        assert!(RunnerArgs::parse(["--cache=".to_owned()].into_iter()).is_err());
        assert!(RunnerArgs::parse(["--cache".to_owned(), String::new()].into_iter()).is_err());
    }

    #[test]
    fn trace_flag_parses_and_wins_over_env() {
        let a = parse(&["--trace", "artifacts/t.json"]);
        assert_eq!(a.trace, Some(PathBuf::from("artifacts/t.json")));
        assert_eq!(a.trace_path(), Some(PathBuf::from("artifacts/t.json")));
        let a = parse(&["--trace=x.json"]);
        assert_eq!(a.trace, Some(PathBuf::from("x.json")));
        // No flag, no env (the test env does not set DMT_TRACE): off.
        assert!(RunnerArgs::parse(["--trace".to_owned()]).is_err());
    }

    #[test]
    fn rejects_unknown_flags_but_keeps_positionals() {
        assert!(RunnerArgs::parse(["--thread".to_owned(), "8".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--Smoke".to_owned()]).is_err());
        let a = parse(&["token_buffer"]);
        assert_eq!(a.rest, vec!["token_buffer"]);
    }

    #[test]
    fn registry_accepts_switches_and_value_flags() {
        const FLAGS: &[Flag] = &[
            Flag::switch("--per-phase", "per-phase breakdown"),
            Flag::with_value("--iters", "N", "iteration count"),
        ];
        // Unregistered: still an error (a typo must not degrade the run).
        assert!(RunnerArgs::parse(["--per-phase".to_owned()]).is_err());
        let a = RunnerArgs::parse_registry(
            ["--threads", "2", "--per-phase", "--iters", "5"]
                .iter()
                .map(ToString::to_string),
            FLAGS,
        )
        .unwrap();
        assert_eq!(a.threads, Some(2));
        assert!(a.has_flag("--per-phase"));
        assert!(!a.has_flag("--other"));
        assert_eq!(a.flag_value("--iters"), Some("5"));
        assert_eq!(a.flag_value("--per-phase"), None);
        // Inline form and last-occurrence-wins for value flags.
        let a = RunnerArgs::parse_registry(
            ["--iters=3", "--iters", "7"]
                .iter()
                .map(ToString::to_string),
            FLAGS,
        )
        .unwrap();
        assert_eq!(a.flag_value("--iters"), Some("7"));
        // A registered value flag with no value is an error, and
        // registration does not leak to other unknown flags.
        assert!(RunnerArgs::parse_registry(["--iters".to_owned()].into_iter(), FLAGS).is_err());
        assert!(RunnerArgs::parse_registry(["--nope".to_owned()].into_iter(), FLAGS).is_err());
    }

    #[test]
    fn legacy_bare_string_registration_still_works() {
        #![allow(deprecated)]
        let a = RunnerArgs::parse_with(
            [
                "--threads".to_owned(),
                "2".to_owned(),
                "--per-phase".to_owned(),
            ],
            &["--per-phase"],
        )
        .unwrap();
        assert_eq!(a.threads, Some(2));
        assert!(a.has_flag("--per-phase"));
        assert!(RunnerArgs::parse_with(["--nope".to_owned()], &["--per-phase"]).is_err());
    }

    #[test]
    fn help_is_parsed_not_errored_and_text_is_generated() {
        let a = parse(&["--help"]);
        assert!(a.help);
        let a = parse(&["-h"]);
        assert!(a.help);
        const FLAGS: &[Flag] = &[Flag::with_value("--iters", "N", "timing repetitions")];
        let text = help_text("bench_hotpath", FLAGS);
        // Every registered flag appears with its help line; the usage
        // line leads.
        assert!(text.starts_with("usage: bench_hotpath"));
        for f in SHARED_FLAGS.iter().chain(FLAGS) {
            assert!(text.contains(f.name), "help must mention {}", f.name);
            assert!(text.contains(f.help), "help must describe {}", f.name);
        }
        assert!(usage_line("bench_hotpath", FLAGS).contains("[--iters N]"));
    }

    #[test]
    fn faults_and_deadline_flags_parse_and_validate() {
        let a = parse(&[
            "--faults",
            "cache.read:nth=1;seed=3",
            "--deadline-cycles",
            "500",
        ]);
        assert_eq!(a.faults.as_deref(), Some("cache.read:nth=1;seed=3"));
        assert_eq!(a.deadline_cycles, Some(500));
        let a = parse(&["--faults=pool.exec:prob=0.5", "--deadline-cycles=1"]);
        assert_eq!(a.faults.as_deref(), Some("pool.exec:prob=0.5"));
        assert_eq!(a.deadline_cycles, Some(1));
        // A typo'd site name dies at the CLI with the parse message,
        // long before any simulation starts.
        let err = RunnerArgs::parse(["--faults=bogus:nth=1".to_owned()]).unwrap_err();
        assert!(err.contains("unknown fault site"), "{err}");
        assert!(RunnerArgs::parse(["--faults".to_owned()]).is_err());
        // Deadline 0 would time out every job before cycle 0 — reject.
        assert!(RunnerArgs::parse(["--deadline-cycles".to_owned(), "0".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--deadline-cycles=x".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--deadline-cycles".to_owned()]).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(RunnerArgs::parse(["--threads".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--threads".to_owned(), "0".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--threads=x".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--json".to_owned()]).is_err());
    }

    #[test]
    fn explicit_threads_win() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn threads_zero_is_a_cli_error_not_a_pool_panic() {
        // Regression guard: the pool asserts `threads >= 1`, so a zero
        // worker count must die at the CLI with a message, in both
        // spellings, long before a job grid is built.
        for argv in [&["--threads", "0"][..], &["--threads=0"][..]] {
            let err = RunnerArgs::parse(argv.iter().map(ToString::to_string))
                .expect_err("--threads 0 must be rejected");
            assert!(err.contains("invalid thread count"), "{err}");
            assert!(err.contains(">= 1"), "{err}");
        }
        // And the resolver never hands the pool a zero even when a
        // caller bypasses parsing.
        assert_eq!(resolve_threads(Some(0)), 1);
    }
}
