//! The shared command-line surface of every experiment binary.
//!
//! All `dmt-bench` binaries accept the same runner flags:
//!
//! * `--threads N` — worker count (default: `DMT_THREADS`, else all cores);
//! * `--json PATH` — also write the versioned JSON artifact to `PATH`;
//! * `--progress` — live per-job progress on stderr (or `DMT_PROGRESS=1`);
//! * `--smoke` — reduced suite, where the binary supports it.
//!
//! Unrecognized arguments are passed through in order (`rest`) for
//! binary-specific positionals (e.g. `sweep_csv token_buffer`).

use std::path::PathBuf;

/// Parsed runner arguments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunnerArgs {
    /// `--threads N`: requested worker count.
    pub threads: Option<usize>,
    /// `--json PATH`: artifact destination.
    pub json: Option<PathBuf>,
    /// `--smoke`: reduced suite.
    pub smoke: bool,
    /// `--progress`: live stderr progress.
    pub progress: bool,
    /// Positional / binary-specific arguments, in order.
    pub rest: Vec<String>,
}

impl RunnerArgs {
    /// Parses the process arguments (`std::env::args`, program name
    /// skipped), exiting with status 2 on malformed flags.
    #[must_use]
    pub fn from_env() -> RunnerArgs {
        match RunnerArgs::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: [--threads N] [--json PATH] [--progress] [--smoke] [args...]");
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument list.
    ///
    /// # Errors
    ///
    /// Returns a message for a missing or malformed flag value.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<RunnerArgs, String> {
        let mut out = RunnerArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--smoke" => out.smoke = true,
                "--progress" => out.progress = true,
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    out.threads = Some(parse_threads(&v)?);
                }
                s if s.starts_with("--threads=") => {
                    out.threads = Some(parse_threads(&s["--threads=".len()..])?);
                }
                "--json" => {
                    let v = it.next().ok_or("--json needs a value")?;
                    out.json = Some(PathBuf::from(v));
                }
                s if s.starts_with("--json=") => {
                    out.json = Some(PathBuf::from(&s["--json=".len()..]));
                }
                // A misspelled flag must not silently degrade the run
                // (e.g. `--thread 8` quietly using all cores); only bare
                // positionals pass through to the binary.
                s if s.starts_with("--") => return Err(format!("unknown flag {s}")),
                _ => out.rest.push(arg),
            }
        }
        Ok(out)
    }

    /// The effective worker count: `--threads`, else `DMT_THREADS`, else
    /// the machine's available parallelism (min 1).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// The progress reporter these arguments ask for: `--progress` forces
    /// it on, otherwise the `DMT_PROGRESS` environment variable decides.
    #[must_use]
    pub fn progress_reporter(&self) -> crate::Progress {
        if self.progress {
            crate::Progress::new(true)
        } else {
            crate::Progress::from_env()
        }
    }

    /// Exits with status 2 when `--json` was passed to a binary that has
    /// no machine-readable output — a requested recording must never be
    /// silently dropped.
    pub fn forbid_json(&self, binary: &str) {
        if self.json.is_some() {
            eprintln!("error: {binary} does not support --json (no job-grid artifact)");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--progress` was passed to a binary whose
    /// runs bypass the job pool's progress hook.
    pub fn forbid_progress(&self, binary: &str) {
        if self.progress {
            eprintln!("error: {binary} does not support --progress");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--smoke` was passed to a binary that has
    /// no reduced suite.
    pub fn forbid_smoke(&self, binary: &str) {
        if self.smoke {
            eprintln!("error: {binary} does not support --smoke");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--threads` was passed to a binary that
    /// does not simulate anything (nothing to parallelize).
    pub fn forbid_threads(&self, binary: &str) {
        if self.threads.is_some() {
            eprintln!("error: {binary} does not support --threads (no simulation grid)");
            std::process::exit(2);
        }
    }
}

fn parse_threads(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("invalid thread count {v:?} (need an integer >= 1)")),
    }
}

/// Resolves a worker count: explicit request > `DMT_THREADS` > available
/// cores. Malformed environment values are ignored rather than fatal —
/// an experiment must not die over a stale shell export.
#[must_use]
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("DMT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> RunnerArgs {
        RunnerArgs::parse(args.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn parses_all_flags_and_passthrough() {
        let a = parse(&[
            "--threads",
            "4",
            "--json",
            "out/x.json",
            "--smoke",
            "--progress",
            "token_buffer",
        ]);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.json, Some(PathBuf::from("out/x.json")));
        assert!(a.smoke && a.progress);
        assert_eq!(a.rest, vec!["token_buffer"]);
    }

    #[test]
    fn parses_inline_forms() {
        let a = parse(&["--threads=2", "--json=artifacts/a.json"]);
        assert_eq!(a.threads, Some(2));
        assert_eq!(a.json, Some(PathBuf::from("artifacts/a.json")));
    }

    #[test]
    fn rejects_unknown_flags_but_keeps_positionals() {
        assert!(RunnerArgs::parse(["--thread".to_owned(), "8".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--Smoke".to_owned()]).is_err());
        let a = parse(&["token_buffer"]);
        assert_eq!(a.rest, vec!["token_buffer"]);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(RunnerArgs::parse(["--threads".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--threads".to_owned(), "0".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--threads=x".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--json".to_owned()]).is_err());
    }

    #[test]
    fn explicit_threads_win() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }
}
