//! The shared command-line surface of every experiment binary.
//!
//! All `dmt-bench` binaries accept the same runner flags:
//!
//! * `--threads N` — worker count (default: `DMT_THREADS`, else all cores);
//! * `--json PATH` — also write the versioned JSON artifact to `PATH`;
//! * `--cache DIR` — content-addressed result cache (or `DMT_CACHE=DIR`);
//! * `--no-cache` — disable caching even when `DMT_CACHE` is set;
//! * `--progress` — live per-job progress on stderr (or `DMT_PROGRESS=1`);
//! * `--smoke` — reduced suite, where the binary supports it.
//!
//! Unrecognized arguments are passed through in order (`rest`) for
//! binary-specific positionals (e.g. `sweep_csv token_buffer`). Unknown
//! `--flags` are rejected; a binary with its own boolean flags registers
//! them via [`RunnerArgs::from_env_with`] (e.g. `report_utilization
//! --per-phase`) and reads them back with [`RunnerArgs::has_flag`].

use crate::cache::Cache;
use std::path::PathBuf;

/// Parsed runner arguments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunnerArgs {
    /// `--threads N`: requested worker count.
    pub threads: Option<usize>,
    /// `--json PATH`: artifact destination.
    pub json: Option<PathBuf>,
    /// `--cache DIR`: result-cache directory.
    pub cache: Option<PathBuf>,
    /// `--no-cache`: caching off, overriding `DMT_CACHE`.
    pub no_cache: bool,
    /// `--smoke`: reduced suite.
    pub smoke: bool,
    /// `--progress`: live stderr progress.
    pub progress: bool,
    /// Positional / binary-specific arguments, in order.
    pub rest: Vec<String>,
}

impl RunnerArgs {
    /// Parses the process arguments (`std::env::args`, program name
    /// skipped), exiting with status 2 on malformed flags.
    #[must_use]
    pub fn from_env() -> RunnerArgs {
        RunnerArgs::from_env_with(&[])
    }

    /// [`RunnerArgs::from_env`] with binary-specific boolean flags:
    /// flags named in `extra_flags` pass through to [`RunnerArgs::rest`]
    /// instead of being rejected as unknown (check them with
    /// [`RunnerArgs::has_flag`]). Every other `--flag` is still an error.
    #[must_use]
    pub fn from_env_with(extra_flags: &[&str]) -> RunnerArgs {
        match RunnerArgs::parse_with(std::env::args().skip(1), extra_flags) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--threads N] [--json PATH] [--cache DIR | --no-cache] \
                     [--progress] [--smoke] [args...]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument list.
    ///
    /// # Errors
    ///
    /// Returns a message for a missing or malformed flag value.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<RunnerArgs, String> {
        RunnerArgs::parse_with(args, &[])
    }

    /// True when a passed-through binary-specific flag (see
    /// [`RunnerArgs::from_env_with`]) was given.
    #[must_use]
    pub fn has_flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// [`RunnerArgs::parse`] with binary-specific boolean pass-through
    /// flags.
    ///
    /// # Errors
    ///
    /// Returns a message for a missing or malformed flag value.
    pub fn parse_with(
        args: impl IntoIterator<Item = String>,
        extra_flags: &[&str],
    ) -> Result<RunnerArgs, String> {
        let mut out = RunnerArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if extra_flags.contains(&arg.as_str()) {
                out.rest.push(arg);
                continue;
            }
            match arg.as_str() {
                "--smoke" => out.smoke = true,
                "--progress" => out.progress = true,
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    out.threads = Some(parse_threads(&v)?);
                }
                s if s.starts_with("--threads=") => {
                    out.threads = Some(parse_threads(&s["--threads=".len()..])?);
                }
                "--json" => {
                    let v = it.next().ok_or("--json needs a value")?;
                    out.json = Some(PathBuf::from(v));
                }
                s if s.starts_with("--json=") => {
                    out.json = Some(PathBuf::from(&s["--json=".len()..]));
                }
                "--cache" => {
                    let v = it.next().ok_or("--cache needs a directory")?;
                    out.cache = Some(parse_cache_dir(&v)?);
                }
                s if s.starts_with("--cache=") => {
                    out.cache = Some(parse_cache_dir(&s["--cache=".len()..])?);
                }
                "--no-cache" => out.no_cache = true,
                // A misspelled flag must not silently degrade the run
                // (e.g. `--thread 8` quietly using all cores); only bare
                // positionals pass through to the binary.
                s if s.starts_with("--") => return Err(format!("unknown flag {s}")),
                _ => out.rest.push(arg),
            }
        }
        if out.cache.is_some() && out.no_cache {
            return Err("--cache and --no-cache are mutually exclusive".to_owned());
        }
        Ok(out)
    }

    /// The effective worker count: `--threads`, else `DMT_THREADS`, else
    /// the machine's available parallelism (min 1).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// The progress reporter these arguments ask for: `--progress` forces
    /// it on, otherwise the `DMT_PROGRESS` environment variable decides.
    #[must_use]
    pub fn progress_reporter(&self) -> crate::Progress {
        if self.progress {
            crate::Progress::new(true)
        } else {
            crate::Progress::from_env()
        }
    }

    /// The effective cache directory: `--no-cache` wins, then `--cache
    /// DIR`, then a non-empty `DMT_CACHE` environment variable, else no
    /// caching.
    #[must_use]
    pub fn cache_dir(&self) -> Option<PathBuf> {
        if self.no_cache {
            return None;
        }
        if let Some(dir) = &self.cache {
            return Some(dir.clone());
        }
        match std::env::var("DMT_CACHE") {
            Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
            _ => None,
        }
    }

    /// Opens the result cache these arguments ask for, exiting with
    /// status 2 when the requested directory cannot be created — a run
    /// the user asked to cache must not silently run uncached.
    #[must_use]
    pub fn cache_store(&self) -> Option<Cache> {
        let dir = self.cache_dir()?;
        match Cache::open(&dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("error: cannot open cache directory {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
    }

    /// Exits with status 2 when `--cache`/`--no-cache` was passed to a
    /// binary that does not run a cacheable job grid (`DMT_CACHE` alone
    /// is ignored there, like `DMT_THREADS` — an environment default must
    /// not break binaries it cannot apply to).
    pub fn forbid_cache(&self, binary: &str) {
        if self.cache.is_some() || self.no_cache {
            eprintln!("error: {binary} does not support --cache/--no-cache (no job grid)");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--json` was passed to a binary that has
    /// no machine-readable output — a requested recording must never be
    /// silently dropped.
    pub fn forbid_json(&self, binary: &str) {
        if self.json.is_some() {
            eprintln!("error: {binary} does not support --json (no job-grid artifact)");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--progress` was passed to a binary whose
    /// runs bypass the job pool's progress hook.
    pub fn forbid_progress(&self, binary: &str) {
        if self.progress {
            eprintln!("error: {binary} does not support --progress");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--smoke` was passed to a binary that has
    /// no reduced suite.
    pub fn forbid_smoke(&self, binary: &str) {
        if self.smoke {
            eprintln!("error: {binary} does not support --smoke");
            std::process::exit(2);
        }
    }

    /// Exits with status 2 when `--threads` was passed to a binary that
    /// does not simulate anything (nothing to parallelize).
    pub fn forbid_threads(&self, binary: &str) {
        if self.threads.is_some() {
            eprintln!("error: {binary} does not support --threads (no simulation grid)");
            std::process::exit(2);
        }
    }
}

// An empty directory would resolve entries to bare `<hash>.json` in the
// working directory — reject it like an absent value (an empty
// `DMT_CACHE` already means "no caching").
fn parse_cache_dir(v: &str) -> Result<PathBuf, String> {
    if v.is_empty() {
        return Err("--cache needs a directory".to_owned());
    }
    Ok(PathBuf::from(v))
}

fn parse_threads(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("invalid thread count {v:?} (need an integer >= 1)")),
    }
}

/// Resolves a worker count: explicit request > `DMT_THREADS` > available
/// cores. Malformed environment values are ignored rather than fatal —
/// an experiment must not die over a stale shell export.
#[must_use]
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("DMT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> RunnerArgs {
        RunnerArgs::parse(args.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn parses_all_flags_and_passthrough() {
        let a = parse(&[
            "--threads",
            "4",
            "--json",
            "out/x.json",
            "--cache",
            "artifacts/cache",
            "--smoke",
            "--progress",
            "token_buffer",
        ]);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.json, Some(PathBuf::from("out/x.json")));
        assert_eq!(a.cache, Some(PathBuf::from("artifacts/cache")));
        assert!(!a.no_cache);
        assert!(a.smoke && a.progress);
        assert_eq!(a.rest, vec!["token_buffer"]);
    }

    #[test]
    fn parses_inline_forms() {
        let a = parse(&["--threads=2", "--json=artifacts/a.json", "--cache=c"]);
        assert_eq!(a.threads, Some(2));
        assert_eq!(a.json, Some(PathBuf::from("artifacts/a.json")));
        assert_eq!(a.cache, Some(PathBuf::from("c")));
    }

    #[test]
    fn cache_flags_resolve_and_conflict() {
        let a = parse(&["--no-cache"]);
        assert!(a.no_cache);
        // --no-cache wins over any environment default.
        assert_eq!(a.cache_dir(), None);
        let a = parse(&["--cache", "dir"]);
        assert_eq!(a.cache_dir(), Some(PathBuf::from("dir")));
        // Asking for both at once is a contradiction, not a precedence
        // puzzle.
        assert!(RunnerArgs::parse(
            [
                "--cache".to_owned(),
                "d".to_owned(),
                "--no-cache".to_owned()
            ]
            .into_iter()
        )
        .is_err());
        assert!(RunnerArgs::parse(["--cache".to_owned()].into_iter()).is_err());
        // An empty directory must not scatter entries into the cwd.
        assert!(RunnerArgs::parse(["--cache=".to_owned()].into_iter()).is_err());
        assert!(RunnerArgs::parse(["--cache".to_owned(), String::new()].into_iter()).is_err());
    }

    #[test]
    fn rejects_unknown_flags_but_keeps_positionals() {
        assert!(RunnerArgs::parse(["--thread".to_owned(), "8".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--Smoke".to_owned()]).is_err());
        let a = parse(&["token_buffer"]);
        assert_eq!(a.rest, vec!["token_buffer"]);
    }

    #[test]
    fn extra_flags_pass_through_only_when_registered() {
        // Unregistered: still an error (a typo must not degrade the run).
        assert!(RunnerArgs::parse(["--per-phase".to_owned()]).is_err());
        // Registered: passes through to rest, composing with shared flags.
        let a = RunnerArgs::parse_with(
            [
                "--threads".to_owned(),
                "2".to_owned(),
                "--per-phase".to_owned(),
            ],
            &["--per-phase"],
        )
        .unwrap();
        assert_eq!(a.threads, Some(2));
        assert!(a.has_flag("--per-phase"));
        assert!(!a.has_flag("--other"));
        // Registration does not leak to other unknown flags.
        assert!(RunnerArgs::parse_with(["--nope".to_owned()], &["--per-phase"]).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(RunnerArgs::parse(["--threads".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--threads".to_owned(), "0".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--threads=x".to_owned()]).is_err());
        assert!(RunnerArgs::parse(["--json".to_owned()]).is_err());
    }

    #[test]
    fn explicit_threads_win() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn threads_zero_is_a_cli_error_not_a_pool_panic() {
        // Regression guard: the pool asserts `threads >= 1`, so a zero
        // worker count must die at the CLI with a message, in both
        // spellings, long before a job grid is built.
        for argv in [&["--threads", "0"][..], &["--threads=0"][..]] {
            let err = RunnerArgs::parse(argv.iter().map(ToString::to_string))
                .expect_err("--threads 0 must be rejected");
            assert!(err.contains("invalid thread count"), "{err}");
            assert!(err.contains(">= 1"), "{err}");
        }
        // And the resolver never hands the pool a zero even when a
        // caller bypasses parsing.
        assert_eq!(resolve_threads(Some(0)), 1);
    }
}
