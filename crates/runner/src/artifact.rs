//! Versioned JSON artifacts: the machine-readable record of a run.
//!
//! The build environment is hermetic (no serde); the tiny JSON document
//! model this writer is built on lives in [`dmt_common::json`] (objects
//! preserve insertion order, strings are escaped per RFC 8259, floats
//! print in Rust's shortest round-trip form) and is re-exported here as
//! [`Json`] for every existing call site.
//!
//! # Artifact schema (version 2)
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "generator": "dmt-runner",
//!   "suite": "fig11_speedup",                 // producing harness
//!   "meta": {
//!     "threads": 2,                           // worker count used
//!     "wall_ms": 1234,                        // wall-clock of the pool run
//!     "seed": 42
//!   },
//!   "jobs": [                                 // one entry per job, in job order
//!     {
//!       "index": 0,                           // position in the job grid
//!       "bench": "scan",                      // Table 3 benchmark name
//!       "arch": "fermi_sm",                   // Arch::key()
//!       "seed": 42,                           // workload seed
//!       "config_hash": "0x9c1d...",           // stable SystemConfig hash
//!       "job_hash": "0x03fa...",              // stable (bench, arch, seed, config) hash
//!       "status": "ok",                       // "ok" | "infeasible"
//!       "error": "...",                       // present iff status == "infeasible"
//!       "kernel": "scan_naive",               // present iff status == "ok", as are:
//!       "cycles": 123456,                     // whole-run core cycles
//!       "total_j": 1.25e-6,                   // whole-run energy (joules)
//!       "energy": { "compute_j": ..., "fetch_decode_j": ..., "register_file_j": ...,
//!                   "token_transport_j": ..., "scratchpad_j": ..., "cache_j": ...,
//!                   "dram_j": ..., "static_j": ... },
//!       "stats": { "<every RunStats counter>": <u64>, ... },   // whole-run totals
//!       "phases": [                           // one entry per barrier-delimited phase,
//!         { "<every RunStats counter>": <u64>, ... },          // in execution order
//!         ...
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! The `"stats"` and each `"phases"` entry carry exactly the counter set
//! of [`dmt_common::stats`] (generated from the same
//! `for_each_run_counter!` list, in the same order), and the per-counter
//! sums of `"phases"` equal `"stats"` exactly — the engines derive the
//! totals *from* the phases. A single-phase kernel carries one phase
//! entry equal to its totals.
//!
//! ## v1 → v2 migration
//!
//! Version 2 adds the per-job `"phases"` array; every v1 field is
//! unchanged in name, type, position and — for all existing benchmarks —
//! value (cycles, energy and every totals counter are byte-identical).
//! Consumers that only read totals can treat a v2 document as v1 plus an
//! extra key; consumers that validate `schema_version` must accept 2.
//! The result cache treats v1 entries as misses (full recompute, never a
//! parse error), so a warm v1 cache directory transparently rewrites
//! itself as v2.
//!
//! Everything under `"jobs"` is deterministic — independent of thread
//! count, wall clock and host — which is what makes artifacts diffable
//! across runs; the volatile parts are quarantined under `"meta"`.

use crate::job::{JobOutcome, JobSpec};
use dmt_common::stats::{PhaseStats, RunStats};
use dmt_core::energy::EnergyReport;

pub use dmt_common::json::{write_json, Json};

/// The schema version emitted by this writer. Version 2 added the
/// per-job `"phases"` array (see the module docs for the migration
/// note); the result cache invalidates entries of any other version.
pub const SCHEMA_VERSION: u64 = 2;

// Both counter serializers are generated from `for_each_run_counter!` —
// the one counter list in `dmt_common::stats` — so the artifact cannot
// drift from the structs: adding a counter there adds it here, in the
// same position.
macro_rules! gen_counter_serializers {
    ($(($field:ident, $doc:literal)),+ $(,)?) => {
        /// Serializes every [`RunStats`] totals counter, in the canonical
        /// counter order (generated from the one counter list; the
        /// per-phase breakdown is serialized separately as `"phases"`).
        #[must_use]
        pub fn stats_json(s: &RunStats) -> Json {
            let mut j = Json::obj();
            $(j = j.with(stringify!($field), s.$field);)+
            j
        }

        /// Serializes one [`PhaseStats`] record — the same counter set
        /// and order as [`stats_json`].
        #[must_use]
        pub fn phase_stats_json(p: &PhaseStats) -> Json {
            let mut j = Json::obj();
            $(j = j.with(stringify!($field), p.$field);)+
            j
        }
    };
}

dmt_common::for_each_run_counter!(gen_counter_serializers);

/// Serializes the per-phase breakdown as the `"phases"` array (one
/// counter object per phase, execution order).
#[must_use]
pub fn phases_json(s: &RunStats) -> Json {
    Json::Arr(s.per_phase.iter().map(phase_stats_json).collect())
}

/// Serializes an energy breakdown (exhaustive, like [`stats_json`]).
#[must_use]
pub fn energy_json(e: &EnergyReport) -> Json {
    let EnergyReport {
        compute_j,
        fetch_decode_j,
        register_file_j,
        token_transport_j,
        scratchpad_j,
        cache_j,
        dram_j,
        static_j,
    } = *e;
    Json::obj()
        .with("compute_j", compute_j)
        .with("fetch_decode_j", fetch_decode_j)
        .with("register_file_j", register_file_j)
        .with("token_transport_j", token_transport_j)
        .with("scratchpad_j", scratchpad_j)
        .with("cache_j", cache_j)
        .with("dram_j", dram_j)
        .with("static_j", static_j)
}

/// Appends one outcome's fields — `status`, then `error` or the full
/// `kernel`/`cycles`/`total_j`/`energy`/`stats`/`phases` block — to an
/// object. The single definition of the per-job measurement shape,
/// shared by the artifact `"jobs"` array and the result-cache entries so
/// the two can never drift (a cache hit must re-render byte-identically
/// into an artifact).
#[must_use]
pub fn with_outcome(doc: Json, outcome: &JobOutcome) -> Json {
    let doc = doc.with("status", outcome.status());
    match outcome {
        JobOutcome::Infeasible(e) | JobOutcome::Failed(e) | JobOutcome::TimedOut(e) => {
            doc.with("error", e.as_str())
        }
        JobOutcome::Completed(m) => doc
            .with("kernel", m.kernel.as_str())
            .with("cycles", m.cycles())
            .with("total_j", m.total_joules())
            .with("energy", energy_json(&m.energy))
            .with("stats", stats_json(&m.stats))
            .with("phases", phases_json(&m.stats)),
    }
}

/// One run's worth of jobs plus the volatile metadata, ready to write.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The producing harness (e.g. `"fig11_speedup"`).
    pub suite: String,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock of the pool run, in milliseconds.
    pub wall_ms: u64,
    /// Headline seed.
    pub seed: u64,
    /// Specs and their outcomes, in job order.
    pub jobs: Vec<(JobSpec, JobOutcome)>,
}

impl Artifact {
    /// Assembles an artifact from parallel spec/outcome vectors.
    ///
    /// # Panics
    ///
    /// Panics when the vectors disagree in length (a harness bug).
    #[must_use]
    pub fn new(
        suite: impl Into<String>,
        threads: usize,
        wall_ms: u64,
        seed: u64,
        specs: Vec<JobSpec>,
        outcomes: Vec<JobOutcome>,
    ) -> Artifact {
        assert_eq!(specs.len(), outcomes.len(), "spec/outcome length mismatch");
        Artifact {
            suite: suite.into(),
            threads,
            wall_ms,
            seed,
            jobs: specs.into_iter().zip(outcomes).collect(),
        }
    }

    /// The deterministic `"jobs"` array: thread-count- and host-invariant.
    #[must_use]
    pub fn jobs_json(&self) -> Json {
        Json::Arr(
            self.jobs
                .iter()
                .enumerate()
                .map(|(index, (spec, outcome))| {
                    let j = Json::obj()
                        .with("index", index)
                        .with("bench", spec.bench.as_str())
                        .with("arch", spec.arch.key())
                        .with("seed", spec.seed)
                        .with("config_hash", format!("{:#018x}", spec.config_hash()))
                        .with("job_hash", format!("{:#018x}", spec.job_hash()));
                    with_outcome(j, outcome)
                })
                .collect(),
        )
    }

    /// The complete document, schema version 2 (see the module docs).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("generator", "dmt-runner")
            .with("suite", self.suite.as_str())
            .with(
                "meta",
                Json::obj()
                    .with("threads", self.threads)
                    .with("wall_ms", self.wall_ms)
                    .with("seed", self.seed),
            )
            .with("jobs", self.jobs_json())
    }

    /// Writes the rendered document to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_json(path, &self.to_json())
    }
}

/// [`write_json`] with the experiment binaries' shared `--json` policy:
/// panic on failure (a requested recording must never be dropped with
/// exit 0), one uniform stderr line on success.
///
/// # Panics
///
/// Panics when the document cannot be written.
pub fn write_json_logged(path: &std::path::Path, doc: &Json) {
    write_json(path, doc).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("[dmt-runner] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::{Arch, SystemConfig};

    #[test]
    fn artifact_document_shape() {
        use crate::job::JobMetrics;
        let spec = JobSpec::new("scan", Arch::DmtCgra, SystemConfig::default(), 42);
        let ok = JobOutcome::completed(JobMetrics {
            kernel: "scan_naive".into(),
            stats: dmt_common::stats::RunStats {
                cycles: 10,
                ..Default::default()
            },
            energy: dmt_core::energy::EnergyReport::default(),
        });
        let bad = JobOutcome::Infeasible("window too small".into());
        let art = Artifact::new("unit", 2, 5, 42, vec![spec.clone(), spec], vec![ok, bad]);
        let text = art.to_json().render();
        assert!(text.contains("\"schema_version\": 2"), "{text}");
        assert!(text.contains("\"suite\": \"unit\""), "{text}");
        assert!(text.contains("\"phases\": ["), "{text}");
        assert!(text.contains("\"status\": \"ok\""), "{text}");
        assert!(text.contains("\"status\": \"infeasible\""), "{text}");
        assert!(text.contains("\"error\": \"window too small\""), "{text}");
        assert!(text.contains("\"cycles\": 10"), "{text}");
        assert!(text.contains("\"config_hash\": \"0x"), "{text}");
    }

    #[test]
    fn artifact_documents_round_trip_through_parse() {
        use crate::job::JobMetrics;
        let spec = JobSpec::new("scan", Arch::DmtCgra, SystemConfig::default(), 42);
        let ok = JobOutcome::completed(JobMetrics {
            kernel: "scan_naive".into(),
            stats: RunStats {
                cycles: 123_456,
                l1_hits: 99,
                ..Default::default()
            },
            energy: dmt_core::energy::EnergyReport {
                compute_j: 1.25e-6,
                static_j: 3.0,
                ..Default::default()
            },
        });
        let art = Artifact::new("unit", 2, 5, 42, vec![spec], vec![ok]);
        let text = art.to_json().render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.render(), text, "parse must preserve the document");
        let job = &parsed.get("jobs").unwrap().as_arr().unwrap()[0];
        assert_eq!(job.get("cycles").unwrap().as_u64(), Some(123_456));
        assert_eq!(
            job.get("energy")
                .unwrap()
                .get("compute_j")
                .unwrap()
                .as_f64(),
            Some(1.25e-6)
        );
    }

    #[test]
    fn jobs_json_has_no_volatile_fields() {
        let spec = JobSpec::new("scan", Arch::FermiSm, SystemConfig::default(), 1);
        let art = Artifact::new(
            "unit",
            8,
            999,
            1,
            vec![spec],
            vec![JobOutcome::Infeasible("x".into())],
        );
        let jobs = art.jobs_json().render();
        assert!(!jobs.contains("wall_ms"));
        assert!(!jobs.contains("threads"));
    }
}
