//! Versioned JSON artifacts: the machine-readable record of a run.
//!
//! The build environment is hermetic (no serde), so this module carries a
//! deliberately tiny JSON document model ([`Json`]) and serializer —
//! objects preserve insertion order, strings are escaped per RFC 8259,
//! floats print in Rust's shortest round-trip form.
//!
//! # Artifact schema (version 2)
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "generator": "dmt-runner",
//!   "suite": "fig11_speedup",                 // producing harness
//!   "meta": {
//!     "threads": 2,                           // worker count used
//!     "wall_ms": 1234,                        // wall-clock of the pool run
//!     "seed": 42
//!   },
//!   "jobs": [                                 // one entry per job, in job order
//!     {
//!       "index": 0,                           // position in the job grid
//!       "bench": "scan",                      // Table 3 benchmark name
//!       "arch": "fermi_sm",                   // Arch::key()
//!       "seed": 42,                           // workload seed
//!       "config_hash": "0x9c1d...",           // stable SystemConfig hash
//!       "job_hash": "0x03fa...",              // stable (bench, arch, seed, config) hash
//!       "status": "ok",                       // "ok" | "infeasible"
//!       "error": "...",                       // present iff status == "infeasible"
//!       "kernel": "scan_naive",               // present iff status == "ok", as are:
//!       "cycles": 123456,                     // whole-run core cycles
//!       "total_j": 1.25e-6,                   // whole-run energy (joules)
//!       "energy": { "compute_j": ..., "fetch_decode_j": ..., "register_file_j": ...,
//!                   "token_transport_j": ..., "scratchpad_j": ..., "cache_j": ...,
//!                   "dram_j": ..., "static_j": ... },
//!       "stats": { "<every RunStats counter>": <u64>, ... },   // whole-run totals
//!       "phases": [                           // one entry per barrier-delimited phase,
//!         { "<every RunStats counter>": <u64>, ... },          // in execution order
//!         ...
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! The `"stats"` and each `"phases"` entry carry exactly the counter set
//! of [`dmt_common::stats`] (generated from the same
//! `for_each_run_counter!` list, in the same order), and the per-counter
//! sums of `"phases"` equal `"stats"` exactly — the engines derive the
//! totals *from* the phases. A single-phase kernel carries one phase
//! entry equal to its totals.
//!
//! ## v1 → v2 migration
//!
//! Version 2 adds the per-job `"phases"` array; every v1 field is
//! unchanged in name, type, position and — for all existing benchmarks —
//! value (cycles, energy and every totals counter are byte-identical).
//! Consumers that only read totals can treat a v2 document as v1 plus an
//! extra key; consumers that validate `schema_version` must accept 2.
//! The result cache treats v1 entries as misses (full recompute, never a
//! parse error), so a warm v1 cache directory transparently rewrites
//! itself as v2.
//!
//! Everything under `"jobs"` is deterministic — independent of thread
//! count, wall clock and host — which is what makes artifacts diffable
//! across runs; the volatile parts are quarantined under `"meta"`.

use crate::job::{JobOutcome, JobSpec};
use dmt_common::stats::{PhaseStats, RunStats};
use dmt_core::energy::EnergyReport;
use std::fmt::Write as _;

/// The schema version emitted by this writer. Version 2 added the
/// per-job `"phases"` array (see the module docs for the migration
/// note); the result cache invalidates entries of any other version.
pub const SCHEMA_VERSION: u64 = 2;

/// A JSON document: the minimal value model the artifact writer needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (all counters are u64).
    U64(u64),
    /// A float, serialized in shortest round-trip form.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a key to an object (panics on non-objects — construction
    /// bugs, not data).
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => entries.push((key.to_owned(), value.into())),
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// Serializes with two-space indentation and a trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no whitespace — the wire
    /// format of line-delimited protocols (`dmt-serve`), where a
    /// newline terminates the message. Scalars render exactly as in
    /// [`Json::render`], so `parse ∘ render_compact = id` too.
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest-round-trip but renders
                    // integral values without a decimal point; keep them
                    // unambiguously floats at any magnitude ({:.1} is the
                    // exact decimal expansion, so parse() recovers the
                    // same bits — a bare integer spelling would come back
                    // as U64 instead).
                    if x.fract() == 0.0 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    // JSON has no NaN/Inf; null is the conventional spelling.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses a JSON document (the inverse of [`Json::render`]).
    ///
    /// The grammar is RFC 8259 minus nothing the writer emits: objects,
    /// arrays, strings (with escapes), numbers, booleans and `null`.
    /// Non-negative integers without a fraction or exponent parse as
    /// [`Json::U64`]; every other number parses as [`Json::F64`] — the
    /// exact split the writer produces, so `parse(render(doc)) == doc`
    /// for any document the writer can emit (NaN/Inf excepted: the
    /// writer spells them `null`, which stays `null`).
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset for malformed input —
    /// callers (the result cache) treat any error as a miss.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a key in an object (`None` on non-objects and missing
    /// keys; first match wins, as in the writer's insertion order).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float (unsigned integers coerce losslessly where
    /// they fit `f64`'s 53-bit mantissa; larger ones do not coerce).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) if *n <= (1u64 << 53) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent parser over the raw bytes (JSON structure is ASCII;
/// string contents pass through as UTF-8).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(format!("unterminated string at byte {start}")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (structure bytes are ASCII,
                    // so multi-byte sequences only occur inside strings).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(format!("unpaired surrogate before byte {}", self.pos));
                }
                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
            } else {
                return Err(format!("unpaired surrogate before byte {}", self.pos));
            }
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| format!("invalid scalar before byte {}", self.pos))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if float || text.starts_with('-') {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| format!("bad number at byte {start}"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v.into())
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

// Both counter serializers are generated from `for_each_run_counter!` —
// the one counter list in `dmt_common::stats` — so the artifact cannot
// drift from the structs: adding a counter there adds it here, in the
// same position.
macro_rules! gen_counter_serializers {
    ($(($field:ident, $doc:literal)),+ $(,)?) => {
        /// Serializes every [`RunStats`] totals counter, in the canonical
        /// counter order (generated from the one counter list; the
        /// per-phase breakdown is serialized separately as `"phases"`).
        #[must_use]
        pub fn stats_json(s: &RunStats) -> Json {
            let mut j = Json::obj();
            $(j = j.with(stringify!($field), s.$field);)+
            j
        }

        /// Serializes one [`PhaseStats`] record — the same counter set
        /// and order as [`stats_json`].
        #[must_use]
        pub fn phase_stats_json(p: &PhaseStats) -> Json {
            let mut j = Json::obj();
            $(j = j.with(stringify!($field), p.$field);)+
            j
        }
    };
}

dmt_common::for_each_run_counter!(gen_counter_serializers);

/// Serializes the per-phase breakdown as the `"phases"` array (one
/// counter object per phase, execution order).
#[must_use]
pub fn phases_json(s: &RunStats) -> Json {
    Json::Arr(s.per_phase.iter().map(phase_stats_json).collect())
}

/// Serializes an energy breakdown (exhaustive, like [`stats_json`]).
#[must_use]
pub fn energy_json(e: &EnergyReport) -> Json {
    let EnergyReport {
        compute_j,
        fetch_decode_j,
        register_file_j,
        token_transport_j,
        scratchpad_j,
        cache_j,
        dram_j,
        static_j,
    } = *e;
    Json::obj()
        .with("compute_j", compute_j)
        .with("fetch_decode_j", fetch_decode_j)
        .with("register_file_j", register_file_j)
        .with("token_transport_j", token_transport_j)
        .with("scratchpad_j", scratchpad_j)
        .with("cache_j", cache_j)
        .with("dram_j", dram_j)
        .with("static_j", static_j)
}

/// Appends one outcome's fields — `status`, then `error` or the full
/// `kernel`/`cycles`/`total_j`/`energy`/`stats`/`phases` block — to an
/// object. The single definition of the per-job measurement shape,
/// shared by the artifact `"jobs"` array and the result-cache entries so
/// the two can never drift (a cache hit must re-render byte-identically
/// into an artifact).
#[must_use]
pub fn with_outcome(doc: Json, outcome: &JobOutcome) -> Json {
    let doc = doc.with("status", outcome.status());
    match outcome {
        JobOutcome::Infeasible(e) => doc.with("error", e.as_str()),
        JobOutcome::Completed(m) => doc
            .with("kernel", m.kernel.as_str())
            .with("cycles", m.cycles())
            .with("total_j", m.total_joules())
            .with("energy", energy_json(&m.energy))
            .with("stats", stats_json(&m.stats))
            .with("phases", phases_json(&m.stats)),
    }
}

/// One run's worth of jobs plus the volatile metadata, ready to write.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The producing harness (e.g. `"fig11_speedup"`).
    pub suite: String,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock of the pool run, in milliseconds.
    pub wall_ms: u64,
    /// Headline seed.
    pub seed: u64,
    /// Specs and their outcomes, in job order.
    pub jobs: Vec<(JobSpec, JobOutcome)>,
}

impl Artifact {
    /// Assembles an artifact from parallel spec/outcome vectors.
    ///
    /// # Panics
    ///
    /// Panics when the vectors disagree in length (a harness bug).
    #[must_use]
    pub fn new(
        suite: impl Into<String>,
        threads: usize,
        wall_ms: u64,
        seed: u64,
        specs: Vec<JobSpec>,
        outcomes: Vec<JobOutcome>,
    ) -> Artifact {
        assert_eq!(specs.len(), outcomes.len(), "spec/outcome length mismatch");
        Artifact {
            suite: suite.into(),
            threads,
            wall_ms,
            seed,
            jobs: specs.into_iter().zip(outcomes).collect(),
        }
    }

    /// The deterministic `"jobs"` array: thread-count- and host-invariant.
    #[must_use]
    pub fn jobs_json(&self) -> Json {
        Json::Arr(
            self.jobs
                .iter()
                .enumerate()
                .map(|(index, (spec, outcome))| {
                    let j = Json::obj()
                        .with("index", index)
                        .with("bench", spec.bench.as_str())
                        .with("arch", spec.arch.key())
                        .with("seed", spec.seed)
                        .with("config_hash", format!("{:#018x}", spec.config_hash()))
                        .with("job_hash", format!("{:#018x}", spec.job_hash()));
                    with_outcome(j, outcome)
                })
                .collect(),
        )
    }

    /// The complete document, schema version 2 (see the module docs).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("generator", "dmt-runner")
            .with("suite", self.suite.as_str())
            .with(
                "meta",
                Json::obj()
                    .with("threads", self.threads)
                    .with("wall_ms", self.wall_ms)
                    .with("seed", self.seed),
            )
            .with("jobs", self.jobs_json())
    }

    /// Writes the rendered document to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_json(path, &self.to_json())
    }
}

/// Writes any [`Json`] document to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(path: &std::path::Path, doc: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.render())
}

/// [`write_json`] with the experiment binaries' shared `--json` policy:
/// panic on failure (a requested recording must never be dropped with
/// exit 0), one uniform stderr line on success.
///
/// # Panics
///
/// Panics when the document cannot be written.
pub fn write_json_logged(path: &std::path::Path, doc: &Json) {
    write_json(path, doc).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("[dmt-runner] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::{Arch, SystemConfig};

    #[test]
    fn renders_escapes_and_numbers() {
        let doc = Json::obj()
            .with("s", "a\"b\\c\nd")
            .with("i", 42u64)
            .with("f", 1.5)
            .with("whole", 2.0)
            .with("nan", f64::NAN)
            .with("arr", vec![Json::U64(1), Json::Null])
            .with("empty", Json::obj());
        let text = doc.render();
        assert!(text.contains(r#""s": "a\"b\\c\nd""#), "{text}");
        assert!(text.contains("\"i\": 42"), "{text}");
        assert!(text.contains("\"f\": 1.5"), "{text}");
        assert!(text.contains("\"whole\": 2.0"), "{text}");
        assert!(text.contains("\"nan\": null"), "{text}");
        assert!(text.contains("\"empty\": {}"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }

    #[test]
    fn compact_rendering_is_one_line_and_round_trips() {
        let doc = Json::obj()
            .with("verb", "status")
            .with("f", 2.0)
            .with("arr", vec![Json::U64(1), Json::Null])
            .with("nested", Json::obj().with("k", "v\n"))
            .with("empty", Json::Arr(Vec::new()));
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "{line}");
        assert!(!line.contains(' '), "{line}");
        assert_eq!(
            line,
            r#"{"verb":"status","f":2.0,"arr":[1,null],"nested":{"k":"v\n"},"empty":[]}"#
        );
        // The same parser reads both renderings back to the same doc.
        assert_eq!(Json::parse(&line).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn artifact_document_shape() {
        use crate::job::JobMetrics;
        let spec = JobSpec::new("scan", Arch::DmtCgra, SystemConfig::default(), 42);
        let ok = JobOutcome::completed(JobMetrics {
            kernel: "scan_naive".into(),
            stats: dmt_common::stats::RunStats {
                cycles: 10,
                ..Default::default()
            },
            energy: dmt_core::energy::EnergyReport::default(),
        });
        let bad = JobOutcome::Infeasible("window too small".into());
        let art = Artifact::new("unit", 2, 5, 42, vec![spec.clone(), spec], vec![ok, bad]);
        let text = art.to_json().render();
        assert!(text.contains("\"schema_version\": 2"), "{text}");
        assert!(text.contains("\"suite\": \"unit\""), "{text}");
        assert!(text.contains("\"phases\": ["), "{text}");
        assert!(text.contains("\"status\": \"ok\""), "{text}");
        assert!(text.contains("\"status\": \"infeasible\""), "{text}");
        assert!(text.contains("\"error\": \"window too small\""), "{text}");
        assert!(text.contains("\"cycles\": 10"), "{text}");
        assert!(text.contains("\"config_hash\": \"0x"), "{text}");
    }

    #[test]
    fn parse_inverts_render() {
        let doc = Json::obj()
            .with("s", "a\"b\\c\nd\te\u{1}ü€")
            .with("i", 42u64)
            .with("big", u64::MAX)
            .with("f", 1.5)
            .with("tiny", 1.25e-6)
            .with("whole", 2.0)
            .with("huge_whole", 1e16)
            .with("past_mantissa", 9_007_199_254_740_994.0_f64)
            .with("t", true)
            .with("nil", Json::Null)
            .with(
                "arr",
                vec![Json::U64(1), Json::F64(0.1), Json::Str("x".into())],
            )
            .with("empty_arr", Json::Arr(Vec::new()))
            .with("nested", Json::obj().with("k", Json::obj()));
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc, "{text}");
    }

    #[test]
    fn parse_accepts_foreign_spellings() {
        // Whitespace layouts and escapes the writer never emits.
        let v = Json::parse(" { \"a\" : [ 1 , -2.5 , \"\\u0041\\u00e9\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[Json::U64(1), Json::F64(-2.5), Json::Str("Aé".into())]
        );
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
            "nul",
            "01x",
            "1.2.3",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors_navigate_and_type_check() {
        let doc = Json::obj()
            .with("n", 7u64)
            .with("f", 0.5)
            .with("s", "str")
            .with("a", vec![Json::Null]);
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(doc.get("f").unwrap().as_f64(), Some(0.5));
        assert_eq!(doc.get("f").unwrap().as_u64(), None);
        assert_eq!(doc.get("s").unwrap().as_str(), Some("str"));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(doc.get("missing").is_none());
        assert!(Json::Null.get("n").is_none());
        // u64s beyond f64's mantissa must not silently lose precision.
        assert_eq!(Json::U64(u64::MAX).as_f64(), None);
    }

    #[test]
    fn artifact_documents_round_trip_through_parse() {
        use crate::job::JobMetrics;
        let spec = JobSpec::new("scan", Arch::DmtCgra, SystemConfig::default(), 42);
        let ok = JobOutcome::completed(JobMetrics {
            kernel: "scan_naive".into(),
            stats: RunStats {
                cycles: 123_456,
                l1_hits: 99,
                ..Default::default()
            },
            energy: dmt_core::energy::EnergyReport {
                compute_j: 1.25e-6,
                static_j: 3.0,
                ..Default::default()
            },
        });
        let art = Artifact::new("unit", 2, 5, 42, vec![spec], vec![ok]);
        let text = art.to_json().render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.render(), text, "parse must preserve the document");
        let job = &parsed.get("jobs").unwrap().as_arr().unwrap()[0];
        assert_eq!(job.get("cycles").unwrap().as_u64(), Some(123_456));
        assert_eq!(
            job.get("energy")
                .unwrap()
                .get("compute_j")
                .unwrap()
                .as_f64(),
            Some(1.25e-6)
        );
    }

    #[test]
    fn jobs_json_has_no_volatile_fields() {
        let spec = JobSpec::new("scan", Arch::FermiSm, SystemConfig::default(), 1);
        let art = Artifact::new(
            "unit",
            8,
            999,
            1,
            vec![spec],
            vec![JobOutcome::Infeasible("x".into())],
        );
        let jobs = art.jobs_json().render();
        assert!(!jobs.contains("wall_ms"));
        assert!(!jobs.contains("threads"));
    }
}
