//! Versioned JSON artifacts: the machine-readable record of a run.
//!
//! The build environment is hermetic (no serde), so this module carries a
//! deliberately tiny JSON document model ([`Json`]) and serializer —
//! objects preserve insertion order, strings are escaped per RFC 8259,
//! floats print in Rust's shortest round-trip form.
//!
//! # Artifact schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "generator": "dmt-runner",
//!   "suite": "fig11_speedup",                 // producing harness
//!   "meta": {
//!     "threads": 2,                           // worker count used
//!     "wall_ms": 1234,                        // wall-clock of the pool run
//!     "seed": 42
//!   },
//!   "jobs": [                                 // one entry per job, in job order
//!     {
//!       "index": 0,
//!       "bench": "scan",
//!       "arch": "fermi_sm",                   // Arch::key()
//!       "seed": 42,
//!       "config_hash": "0x9c1d...",           // stable SystemConfig hash
//!       "job_hash": "0x03fa...",              // stable (bench, arch, seed, config) hash
//!       "status": "ok",                       // "ok" | "infeasible"
//!       "error": "...",                       // present iff status == "infeasible"
//!       "kernel": "scan_naive",               // present iff status == "ok", as are:
//!       "cycles": 123456,
//!       "total_j": 1.25e-6,
//!       "energy": { "compute_j": ..., "fetch_decode_j": ..., "register_file_j": ...,
//!                   "token_transport_j": ..., "scratchpad_j": ..., "cache_j": ...,
//!                   "dram_j": ..., "static_j": ... },
//!       "stats": { "<every RunStats counter>": <u64>, ... }
//!     }
//!   ]
//! }
//! ```
//!
//! Everything under `"jobs"` is deterministic — independent of thread
//! count, wall clock and host — which is what makes artifacts diffable
//! across runs; the volatile parts are quarantined under `"meta"`.

use crate::job::{JobOutcome, JobSpec};
use dmt_common::stats::RunStats;
use dmt_core::energy::EnergyReport;
use std::fmt::Write as _;

/// The schema version emitted by this writer.
pub const SCHEMA_VERSION: u64 = 1;

/// A JSON document: the minimal value model the artifact writer needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (all counters are u64).
    U64(u64),
    /// A float, serialized in shortest round-trip form.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a key to an object (panics on non-objects — construction
    /// bugs, not data).
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => entries.push((key.to_owned(), value.into())),
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// Serializes with two-space indentation and a trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest-round-trip but renders
                    // integral values without a decimal point; keep them
                    // unambiguously floats.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    // JSON has no NaN/Inf; null is the conventional spelling.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v.into())
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Serializes every [`RunStats`] counter (exhaustive destructuring: a new
/// counter cannot be added without entering the artifact).
#[must_use]
pub fn stats_json(s: &RunStats) -> Json {
    let RunStats {
        cycles,
        threads_retired,
        phases,
        alu_ops,
        fpu_ops,
        special_ops,
        control_ops,
        sju_ops,
        elevator_ops,
        elevator_const_tokens,
        eldst_forwards,
        tokens_routed,
        noc_hops,
        token_buffer_writes,
        backpressure_cycles,
        global_loads,
        global_stores,
        l1_hits,
        l1_misses,
        l2_hits,
        l2_misses,
        dram_reads,
        dram_writes,
        shared_loads,
        shared_stores,
        shared_bank_conflicts,
        lvc_reads,
        lvc_writes,
        gpu_instructions,
        gpu_thread_instructions,
        register_reads,
        register_writes,
        barrier_wait_cycles,
        barriers,
        gpu_stall_cycles,
    } = *s;
    Json::obj()
        .with("cycles", cycles)
        .with("threads_retired", threads_retired)
        .with("phases", phases)
        .with("alu_ops", alu_ops)
        .with("fpu_ops", fpu_ops)
        .with("special_ops", special_ops)
        .with("control_ops", control_ops)
        .with("sju_ops", sju_ops)
        .with("elevator_ops", elevator_ops)
        .with("elevator_const_tokens", elevator_const_tokens)
        .with("eldst_forwards", eldst_forwards)
        .with("tokens_routed", tokens_routed)
        .with("noc_hops", noc_hops)
        .with("token_buffer_writes", token_buffer_writes)
        .with("backpressure_cycles", backpressure_cycles)
        .with("global_loads", global_loads)
        .with("global_stores", global_stores)
        .with("l1_hits", l1_hits)
        .with("l1_misses", l1_misses)
        .with("l2_hits", l2_hits)
        .with("l2_misses", l2_misses)
        .with("dram_reads", dram_reads)
        .with("dram_writes", dram_writes)
        .with("shared_loads", shared_loads)
        .with("shared_stores", shared_stores)
        .with("shared_bank_conflicts", shared_bank_conflicts)
        .with("lvc_reads", lvc_reads)
        .with("lvc_writes", lvc_writes)
        .with("gpu_instructions", gpu_instructions)
        .with("gpu_thread_instructions", gpu_thread_instructions)
        .with("register_reads", register_reads)
        .with("register_writes", register_writes)
        .with("barrier_wait_cycles", barrier_wait_cycles)
        .with("barriers", barriers)
        .with("gpu_stall_cycles", gpu_stall_cycles)
}

/// Serializes an energy breakdown (exhaustive, like [`stats_json`]).
#[must_use]
pub fn energy_json(e: &EnergyReport) -> Json {
    let EnergyReport {
        compute_j,
        fetch_decode_j,
        register_file_j,
        token_transport_j,
        scratchpad_j,
        cache_j,
        dram_j,
        static_j,
    } = *e;
    Json::obj()
        .with("compute_j", compute_j)
        .with("fetch_decode_j", fetch_decode_j)
        .with("register_file_j", register_file_j)
        .with("token_transport_j", token_transport_j)
        .with("scratchpad_j", scratchpad_j)
        .with("cache_j", cache_j)
        .with("dram_j", dram_j)
        .with("static_j", static_j)
}

/// One run's worth of jobs plus the volatile metadata, ready to write.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The producing harness (e.g. `"fig11_speedup"`).
    pub suite: String,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock of the pool run, in milliseconds.
    pub wall_ms: u64,
    /// Headline seed.
    pub seed: u64,
    /// Specs and their outcomes, in job order.
    pub jobs: Vec<(JobSpec, JobOutcome)>,
}

impl Artifact {
    /// Assembles an artifact from parallel spec/outcome vectors.
    ///
    /// # Panics
    ///
    /// Panics when the vectors disagree in length (a harness bug).
    #[must_use]
    pub fn new(
        suite: impl Into<String>,
        threads: usize,
        wall_ms: u64,
        seed: u64,
        specs: Vec<JobSpec>,
        outcomes: Vec<JobOutcome>,
    ) -> Artifact {
        assert_eq!(specs.len(), outcomes.len(), "spec/outcome length mismatch");
        Artifact {
            suite: suite.into(),
            threads,
            wall_ms,
            seed,
            jobs: specs.into_iter().zip(outcomes).collect(),
        }
    }

    /// The deterministic `"jobs"` array: thread-count- and host-invariant.
    #[must_use]
    pub fn jobs_json(&self) -> Json {
        Json::Arr(
            self.jobs
                .iter()
                .enumerate()
                .map(|(index, (spec, outcome))| {
                    let mut j = Json::obj()
                        .with("index", index)
                        .with("bench", spec.bench.as_str())
                        .with("arch", spec.arch.key())
                        .with("seed", spec.seed)
                        .with("config_hash", format!("{:#018x}", spec.config_hash()))
                        .with("job_hash", format!("{:#018x}", spec.job_hash()))
                        .with("status", outcome.status());
                    match outcome {
                        JobOutcome::Infeasible(e) => j = j.with("error", e.as_str()),
                        JobOutcome::Completed(m) => {
                            j = j
                                .with("kernel", m.kernel.as_str())
                                .with("cycles", m.cycles())
                                .with("total_j", m.total_joules())
                                .with("energy", energy_json(&m.energy))
                                .with("stats", stats_json(&m.stats));
                        }
                    }
                    j
                })
                .collect(),
        )
    }

    /// The complete document, schema version 1 (see the module docs).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("generator", "dmt-runner")
            .with("suite", self.suite.as_str())
            .with(
                "meta",
                Json::obj()
                    .with("threads", self.threads)
                    .with("wall_ms", self.wall_ms)
                    .with("seed", self.seed),
            )
            .with("jobs", self.jobs_json())
    }

    /// Writes the rendered document to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_json(path, &self.to_json())
    }
}

/// Writes any [`Json`] document to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(path: &std::path::Path, doc: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.render())
}

/// [`write_json`] with the experiment binaries' shared `--json` policy:
/// panic on failure (a requested recording must never be dropped with
/// exit 0), one uniform stderr line on success.
///
/// # Panics
///
/// Panics when the document cannot be written.
pub fn write_json_logged(path: &std::path::Path, doc: &Json) {
    write_json(path, doc).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("[dmt-runner] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::{Arch, SystemConfig};

    #[test]
    fn renders_escapes_and_numbers() {
        let doc = Json::obj()
            .with("s", "a\"b\\c\nd")
            .with("i", 42u64)
            .with("f", 1.5)
            .with("whole", 2.0)
            .with("nan", f64::NAN)
            .with("arr", vec![Json::U64(1), Json::Null])
            .with("empty", Json::obj());
        let text = doc.render();
        assert!(text.contains(r#""s": "a\"b\\c\nd""#), "{text}");
        assert!(text.contains("\"i\": 42"), "{text}");
        assert!(text.contains("\"f\": 1.5"), "{text}");
        assert!(text.contains("\"whole\": 2.0"), "{text}");
        assert!(text.contains("\"nan\": null"), "{text}");
        assert!(text.contains("\"empty\": {}"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }

    #[test]
    fn artifact_document_shape() {
        use crate::job::JobMetrics;
        let spec = JobSpec::new("scan", Arch::DmtCgra, SystemConfig::default(), 42);
        let ok = JobOutcome::completed(JobMetrics {
            kernel: "scan_naive".into(),
            stats: dmt_common::stats::RunStats {
                cycles: 10,
                ..Default::default()
            },
            energy: dmt_core::energy::EnergyReport::default(),
        });
        let bad = JobOutcome::Infeasible("window too small".into());
        let art = Artifact::new("unit", 2, 5, 42, vec![spec.clone(), spec], vec![ok, bad]);
        let text = art.to_json().render();
        assert!(text.contains("\"schema_version\": 1"), "{text}");
        assert!(text.contains("\"suite\": \"unit\""), "{text}");
        assert!(text.contains("\"status\": \"ok\""), "{text}");
        assert!(text.contains("\"status\": \"infeasible\""), "{text}");
        assert!(text.contains("\"error\": \"window too small\""), "{text}");
        assert!(text.contains("\"cycles\": 10"), "{text}");
        assert!(text.contains("\"config_hash\": \"0x"), "{text}");
    }

    #[test]
    fn jobs_json_has_no_volatile_fields() {
        let spec = JobSpec::new("scan", Arch::FermiSm, SystemConfig::default(), 1);
        let art = Artifact::new(
            "unit",
            8,
            999,
            1,
            vec![spec],
            vec![JobOutcome::Infeasible("x".into())],
        );
        let jobs = art.jobs_json().render();
        assert!(!jobs.contains("wall_ms"));
        assert!(!jobs.contains("threads"));
    }
}
