//! Job descriptors and results: one job is one `(benchmark, arch,
//! config, seed)` point of an experiment grid.
//!
//! A [`JobSpec`] carries everything a shared-nothing worker needs to run
//! the point from scratch — the benchmark is named, not referenced, so a
//! spec is `Send` and hashable regardless of how the suite constructs its
//! kernels. A [`JobOutcome`] deliberately does **not** carry the final
//! memory image (it has already been validated by the leaf runner and
//! would dominate the artifact size); it keeps the full event counters
//! and energy breakdown, which is what every figure consumes.

use crate::hash::{config_hash, StableHasher};
use dmt_common::stats::RunStats;
use dmt_core::energy::EnergyReport;
use dmt_core::{Arch, RunReport, SystemConfig};

/// One experiment point, self-describing and executable by any worker.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Benchmark name as listed in Table 3 (`suite::all()` order).
    pub bench: String,
    /// Architecture to run on.
    pub arch: Arch,
    /// Full system configuration for this point.
    pub cfg: SystemConfig,
    /// Workload seed.
    pub seed: u64,
}

impl JobSpec {
    /// A new job descriptor.
    #[must_use]
    pub fn new(bench: impl Into<String>, arch: Arch, cfg: SystemConfig, seed: u64) -> JobSpec {
        JobSpec {
            bench: bench.into(),
            arch,
            cfg,
            seed,
        }
    }

    /// Stable hash of the configuration alone (shared by every job of a
    /// sweep point).
    #[must_use]
    pub fn config_hash(&self) -> u64 {
        config_hash(&self.cfg)
    }

    /// Stable identity of the whole job: benchmark, architecture, seed
    /// and every configuration field. Equal specs hash equal across
    /// processes and platforms, so the hash can key caches and resumable
    /// artifact trajectories.
    #[must_use]
    pub fn job_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.field_str("job.bench", &self.bench);
        h.field_str("job.arch", self.arch.key());
        h.field_u64("job.seed", self.seed);
        h.field_u64("job.config", self.config_hash());
        h.finish()
    }

    /// The content address of this job in a result cache: the
    /// [`job_hash`](JobSpec::job_hash) as 16 lowercase hex digits (no
    /// `0x` prefix — this is a filename stem, not a JSON field).
    #[must_use]
    pub fn cache_key(&self) -> String {
        format!("{:016x}", self.job_hash())
    }
}

impl std::fmt::Display for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{} (seed {})", self.bench, self.arch, self.seed)
    }
}

/// The measured side of a completed run: everything a figure needs,
/// nothing a figure doesn't (the validated memory image is dropped).
#[derive(Debug, Clone, PartialEq)]
pub struct JobMetrics {
    /// Kernel name the machine actually executed.
    pub kernel: String,
    /// Event counters.
    pub stats: RunStats,
    /// Energy breakdown.
    pub energy: EnergyReport,
}

impl JobMetrics {
    /// Extracts the metrics from a full run report.
    #[must_use]
    pub fn from_report(report: &RunReport) -> JobMetrics {
        JobMetrics {
            kernel: report.kernel.clone(),
            stats: report.stats.clone(),
            energy: report.energy,
        }
    }

    /// Execution time in core cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Total energy in joules.
    #[must_use]
    pub fn total_joules(&self) -> f64 {
        self.energy.total_j()
    }
}

/// What became of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The run completed and its output validated against the CPU
    /// reference (boxed: metrics carry the full counter set, and
    /// outcomes travel through result slots by value).
    Completed(Box<JobMetrics>),
    /// The point is infeasible (e.g. a kernel whose |ΔTID| exceeds the
    /// swept window cannot compile); the message is the leaf error.
    Infeasible(String),
    /// The job failed *transiently*: the executor panicked, was
    /// cancelled, or an injected fault tripped. Unlike
    /// [`Infeasible`](JobOutcome::Infeasible) this says nothing about
    /// the point itself — a retry may succeed, so failed outcomes are
    /// never cached.
    Failed(String),
    /// The run exceeded its simulated-cycle deadline. Permanent for the
    /// deadline it ran under, but the deadline is not part of the job
    /// hash, so timed-out outcomes are never cached either (an entry
    /// cached under one budget would poison runs with a larger one).
    TimedOut(String),
}

impl JobOutcome {
    /// Wraps completed-run metrics.
    #[must_use]
    pub fn completed(metrics: JobMetrics) -> JobOutcome {
        JobOutcome::Completed(Box::new(metrics))
    }

    /// The metrics, when the job completed.
    #[must_use]
    pub fn metrics(&self) -> Option<&JobMetrics> {
        match self {
            JobOutcome::Completed(m) => Some(m.as_ref()),
            _ => None,
        }
    }

    /// The error message, when the job did not complete.
    #[must_use]
    pub fn error(&self) -> Option<&str> {
        match self {
            JobOutcome::Completed(_) => None,
            JobOutcome::Infeasible(e) | JobOutcome::Failed(e) | JobOutcome::TimedOut(e) => Some(e),
        }
    }

    /// `"ok"`, `"infeasible"`, `"failed"` or `"timed_out"` — the
    /// artifact status string.
    #[must_use]
    pub fn status(&self) -> &'static str {
        match self {
            JobOutcome::Completed(_) => "ok",
            JobOutcome::Infeasible(_) => "infeasible",
            JobOutcome::Failed(_) => "failed",
            JobOutcome::TimedOut(_) => "timed_out",
        }
    }

    /// True for outcomes a retry may change ([`Failed`]); infeasible
    /// and timed-out outcomes are permanent under the same inputs.
    ///
    /// [`Failed`]: JobOutcome::Failed
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, JobOutcome::Failed(_))
    }

    /// True for the outcomes a result cache may persist: completed and
    /// infeasible. Failed is retryable; timed-out depends on a deadline
    /// that is not part of the job hash.
    #[must_use]
    pub fn cacheable(&self) -> bool {
        matches!(self, JobOutcome::Completed(_) | JobOutcome::Infeasible(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::new("scan", Arch::DmtCgra, SystemConfig::default(), 42)
    }

    #[test]
    fn job_hash_distinguishes_every_component() {
        let base = spec().job_hash();
        let mut s = spec();
        s.bench = "reduce".into();
        assert_ne!(base, s.job_hash());
        let mut s = spec();
        s.arch = Arch::FermiSm;
        assert_ne!(base, s.job_hash());
        let mut s = spec();
        s.seed = 43;
        assert_ne!(base, s.job_hash());
        let mut s = spec();
        s.cfg.fabric.inflight_threads = 64;
        assert_ne!(base, s.job_hash());
        assert_eq!(base, spec().job_hash(), "equal specs hash equal");
    }

    #[test]
    fn cache_key_is_the_hex_job_hash() {
        let s = spec();
        assert_eq!(s.cache_key(), format!("{:016x}", s.job_hash()));
        assert_eq!(s.cache_key().len(), 16);
        assert!(s.cache_key().bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn outcome_accessors() {
        let inf = JobOutcome::Infeasible("no".into());
        assert_eq!(inf.status(), "infeasible");
        assert_eq!(inf.error(), Some("no"));
        assert!(inf.metrics().is_none());
        assert!(!inf.is_transient());
        assert!(inf.cacheable());

        let failed = JobOutcome::Failed("executor panicked".into());
        assert_eq!(failed.status(), "failed");
        assert_eq!(failed.error(), Some("executor panicked"));
        assert!(failed.metrics().is_none());
        assert!(failed.is_transient());
        assert!(!failed.cacheable());

        let timed = JobOutcome::TimedOut("deadline exceeded at cycle 10".into());
        assert_eq!(timed.status(), "timed_out");
        assert!(timed.error().unwrap().contains("cycle 10"));
        assert!(!timed.is_transient());
        assert!(!timed.cacheable());
    }

    #[test]
    fn display_names_the_point() {
        assert_eq!(spec().to_string(), "scan@dMT-CGRA (seed 42)");
    }
}
