//! Stable, order-independent hashing of named scalar fields.
//!
//! Job caching and artifact identity need a configuration hash that is
//! reproducible across runs, platforms and — crucially — across *code
//! motion*: reordering the fields of a struct (or the order in which a
//! visitor walks them) must not change the hash, while changing any field
//! *value* must. [`StableHasher`] achieves both by hashing each
//! `(name, value)` pair independently with FNV-1a and combining the
//! per-field digests with an order-insensitive fold.
//!
//! `std::hash` types are deliberately avoided: `DefaultHasher` is
//! documented to vary between releases, which would silently invalidate
//! every cached artifact on a toolchain bump.

use dmt_common::config::{CfgValue, SystemConfig};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Accumulates named scalar fields into one 64-bit digest that does not
/// depend on the order the fields were fed in.
///
/// Each field is digested as FNV-1a over `name \0 value_bits`; digests
/// are combined commutatively (wrapping sum of a bijective remix of each
/// digest), so any permutation of the same field set produces the same
/// hash, and two fields can only cancel by collision.
///
/// # Examples
///
/// ```
/// use dmt_runner::hash::StableHasher;
///
/// let mut a = StableHasher::new();
/// a.field_u64("alpha", 1);
/// a.field_u64("beta", 2);
///
/// let mut b = StableHasher::new();
/// b.field_u64("beta", 2);
/// b.field_u64("alpha", 1);
///
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StableHasher {
    acc: u64,
    count: u64,
}

impl StableHasher {
    /// An empty hasher.
    #[must_use]
    pub fn new() -> StableHasher {
        StableHasher::default()
    }

    /// Feeds one named field with an arbitrary 8-byte value encoding.
    pub fn field_bits(&mut self, name: &str, bits: u64) {
        let mut h = fnv1a(name.as_bytes());
        // Separator octet (0x00) between name and value: absorb it so
        // ("ab", ...) and ("a", "b"-prefixed value) cannot alias.
        h = h.wrapping_mul(FNV_PRIME);
        for b in bits.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        // splitmix64 finalizer: decorrelates the per-field digest before the
        // commutative fold so that structured (name, value) patterns cannot
        // line up and cancel.
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        self.acc = self.acc.wrapping_add(z);
        self.count += 1;
    }

    /// Feeds one named unsigned-integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.field_bits(name, value);
    }

    /// Feeds one named float field (hashed by IEEE-754 bit pattern).
    pub fn field_f64(&mut self, name: &str, value: f64) {
        self.field_bits(name, value.to_bits());
    }

    /// Feeds one named string field.
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.field_bits(name, fnv1a(value.as_bytes()));
    }

    /// The combined digest (also folds in the field count, so an empty
    /// hasher and one fed a zero-digest field differ).
    #[must_use]
    pub fn finish(&self) -> u64 {
        let mut z = self.acc ^ self.count.rotate_left(32);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The stable hash of a full [`SystemConfig`].
///
/// Built on [`SystemConfig::visit_fields`], which exhaustively
/// destructures the config — a new configuration field cannot be added
/// without it entering this hash (the visitor would fail to compile).
#[must_use]
pub fn config_hash(cfg: &SystemConfig) -> u64 {
    let mut h = StableHasher::new();
    cfg.visit_fields(&mut |name, value| match value {
        CfgValue::U64(v) => h.field_u64(name, v),
        CfgValue::F64(v) => h.field_f64(name, v),
        CfgValue::Tag(t) => h.field_str(name, t),
    });
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_independent() {
        let mut a = StableHasher::new();
        let mut b = StableHasher::new();
        for (n, v) in [("x", 1u64), ("y", 2), ("z", 3)] {
            a.field_u64(n, v);
        }
        for (n, v) in [("z", 3u64), ("x", 1), ("y", 2)] {
            b.field_u64(n, v);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn value_sensitive() {
        let mut a = StableHasher::new();
        a.field_u64("x", 1);
        let mut b = StableHasher::new();
        b.field_u64("x", 2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn name_sensitive() {
        let mut a = StableHasher::new();
        a.field_u64("x", 1);
        let mut b = StableHasher::new();
        b.field_u64("y", 1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_differs_from_zero_field() {
        let empty = StableHasher::new().finish();
        let mut one = StableHasher::new();
        one.field_u64("x", 0);
        assert_ne!(empty, one.finish());
    }

    #[test]
    fn default_config_hash_is_stable_and_field_sensitive() {
        let base = config_hash(&SystemConfig::default());
        assert_eq!(base, config_hash(&SystemConfig::default()));

        let mut tb = SystemConfig::default();
        tb.fabric.token_buffer_entries = 8;
        assert_ne!(base, config_hash(&tb));

        let mut clk = SystemConfig::default();
        clk.clocks.core_ghz = 2.0;
        assert_ne!(base, config_hash(&clk));

        let mut wp = SystemConfig::default();
        wp.mem.l1.write_policy = dmt_common::config::WritePolicy::WriteThroughNoAllocate;
        assert_ne!(base, config_hash(&wp));
    }
}
