//! The one way to execute a job grid: the [`ExecPlan`] builder.
//!
//! Three generations of positional entry points (`run_jobs`,
//! `run_jobs_cached`, `run_scheduled` — each adding one more parameter
//! to the previous signature) collapsed into a single builder that both
//! the CLI binaries and the `dmt-serve` daemon consume:
//!
//! ```text
//! ExecPlan::new(&jobs).threads(n).cache(Some(&c)).progress(Some(&p)).run(exec)
//! ```
//!
//! Every knob is optional and defaults to the serial, uncached,
//! unreported run, so the minimal call reads exactly like what it does:
//! `ExecPlan::new(&jobs).run(exec)`. The execution semantics are
//! unchanged from the functions it replaces:
//!
//! * **deterministic aggregation** — outcomes land by job index, so the
//!   result vector is byte-identical for any thread count;
//! * **cache-as-memo-table** — with a cache, hits skip simulation,
//!   misses run longest-expected-first (cost-sorted against the cache's
//!   cycle history) and persist via temp-file+rename as soon as each
//!   completes, so a killed run resumes from exactly the jobs it
//!   finished;
//! * **completion-ordered progress** — the ticker counts only jobs
//!   actually executed; hits are summarized by [`Cache::report`];
//! * **panic isolation** — a panicking executor fails only its own job
//!   (a typed [`JobOutcome::Failed`] in that job's index-ordered slot),
//!   never the pool, so every sibling outcome survives byte-identical.

use crate::cache::{cost_order, Cache};
use crate::job::{JobOutcome, JobSpec};
use crate::pool::run_ordered;
use crate::progress::Progress;
use dmt_common::faults;
use dmt_common::limits::RunLimits;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;

/// Best-effort text out of a panic payload (`&str` and `String` cover
/// what `panic!` produces in practice).
#[must_use]
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A declarative description of one pooled execution over a job grid.
///
/// Borrowers: the plan holds references only — the job list, cache,
/// progress reporter and cancel token all outlive the run, which
/// returns plain owned outcomes.
#[derive(Debug, Clone, Copy)]
#[must_use = "an ExecPlan does nothing until .run(exec) is called"]
pub struct ExecPlan<'a> {
    jobs: &'a [JobSpec],
    threads: usize,
    progress: Option<&'a Progress>,
    cache: Option<&'a Cache>,
    deadline_cycles: Option<u64>,
    cancel: Option<&'a AtomicBool>,
}

impl<'a> ExecPlan<'a> {
    /// A serial, uncached, unreported plan over `jobs`.
    pub fn new(jobs: &'a [JobSpec]) -> ExecPlan<'a> {
        ExecPlan {
            jobs,
            threads: 1,
            progress: None,
            cache: None,
            deadline_cycles: None,
            cancel: None,
        }
    }

    /// Sets the worker count (clamped to at least 1; `1` runs inline on
    /// the calling thread — no pool, no locks).
    pub fn threads(mut self, threads: usize) -> ExecPlan<'a> {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a completion-ordered stderr progress ticker.
    pub fn progress(mut self, progress: Option<&'a Progress>) -> ExecPlan<'a> {
        self.progress = progress;
        self
    }

    /// Routes the run through a content-addressed result cache: hits
    /// skip simulation, misses are cost-sorted and persisted on
    /// completion. `None` runs everything.
    pub fn cache(mut self, cache: Option<&'a Cache>) -> ExecPlan<'a> {
        self.cache = cache;
        self
    }

    /// Bounds every job to a simulated-cycle budget; overruns surface
    /// as typed [`JobOutcome::TimedOut`] slots. Requires a limit-aware
    /// executor — use [`ExecPlan::run_limited`].
    pub fn deadline_cycles(mut self, cycles: Option<u64>) -> ExecPlan<'a> {
        self.deadline_cycles = cycles;
        self
    }

    /// Attaches a cooperative cancellation token: when it flips, every
    /// still-running job stops at its next cycle boundary with a
    /// [`JobOutcome::Failed`] slot. Requires [`ExecPlan::run_limited`].
    pub fn cancel(mut self, token: Option<&'a AtomicBool>) -> ExecPlan<'a> {
        self.cancel = token;
        self
    }

    /// Executes the plan and returns outcomes in job-index order.
    ///
    /// `exec` is the leaf runner (for the benchmark suite:
    /// `dmt_bench::execute_job`). A panicking executor fails only its
    /// own job — the slot becomes [`JobOutcome::Failed`] and every
    /// sibling outcome survives; no result is silently dropped.
    ///
    /// # Panics
    ///
    /// When a deadline or cancel token is set: those limits need a
    /// limit-aware executor — call [`ExecPlan::run_limited`].
    pub fn run<F>(self, exec: F) -> Vec<JobOutcome>
    where
        F: Fn(&JobSpec) -> JobOutcome + Sync,
    {
        assert!(
            self.deadline_cycles.is_none() && self.cancel.is_none(),
            "ExecPlan::run cannot enforce limits; use run_limited with a limit-aware executor"
        );
        self.run_limited(|spec, _| exec(spec))
    }

    /// [`ExecPlan::run`] with a limit-aware executor: `exec` receives
    /// the plan's [`RunLimits`] (deadline + cancel token) and is
    /// expected to thread them into the engine (`Machine::run_limited`)
    /// and map `Error::TimedOut` to [`JobOutcome::TimedOut`] — the
    /// benchmark suite's `execute_job_limited` does exactly that.
    pub fn run_limited<F>(self, exec: F) -> Vec<JobOutcome>
    where
        F: Fn(&JobSpec, &RunLimits<'_>) -> JobOutcome + Sync,
    {
        let limits = RunLimits {
            deadline_cycles: self.deadline_cycles.unwrap_or(u64::MAX),
            cancel: self.cancel,
        };
        // One isolation wrapper for both the cached and uncached paths:
        // the `pool.exec` failpoint models a worker dying before the
        // executor runs, and `catch_unwind` turns a panicking executor
        // into a typed Failed slot instead of a poisoned pool.
        let run_job = |spec: &JobSpec| -> JobOutcome {
            if faults::hit(faults::site::POOL_EXEC) {
                return JobOutcome::Failed("injected fault: pool.exec".into());
            }
            match catch_unwind(AssertUnwindSafe(|| exec(spec, &limits))) {
                Ok(outcome) => outcome,
                Err(payload) => {
                    JobOutcome::Failed(format!("executor panicked: {}", panic_message(payload)))
                }
            }
        };
        let jobs = self.jobs;
        let Some(cache) = self.cache else {
            if let Some(p) = self.progress {
                p.begin(jobs.len());
            }
            return run_ordered(jobs.len(), self.threads, None, |i| {
                let outcome = run_job(&jobs[i]);
                if let Some(p) = self.progress {
                    p.completed(&jobs[i], &outcome);
                }
                outcome
            });
        };
        let mut slots: Vec<Option<JobOutcome>> = jobs.iter().map(|j| cache.lookup(j)).collect();
        let pending: Vec<usize> = (0..jobs.len()).filter(|&i| slots[i].is_none()).collect();
        if let Some(p) = self.progress {
            p.begin(pending.len());
        }
        if !pending.is_empty() {
            let specs: Vec<&JobSpec> = pending.iter().map(|&i| &jobs[i]).collect();
            let order = cost_order(&specs, &cache.cost_index());
            let executed = run_ordered(pending.len(), self.threads, Some(&order), |k| {
                let spec = &jobs[pending[k]];
                let outcome = run_job(spec);
                // Persist immediately — resume depends on completed work
                // surviving a kill, not on reaching the end of the run. A
                // failed store costs a future re-simulation, not this run.
                // (Transient and timed-out outcomes are never persisted;
                // the cache filters them itself.)
                if let Err(e) = cache.store(spec, &outcome) {
                    eprintln!(
                        "[dmt-runner] warning: cache store failed for {spec}: {e} ({})",
                        cache.entry_path(spec).display()
                    );
                }
                if let Some(p) = self.progress {
                    p.completed(spec, &outcome);
                }
                outcome
            });
            for (k, outcome) in executed.into_iter().enumerate() {
                slots[pending[k]] = Some(outcome);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobMetrics;
    use dmt_core::{Arch, SystemConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn jobs(n: u64) -> Vec<JobSpec> {
        (0..n)
            .map(|seed| JobSpec::new("scan", Arch::DmtCgra, SystemConfig::default(), seed))
            .collect()
    }

    fn exec(spec: &JobSpec) -> JobOutcome {
        JobOutcome::completed(JobMetrics {
            kernel: spec.bench.clone(),
            stats: dmt_common::stats::RunStats {
                cycles: (spec.seed + 1) * 100,
                ..Default::default()
            },
            energy: dmt_core::energy::EnergyReport::default(),
        })
    }

    #[test]
    fn outcomes_are_index_ordered_for_any_thread_count() {
        let grid = jobs(9);
        let serial = ExecPlan::new(&grid).run(exec);
        for threads in [2, 3, 8] {
            let parallel = ExecPlan::new(&grid).threads(threads).run(exec);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_is_clamped_to_serial() {
        let grid = jobs(3);
        assert_eq!(
            ExecPlan::new(&grid).threads(0).run(exec),
            ExecPlan::new(&grid).run(exec)
        );
    }

    #[test]
    fn progress_counts_executed_jobs() {
        let grid = jobs(4);
        let p = Progress::new(false);
        let _ = ExecPlan::new(&grid).progress(Some(&p)).run(exec);
        assert_eq!(p.done(), 4);
    }

    #[test]
    fn cached_plan_skips_hits_executes_misses_and_persists() {
        let dir = std::env::temp_dir().join(format!("dmt_plan_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::open(&dir).unwrap();
        let grid = jobs(4);
        let exec_count = AtomicUsize::new(0);
        let counted = |spec: &JobSpec| {
            exec_count.fetch_add(1, Ordering::Relaxed);
            exec(spec)
        };

        // Pre-warm two of the four jobs.
        cache.store(&grid[1], &exec(&grid[1])).unwrap();
        cache.store(&grid[3], &exec(&grid[3])).unwrap();

        let outcomes = ExecPlan::new(&grid)
            .threads(2)
            .cache(Some(&cache))
            .run(counted);
        assert_eq!(exec_count.load(Ordering::Relaxed), 2, "only the misses run");
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.metrics().unwrap().cycles(), (i as u64 + 1) * 100);
        }

        // Everything is now persisted: a fresh handle serves all 4 jobs
        // without a single execution.
        let cache2 = Cache::open(&dir).unwrap();
        let again = ExecPlan::new(&grid)
            .threads(2)
            .cache(Some(&cache2))
            .run(|_: &JobSpec| panic!("warm run must not execute"));
        assert_eq!(again, outcomes);
        assert_eq!(cache2.stats().hits, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_ticker_counts_only_misses_on_a_warm_cache() {
        let dir = std::env::temp_dir().join(format!("dmt_plan_prog_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::open(&dir).unwrap();
        let grid = jobs(3);
        cache.store(&grid[0], &exec(&grid[0])).unwrap();
        let p = Progress::new(false);
        let _ = ExecPlan::new(&grid)
            .cache(Some(&cache))
            .progress(Some(&p))
            .run(exec);
        assert_eq!(p.done(), 2, "hits must not tick the progress counter");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_executor_fails_only_its_job() {
        let grid = jobs(5);
        for threads in [1, 4] {
            let outcomes = ExecPlan::new(&grid).threads(threads).run(|spec: &JobSpec| {
                if spec.seed == 2 {
                    panic!("boom on seed 2");
                }
                exec(spec)
            });
            assert_eq!(outcomes.len(), 5);
            for (i, o) in outcomes.iter().enumerate() {
                if i == 2 {
                    assert_eq!(o.status(), "failed");
                    assert!(o.error().unwrap().contains("boom on seed 2"), "{o:?}");
                } else {
                    assert_eq!(o.metrics().unwrap().cycles(), (i as u64 + 1) * 100);
                }
            }
        }
    }

    #[test]
    fn injected_pool_fault_fails_one_job_deterministically() {
        let _guard = dmt_common::faults::install_guarded(
            dmt_common::faults::FaultPlan::parse("pool.exec:nth=2").unwrap(),
        );
        let grid = jobs(4);
        let outcomes = ExecPlan::new(&grid).run(exec);
        let failed: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.status() == "failed")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failed, [1], "serial order makes hit 2 job index 1");
        assert_eq!(
            outcomes[1].error(),
            Some("injected fault: pool.exec"),
            "typed, attributable failure"
        );
    }

    #[test]
    fn cancelled_plan_fails_jobs_via_the_token() {
        use std::sync::atomic::Ordering;
        let token = AtomicBool::new(true); // cancelled before it starts
        let grid = jobs(2);
        let outcomes = ExecPlan::new(&grid)
            .cancel(Some(&token))
            .run_limited(|spec, limits| {
                assert!(limits.cancel.is_some(), "token reaches the executor");
                match limits.check(0) {
                    Err(e) => JobOutcome::Failed(e.to_string()),
                    Ok(()) => exec(spec),
                }
            });
        assert!(outcomes.iter().all(|o| o.status() == "failed"));
        token.store(false, Ordering::Relaxed);
    }

    #[test]
    #[should_panic(expected = "use run_limited")]
    fn plain_run_rejects_limits_it_cannot_enforce() {
        let grid = jobs(1);
        let _ = ExecPlan::new(&grid).deadline_cycles(Some(10)).run(exec);
    }

    #[test]
    fn deprecated_shims_match_the_plan() {
        #![allow(deprecated)]
        let grid = jobs(5);
        let planned = ExecPlan::new(&grid).threads(2).run(exec);
        assert_eq!(crate::pool::run_jobs(&grid, 2, None, exec), planned);
        assert_eq!(
            crate::pool::run_jobs_cached(&grid, 2, None, None, exec),
            planned
        );
    }
}
