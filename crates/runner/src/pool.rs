//! The shared-nothing worker pool with deterministic aggregation.
//!
//! Workers pull positions off one atomic counter — in grid order, or in
//! an explicit schedule (used for longest-job-first dispatch against a
//! result cache) — and run a caller-supplied executor; each result is
//! stored into a slot addressed by the item's **original index**, never
//! by completion or dispatch order. The aggregated vector is therefore
//! identical for any thread count and any schedule — a parallel run is
//! byte-for-byte the serial run, just faster.
//!
//! Workers share nothing but the counter and the result slots: the
//! executor receives only the item, and is expected to build whatever
//! heavyweight state it needs (machines, suites, kernels) from scratch
//! per item. Simulations are seconds-long, so per-item setup is noise.
//!
//! Job-grid execution lives in [`crate::plan::ExecPlan`]; this module
//! keeps the index-level primitive ([`run_indexed`]) plus deprecated
//! shims for the pre-`ExecPlan` entry points.

use crate::job::{JobOutcome, JobSpec};
use crate::plan::ExecPlan;
use crate::progress::Progress;
use crate::Cache;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over `0..n` on `threads` workers and returns the results in
/// index order.
///
/// `threads == 1` runs inline on the calling thread (no pool, no locks):
/// the serial baseline parallel runs are measured against.
///
/// # Panics
///
/// A panicking executor propagates — but only after every worker has
/// joined, and sibling items already dispatched keep running to
/// completion first; no result slot is corrupted. Callers who want a
/// panic to cost one *job* rather than the whole run get that isolation
/// from [`crate::plan::ExecPlan`], which wraps its executor in
/// `catch_unwind` and turns the panic into a typed `Failed` slot.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_ordered(n, threads, None, f)
}

/// The execution core behind [`run_indexed`] and
/// [`crate::plan::ExecPlan`]: an optional schedule shifts wall-clock
/// (workers pull positions from `order` front to back), never output
/// bytes (results land by item index).
///
/// # Panics
///
/// Panics when `order` is not a permutation of `0..n`, and propagates
/// executor panics like [`run_indexed`].
pub(crate) fn run_ordered<T, F>(n: usize, threads: usize, order: Option<&[usize]>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "worker pool needs at least one thread");
    if let Some(order) = order {
        assert_eq!(order.len(), n, "schedule must cover every item");
        debug_assert!(
            {
                let mut seen = vec![false; n];
                order
                    .iter()
                    .all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
            },
            "schedule must be a permutation of 0..n"
        );
    }
    let at = |k: usize| order.map_or(k, |o| o[k]);
    if threads == 1 || n <= 1 {
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for k in 0..n {
            let i = at(k);
            slots[i] = Some(f(i));
        }
        return slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect();
    }
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let i = at(k);
                let out = f(i);
                // Recover a poisoned lock: each slot is written exactly
                // once, so a sibling's panic cannot have left the vector
                // half-updated — refusing the lock would only discard
                // finished work.
                slots
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// [`run_indexed`] with an explicit execution schedule.
///
/// # Panics
///
/// Panics when `order` is not a permutation of `0..n`, and propagates
/// executor panics like [`run_indexed`].
#[deprecated(
    since = "0.1.0",
    note = "schedules are an ExecPlan implementation detail; use run_indexed or ExecPlan"
)]
pub fn run_scheduled<T, F>(n: usize, threads: usize, order: Option<&[usize]>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_ordered(n, threads, order, f)
}

/// Executes a job list on the pool and aggregates outcomes by job index.
#[deprecated(
    since = "0.1.0",
    note = "use ExecPlan::new(jobs).threads(n).progress(p).run(exec)"
)]
pub fn run_jobs<F>(
    jobs: &[JobSpec],
    threads: usize,
    progress: Option<&Progress>,
    exec: F,
) -> Vec<JobOutcome>
where
    F: Fn(&JobSpec) -> JobOutcome + Sync,
{
    ExecPlan::new(jobs)
        .threads(threads)
        .progress(progress)
        .run(exec)
}

/// Executes a job list through a content-addressed result cache.
#[deprecated(
    since = "0.1.0",
    note = "use ExecPlan::new(jobs).threads(n).progress(p).cache(c).run(exec)"
)]
pub fn run_jobs_cached<F>(
    jobs: &[JobSpec],
    threads: usize,
    progress: Option<&Progress>,
    cache: Option<&Cache>,
    exec: F,
) -> Vec<JobOutcome>
where
    F: Fn(&JobSpec) -> JobOutcome + Sync,
{
    ExecPlan::new(jobs)
        .threads(threads)
        .progress(progress)
        .cache(cache)
        .run(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_index_ordered_for_any_thread_count() {
        let f = |i: usize| i * i;
        let serial = run_indexed(33, 1, f);
        for threads in [2, 3, 8] {
            assert_eq!(run_indexed(33, threads, f), serial, "threads={threads}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = Mutex::new(Vec::new());
        let _ = run_indexed(100, 4, |i| {
            hits.lock().unwrap().push(i);
            i
        });
        let hits = hits.into_inner().unwrap();
        assert_eq!(hits.len(), 100);
        assert_eq!(hits.iter().copied().collect::<HashSet<_>>().len(), 100);
    }

    #[test]
    fn serial_runs_inline_and_parallel_runs_on_workers() {
        let me = std::thread::current().id();
        let ids = run_indexed(4, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == me), "threads=1 must run inline");
        let ids = run_indexed(4, 2, |_| std::thread::current().id());
        assert!(
            ids.iter().all(|&id| id != me),
            "threads>1 must run on spawned workers"
        );
    }

    #[test]
    fn zero_and_one_item_edge_cases() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn schedule_changes_execution_order_but_not_results() {
        let order = vec![3, 1, 0, 2];
        let executed = Mutex::new(Vec::new());
        let out = run_ordered(4, 1, Some(&order), |i| {
            executed.lock().unwrap().push(i);
            i * 10
        });
        // Results are index-ordered regardless of the schedule...
        assert_eq!(out, vec![0, 10, 20, 30]);
        // ...and serial execution followed the schedule exactly.
        assert_eq!(executed.into_inner().unwrap(), order);
        // Parallel: same results for any schedule and thread count.
        for threads in [2, 4] {
            assert_eq!(
                run_ordered(4, threads, Some(&order), |i| i * 10),
                vec![0, 10, 20, 30]
            );
        }
    }

    #[test]
    #[should_panic(expected = "schedule must cover every item")]
    fn schedule_of_the_wrong_length_panics() {
        let _ = run_ordered(3, 2, Some(&[0, 1]), |i| i);
    }
}
