//! The shared-nothing worker pool with deterministic aggregation.
//!
//! Workers pull positions off one atomic counter — in grid order, or in
//! an explicit schedule ([`run_scheduled`], used for longest-job-first
//! dispatch against a result cache) — and run a caller-supplied
//! executor; each result is stored into a slot addressed by the item's
//! **original index**, never by completion or dispatch order. The
//! aggregated vector is therefore identical for any thread count and any
//! schedule — a parallel run is byte-for-byte the serial run, just
//! faster.
//!
//! Workers share nothing but the counter and the result slots: the
//! executor receives only the item, and is expected to build whatever
//! heavyweight state it needs (machines, suites, kernels) from scratch
//! per item. Simulations are seconds-long, so per-item setup is noise.

use crate::cache::{cost_order, Cache};
use crate::job::{JobOutcome, JobSpec};
use crate::progress::Progress;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over `0..n` on `threads` workers and returns the results in
/// index order.
///
/// `threads == 1` runs inline on the calling thread (no pool, no locks):
/// the serial baseline parallel runs are measured against.
///
/// # Panics
///
/// A panicking executor poisons the pool and propagates: the scope joins
/// every worker before unwinding, so no result is silently dropped.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_scheduled(n, threads, None, f)
}

/// [`run_indexed`] with an explicit execution schedule: workers pull
/// positions from `order` front to back, but every result is still
/// stored by its **item index** — the schedule shifts wall-clock (run
/// long jobs first, shrink the tail), never output bytes. `None` (or an
/// identity permutation) is plain grid order.
///
/// # Panics
///
/// Panics when `order` is not a permutation of `0..n`, and propagates
/// executor panics like [`run_indexed`].
pub fn run_scheduled<T, F>(n: usize, threads: usize, order: Option<&[usize]>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "worker pool needs at least one thread");
    if let Some(order) = order {
        assert_eq!(order.len(), n, "schedule must cover every item");
        debug_assert!(
            {
                let mut seen = vec![false; n];
                order
                    .iter()
                    .all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
            },
            "schedule must be a permutation of 0..n"
        );
    }
    let at = |k: usize| order.map_or(k, |o| o[k]);
    if threads == 1 || n <= 1 {
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for k in 0..n {
            let i = at(k);
            slots[i] = Some(f(i));
        }
        return slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect();
    }
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let i = at(k);
                let out = f(i);
                slots.lock().expect("pool poisoned")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("pool poisoned")
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Executes a job list on the pool and aggregates outcomes by job index.
///
/// `exec` is the leaf runner (for the benchmark suite:
/// `dmt_bench::execute_job`, which resolves the named benchmark, builds a
/// fresh `Machine` and calls `try_run_one`). Progress, when provided, is
/// reported in completion order on stderr; stdout-facing results are
/// index-ordered and thread-count-invariant.
pub fn run_jobs<F>(
    jobs: &[JobSpec],
    threads: usize,
    progress: Option<&Progress>,
    exec: F,
) -> Vec<JobOutcome>
where
    F: Fn(&JobSpec) -> JobOutcome + Sync,
{
    if let Some(p) = progress {
        p.begin(jobs.len());
    }
    run_indexed(jobs.len(), threads, |i| {
        let outcome = exec(&jobs[i]);
        if let Some(p) = progress {
            p.completed(&jobs[i], &outcome);
        }
        outcome
    })
}

/// [`run_jobs`] through a content-addressed result cache: cache hits
/// skip simulation entirely, misses are executed longest-expected-first
/// (cost-sorted against the cache's cycle history; grid order on a cold
/// cache) and persisted as soon as each completes — so a killed run
/// resumes from exactly the jobs it had finished.
///
/// Aggregation is unchanged: outcomes land by job index, and a decoded
/// hit is byte-for-byte the outcome the original simulation produced, so
/// stdout and artifacts are identical in every cache state. The progress
/// ticker counts only the jobs actually executed; hits are summarized by
/// the cache's stderr stats line ([`Cache::report`]).
///
/// With `cache == None` this is exactly [`run_jobs`].
pub fn run_jobs_cached<F>(
    jobs: &[JobSpec],
    threads: usize,
    progress: Option<&Progress>,
    cache: Option<&Cache>,
    exec: F,
) -> Vec<JobOutcome>
where
    F: Fn(&JobSpec) -> JobOutcome + Sync,
{
    let Some(cache) = cache else {
        return run_jobs(jobs, threads, progress, exec);
    };
    let mut slots: Vec<Option<JobOutcome>> = jobs.iter().map(|j| cache.lookup(j)).collect();
    let pending: Vec<usize> = (0..jobs.len()).filter(|&i| slots[i].is_none()).collect();
    if let Some(p) = progress {
        p.begin(pending.len());
    }
    if !pending.is_empty() {
        let specs: Vec<&JobSpec> = pending.iter().map(|&i| &jobs[i]).collect();
        let order = cost_order(&specs, &cache.cost_index());
        let executed = run_scheduled(pending.len(), threads, Some(&order), |k| {
            let spec = &jobs[pending[k]];
            let outcome = exec(spec);
            // Persist immediately — resume depends on completed work
            // surviving a kill, not on reaching the end of the run. A
            // failed store costs a future re-simulation, not this run.
            if let Err(e) = cache.store(spec, &outcome) {
                eprintln!(
                    "[dmt-runner] warning: cache store failed for {spec}: {e} ({})",
                    cache.entry_path(spec).display()
                );
            }
            if let Some(p) = progress {
                p.completed(spec, &outcome);
            }
            outcome
        });
        for (k, outcome) in executed.into_iter().enumerate() {
            slots[pending[k]] = Some(outcome);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_index_ordered_for_any_thread_count() {
        let f = |i: usize| i * i;
        let serial = run_indexed(33, 1, f);
        for threads in [2, 3, 8] {
            assert_eq!(run_indexed(33, threads, f), serial, "threads={threads}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = Mutex::new(Vec::new());
        let _ = run_indexed(100, 4, |i| {
            hits.lock().unwrap().push(i);
            i
        });
        let hits = hits.into_inner().unwrap();
        assert_eq!(hits.len(), 100);
        assert_eq!(hits.iter().copied().collect::<HashSet<_>>().len(), 100);
    }

    #[test]
    fn serial_runs_inline_and_parallel_runs_on_workers() {
        let me = std::thread::current().id();
        let ids = run_indexed(4, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == me), "threads=1 must run inline");
        let ids = run_indexed(4, 2, |_| std::thread::current().id());
        assert!(
            ids.iter().all(|&id| id != me),
            "threads>1 must run on spawned workers"
        );
    }

    #[test]
    fn zero_and_one_item_edge_cases() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn schedule_changes_execution_order_but_not_results() {
        let order = vec![3, 1, 0, 2];
        let executed = Mutex::new(Vec::new());
        let out = run_scheduled(4, 1, Some(&order), |i| {
            executed.lock().unwrap().push(i);
            i * 10
        });
        // Results are index-ordered regardless of the schedule...
        assert_eq!(out, vec![0, 10, 20, 30]);
        // ...and serial execution followed the schedule exactly.
        assert_eq!(executed.into_inner().unwrap(), order);
        // Parallel: same results for any schedule and thread count.
        for threads in [2, 4] {
            assert_eq!(
                run_scheduled(4, threads, Some(&order), |i| i * 10),
                vec![0, 10, 20, 30]
            );
        }
    }

    #[test]
    #[should_panic(expected = "schedule must cover every item")]
    fn schedule_of_the_wrong_length_panics() {
        let _ = run_scheduled(3, 2, Some(&[0, 1]), |i| i);
    }

    #[test]
    fn cached_run_skips_hits_executes_misses_and_persists() {
        use crate::job::JobMetrics;
        use dmt_core::{Arch, SystemConfig};

        let dir = std::env::temp_dir().join(format!("dmt_pool_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::open(&dir).unwrap();
        let jobs: Vec<JobSpec> = (0..4)
            .map(|seed| JobSpec::new("scan", Arch::DmtCgra, SystemConfig::default(), seed))
            .collect();
        let exec_count = AtomicUsize::new(0);
        let exec = |spec: &JobSpec| {
            exec_count.fetch_add(1, Ordering::Relaxed);
            JobOutcome::completed(JobMetrics {
                kernel: spec.bench.clone(),
                stats: dmt_common::stats::RunStats {
                    cycles: (spec.seed + 1) * 100,
                    ..Default::default()
                },
                energy: dmt_core::energy::EnergyReport::default(),
            })
        };

        // Pre-warm two of the four jobs.
        cache.store(&jobs[1], &exec(&jobs[1])).unwrap();
        cache.store(&jobs[3], &exec(&jobs[3])).unwrap();
        exec_count.store(0, Ordering::Relaxed);

        let outcomes = run_jobs_cached(&jobs, 2, None, Some(&cache), exec);
        assert_eq!(exec_count.load(Ordering::Relaxed), 2, "only the misses run");
        assert_eq!(outcomes.len(), 4);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.metrics().unwrap().cycles(), (i as u64 + 1) * 100);
        }

        // Everything is now persisted: a fresh handle serves all 4 jobs
        // without a single execution.
        let cache2 = Cache::open(&dir).unwrap();
        let again = run_jobs_cached(&jobs, 2, None, Some(&cache2), |_: &JobSpec| {
            panic!("warm run must not execute")
        });
        assert_eq!(again, outcomes);
        assert_eq!(cache2.stats().hits, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_run_without_a_cache_is_run_jobs() {
        use crate::job::JobMetrics;
        use dmt_core::{Arch, SystemConfig};
        let jobs = [JobSpec::new(
            "scan",
            Arch::DmtCgra,
            SystemConfig::default(),
            1,
        )];
        let exec = |spec: &JobSpec| {
            JobOutcome::completed(JobMetrics {
                kernel: spec.bench.clone(),
                stats: dmt_common::stats::RunStats::default(),
                energy: dmt_core::energy::EnergyReport::default(),
            })
        };
        assert_eq!(
            run_jobs_cached(&jobs, 1, None, None, exec),
            run_jobs(&jobs, 1, None, exec)
        );
    }
}
