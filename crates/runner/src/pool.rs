//! The shared-nothing worker pool with deterministic aggregation.
//!
//! Workers pull item indices from one atomic counter and run a
//! caller-supplied executor; each result is stored into a slot addressed
//! by the item's **original index**, never by completion order. The
//! aggregated vector is therefore identical for any thread count — a
//! parallel run is byte-for-byte the serial run, just faster.
//!
//! Workers share nothing but the counter and the result slots: the
//! executor receives only the item, and is expected to build whatever
//! heavyweight state it needs (machines, suites, kernels) from scratch
//! per item. Simulations are seconds-long, so per-item setup is noise.

use crate::job::{JobOutcome, JobSpec};
use crate::progress::Progress;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over `0..n` on `threads` workers and returns the results in
/// index order.
///
/// `threads == 1` runs inline on the calling thread (no pool, no locks):
/// the serial baseline parallel runs are measured against.
///
/// # Panics
///
/// A panicking executor poisons the pool and propagates: the scope joins
/// every worker before unwinding, so no result is silently dropped.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "worker pool needs at least one thread");
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                slots.lock().expect("pool poisoned")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("pool poisoned")
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Executes a job list on the pool and aggregates outcomes by job index.
///
/// `exec` is the leaf runner (for the benchmark suite:
/// `dmt_bench::execute_job`, which resolves the named benchmark, builds a
/// fresh `Machine` and calls `try_run_one`). Progress, when provided, is
/// reported in completion order on stderr; stdout-facing results are
/// index-ordered and thread-count-invariant.
pub fn run_jobs<F>(
    jobs: &[JobSpec],
    threads: usize,
    progress: Option<&Progress>,
    exec: F,
) -> Vec<JobOutcome>
where
    F: Fn(&JobSpec) -> JobOutcome + Sync,
{
    if let Some(p) = progress {
        p.begin(jobs.len());
    }
    run_indexed(jobs.len(), threads, |i| {
        let outcome = exec(&jobs[i]);
        if let Some(p) = progress {
            p.completed(&jobs[i], &outcome);
        }
        outcome
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_index_ordered_for_any_thread_count() {
        let f = |i: usize| i * i;
        let serial = run_indexed(33, 1, f);
        for threads in [2, 3, 8] {
            assert_eq!(run_indexed(33, threads, f), serial, "threads={threads}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = Mutex::new(Vec::new());
        let _ = run_indexed(100, 4, |i| {
            hits.lock().unwrap().push(i);
            i
        });
        let hits = hits.into_inner().unwrap();
        assert_eq!(hits.len(), 100);
        assert_eq!(hits.iter().copied().collect::<HashSet<_>>().len(), 100);
    }

    #[test]
    fn serial_runs_inline_and_parallel_runs_on_workers() {
        let me = std::thread::current().id();
        let ids = run_indexed(4, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == me), "threads=1 must run inline");
        let ids = run_indexed(4, 2, |_| std::thread::current().id());
        assert!(
            ids.iter().all(|&id| id != me),
            "threads>1 must run on spawned workers"
        );
    }

    #[test]
    fn zero_and_one_item_edge_cases() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 7), vec![7]);
    }
}
