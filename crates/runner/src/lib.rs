//! # dmt-runner: parallel experiment orchestration
//!
//! The paper's evaluation (§5.2) is a cross-product of benchmarks ×
//! architectures × configurations × seeds. This crate turns that grid
//! into an explicit job list and executes it on a shared-nothing worker
//! pool with **deterministic aggregation**: results are collected by job
//! index, never by completion order, so the aggregated output of a
//! parallel run is byte-identical to the serial run.
//!
//! The crate is orchestration-only — it does not know how to simulate
//! anything. The leaf executor is injected by the caller (`dmt-bench`
//! passes its `execute_job`, which keeps `run_one`/`try_run_one` as the
//! single simulation entry point in the workspace).
//!
//! | Module | Role |
//! |---|---|
//! | [`job`] | `JobSpec` descriptors, outcomes, stable job hashes |
//! | [`plan`] | [`ExecPlan`]: the one builder every job grid runs through |
//! | [`pool`] | `std::thread::scope` worker pool, index-ordered results |
//! | [`hash`] | order-independent FNV/splitmix stable hashing |
//! | [`artifact`] | versioned JSON artifacts (`schema_version: 2`, per-phase stats) + parser |
//! | [`cache`] | content-addressed result cache, resume, cost-sorted scheduling |
//! | [`progress`] | completion-ordered stderr ticker |
//! | [`cli`] | declarative flag registry + the shared `--threads/--json/--cache/...` surface |
//!
//! # Example
//!
//! Orchestrate a tiny grid with a custom executor (the real executor
//! lives in `dmt-bench`):
//!
//! ```
//! use dmt_runner::{Artifact, ExecPlan, JobOutcome, JobSpec, JobMetrics};
//! use dmt_core::{Arch, SystemConfig};
//!
//! // Two architectures × two seeds.
//! let jobs: Vec<JobSpec> = [1u64, 2]
//!     .iter()
//!     .flat_map(|&seed| {
//!         [Arch::FermiSm, Arch::DmtCgra]
//!             .map(|arch| JobSpec::new("toy", arch, SystemConfig::default(), seed))
//!     })
//!     .collect();
//!
//! // A stand-in executor: pretend every run takes `seed * 100` cycles.
//! let exec = |spec: &JobSpec| {
//!     let mut stats = dmt_core::common::stats::RunStats::default();
//!     stats.cycles = spec.seed * 100;
//!     JobOutcome::completed(JobMetrics {
//!         kernel: spec.bench.clone(),
//!         stats,
//!         energy: dmt_core::EnergyReport::default(),
//!     })
//! };
//!
//! // Aggregation is by job index: 4 workers or 1, same vector.
//! let parallel = ExecPlan::new(&jobs).threads(4).run(exec);
//! let serial = ExecPlan::new(&jobs).run(exec);
//! assert_eq!(parallel, serial);
//!
//! // And the artifact's jobs array is fully deterministic.
//! let art = Artifact::new("example", 4, 0, 1, jobs, parallel);
//! assert!(art.jobs_json().render().contains("\"cycles\": 100"));
//! ```

pub mod artifact;
pub mod cache;
pub mod cli;
pub mod hash;
pub mod job;
pub mod plan;
pub mod pool;
pub mod progress;

pub use artifact::{write_json, write_json_logged, Artifact, Json, SCHEMA_VERSION};
pub use cache::{Cache, CacheStats, CostIndex};
pub use cli::{resolve_threads, Flag, RunnerArgs};
pub use hash::{config_hash, StableHasher};
pub use job::{JobMetrics, JobOutcome, JobSpec};
pub use plan::{panic_message, ExecPlan};
pub use pool::run_indexed;
#[allow(deprecated)]
pub use pool::{run_jobs, run_jobs_cached, run_scheduled};
pub use progress::Progress;
