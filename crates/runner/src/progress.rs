//! Live progress reporting on stderr.
//!
//! Progress is inherently completion-ordered, so it goes to **stderr**
//! only: stdout (tables, figures, CSV) and JSON artifacts stay
//! thread-count-invariant. Reporting is off by default to keep CI logs
//! clean; binaries enable it with `--progress` or `DMT_PROGRESS=1`.

use crate::job::{JobOutcome, JobSpec};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Completion-ordered job ticker.
#[derive(Debug, Default)]
pub struct Progress {
    enabled: bool,
    total: AtomicUsize,
    done: AtomicUsize,
}

impl Progress {
    /// A reporter that prints when `enabled` (chain with
    /// [`Progress::from_env`] for the `DMT_PROGRESS` override).
    #[must_use]
    pub fn new(enabled: bool) -> Progress {
        Progress {
            enabled,
            total: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
        }
    }

    /// Enabled when the `DMT_PROGRESS` environment variable is set to
    /// anything but `0` or empty.
    #[must_use]
    pub fn from_env() -> Progress {
        let on = std::env::var("DMT_PROGRESS").is_ok_and(|v| !v.is_empty() && v != "0");
        Progress::new(on)
    }

    /// Whether this reporter prints at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Resets the ticker for a run of `total` jobs.
    pub fn begin(&self, total: usize) {
        self.total.store(total, Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        if self.enabled && total > 0 {
            eprintln!("[dmt-runner] {total} jobs queued");
        }
    }

    /// Records (and, when enabled, prints) one completed job.
    pub fn completed(&self, spec: &JobSpec, outcome: &JobOutcome) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return;
        }
        let total = self.total.load(Ordering::Relaxed);
        match outcome {
            JobOutcome::Completed(m) => {
                eprintln!(
                    "[dmt-runner] [{done}/{total}] {spec}: {} cycles",
                    m.cycles()
                );
            }
            JobOutcome::Infeasible(e) => {
                eprintln!("[dmt-runner] [{done}/{total}] {spec}: infeasible ({e})");
            }
            JobOutcome::Failed(e) => {
                eprintln!("[dmt-runner] [{done}/{total}] {spec}: failed ({e})");
            }
            JobOutcome::TimedOut(e) => {
                eprintln!("[dmt-runner] [{done}/{total}] {spec}: timed out ({e})");
            }
        }
    }

    /// Jobs completed so far.
    #[must_use]
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::{Arch, SystemConfig};

    #[test]
    fn counts_without_printing_when_disabled() {
        let p = Progress::new(false);
        p.begin(2);
        let spec = JobSpec::new("scan", Arch::DmtCgra, SystemConfig::default(), 1);
        p.completed(&spec, &JobOutcome::Infeasible("x".into()));
        p.completed(&spec, &JobOutcome::Infeasible("x".into()));
        assert_eq!(p.done(), 2);
        assert!(!p.is_enabled());
    }
}
