//! Content-addressed result cache: one JSON record per completed job.
//!
//! A [`Cache`] stores every finished [`JobOutcome`] under
//! `<dir>/<job_hash>.json`, keyed by the stable [`JobSpec::job_hash`]
//! (reproducible across runs, platforms and field reordering — see
//! [`crate::hash`]). Records are written with the same hand-rolled codec
//! as the artifacts and carry the artifact [`SCHEMA_VERSION`]; a version
//! bump invalidates every entry on read, so stale records can never leak
//! metrics with a different meaning into a new artifact.
//!
//! # Entry schema
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "generator": "dmt-runner",
//!   "kind": "job_cache_entry",
//!   "job_hash": "0x....",                  // must match the looked-up spec
//!   "bench": "scan", "arch": "dmt_cgra",   // identity echo, belt and braces
//!   "seed": 42, "config_hash": "0x....",
//!   "status": "ok" | "infeasible",
//!   "error": "...",                        // iff infeasible
//!   "kernel": "...", "cycles": N,          // iff ok, plus:
//!   "total_j": X, "energy": {...}, "stats": {...}, "phases": [{...}, ...]
//! }
//! ```
//!
//! The `status`/`kernel`/`cycles`/`energy`/`stats`/`phases` block is
//! exactly the per-job shape of the artifact `"jobs"` array, so a decoded
//! outcome re-renders byte-identically into an artifact: a warm run's
//! stdout and JSON artifact are indistinguishable from the cold run that
//! filled the cache.
//!
//! # Robustness
//!
//! Every lookup failure mode — missing file, truncated or corrupt JSON,
//! schema-version mismatch, identity mismatch, missing counters, a phase
//! breakdown that does not sum to the totals — is a *miss*, never an
//! error: the job is simply re-simulated and the entry rewritten. Stores
//! go through a temp-file + rename, so a run killed mid-write leaves at
//! worst a stale `.tmp` file, not a corrupt entry.
//!
//! Schema-version mismatches are additionally *counted*
//! ([`CacheStats::schema_invalidated`]) and reported in the stderr
//! summary line, so a sweep log shows how much of a warm directory a
//! version bump (e.g. v1 → v2) invalidated-as-miss.
//!
//! Store failures are counted too ([`CacheStats::store_failures`]), and
//! an *unusable* directory degrades rather than errors:
//! [`Cache::open_or_degraded`] falls back to counted no-cache operation
//! (every lookup a miss, every store a counted skip) with one stderr
//! line, so a read-only or broken cache path costs re-simulation, never
//! the run. The `cache.read` / `cache.write` / `cache.rename`
//! failpoints (`dmt_common::faults`) inject exactly these I/O failures
//! deterministically.
//!
//! # What the key does NOT cover: the simulator itself
//!
//! `job_hash` addresses the *experiment point*, not the code that
//! measures it. After editing simulator source, a previously-filled
//! cache still answers with the old numbers — delete the directory (or
//! use a per-version directory) when the simulators change. CI encodes
//! this rule structurally by keying its persisted cache on the hash of
//! every `.rs` source; locally it is a documented contract, chosen over
//! a baked-in build fingerprint so that a rebuild with an unrelated
//! change (a new binary, a doc edit) does not discard hours of sweep
//! results.
//!
//! # Scheduling
//!
//! The cache doubles as the cost model for the pool's longest-job-first
//! schedule: [`Cache::cost_index`] scans the completed entries into a
//! `(bench, arch) → max cycles` table and [`cost_order`] sorts pending
//! jobs by that estimate (grid order on a cold cache). See
//! [`crate::plan::ExecPlan`].

use crate::artifact::{Json, SCHEMA_VERSION};
use crate::job::{JobMetrics, JobOutcome, JobSpec};
use dmt_common::faults;
use dmt_common::stats::{PhaseStats, RunStats};
use dmt_core::energy::EnergyReport;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Hit/miss/store counters of one cache handle (not persisted — each
/// process run starts from zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that missed (absent, corrupt or invalidated entries).
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// The subset of `misses` that were well-formed entries of another
    /// schema version, invalidated by the version bump (the observable
    /// cost of a v1 → v2 migration in a warm directory).
    pub schema_invalidated: u64,
    /// Stores that could not be persisted (I/O error, injected fault,
    /// or skipped because the handle is degraded). Each one costs a
    /// future re-simulation, never this run's results.
    pub store_failures: u64,
}

/// An on-disk result store addressed by [`JobSpec::cache_key`].
///
/// Shared by reference across pool workers: the counters are atomic and
/// every filesystem operation is independent, so `&Cache` is `Sync`.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    /// Degraded handles never touch the filesystem: lookups are counted
    /// misses, stores are counted skips. Set once at open, never after.
    degraded: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    schema_invalidated: AtomicU64,
    store_failures: AtomicU64,
}

impl Cache {
    fn with_dir(dir: PathBuf, degraded: bool) -> Cache {
        Cache {
            dir,
            degraded,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            schema_invalidated: AtomicU64::new(0),
            store_failures: AtomicU64::new(0),
        }
    }

    /// Opens (and creates, if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error when the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Cache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Cache::with_dir(dir, false))
    }

    /// [`Cache::open`] that never fails: when the directory cannot be
    /// created (unwritable parent, a file in the way…), the handle
    /// *degrades* to counted no-cache operation — every lookup is a
    /// miss, every store a counted skip — and announces the degradation
    /// once on stderr in the cache-report idiom. The run proceeds at
    /// full correctness, paying re-simulation instead of persistence.
    #[must_use]
    pub fn open_or_degraded(dir: impl Into<PathBuf>) -> Cache {
        let dir = dir.into();
        match Cache::open(&dir) {
            Ok(cache) => cache,
            Err(e) => {
                eprintln!(
                    "[dmt-runner] cache: degraded to no-cache operation — cannot open {}: {e}",
                    dir.display()
                );
                Cache::with_dir(dir, true)
            }
        }
    }

    /// True when this handle degraded at open and performs no I/O.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for one job.
    #[must_use]
    pub fn entry_path(&self, spec: &JobSpec) -> PathBuf {
        self.dir.join(format!("{}.json", spec.cache_key()))
    }

    /// This handle's hit/miss/store counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            schema_invalidated: self.schema_invalidated.load(Ordering::Relaxed),
            store_failures: self.store_failures.load(Ordering::Relaxed),
        }
    }

    /// Looks up a completed outcome. Any defect in the stored entry —
    /// corrupt JSON, wrong schema version, identity mismatch, missing
    /// fields — is a miss (the caller re-simulates and overwrites).
    /// Schema-version mismatches are counted separately so version-bump
    /// invalidations are observable in the stderr summary.
    #[must_use]
    pub fn lookup(&self, spec: &JobSpec) -> Option<JobOutcome> {
        if self.degraded || faults::hit(faults::site::CACHE_READ) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = std::fs::read_to_string(self.entry_path(spec))
            .ok()
            .map(|text| classify_entry(&text, spec));
        match found {
            Some(EntryClass::Valid(outcome)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(outcome)
            }
            Some(EntryClass::StaleSchema) => {
                self.schema_invalidated.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(EntryClass::Defective) | None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists one outcome under the spec's content address.
    ///
    /// Written via a sibling temp file and an atomic rename: concurrent
    /// writers of the same key race benignly (same content), and a kill
    /// mid-write cannot leave a half-entry under the final name.
    ///
    /// Transient and timed-out outcomes are never persisted: a failed
    /// job must retry, and a timed-out one depends on a deadline the
    /// job hash does not cover — both are silently skipped.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (callers log-and-continue: a failed
    /// store costs a future re-simulation, not this run's results).
    /// Every error — propagated, injected or degraded-skip — is counted
    /// in [`CacheStats::store_failures`].
    pub fn store(&self, spec: &JobSpec, outcome: &JobOutcome) -> std::io::Result<()> {
        if !outcome.cacheable() {
            return Ok(());
        }
        if self.degraded {
            self.store_failures.fetch_add(1, Ordering::Relaxed);
            return Ok(()); // announced once at open; not a per-job error
        }
        let result = self.store_inner(spec, outcome);
        if result.is_err() {
            self.store_failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn store_inner(&self, spec: &JobSpec, outcome: &JobOutcome) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind};
        let path = self.entry_path(spec);
        let tmp = self
            .dir
            .join(format!("{}.tmp.{}", spec.cache_key(), std::process::id()));
        if faults::hit(faults::site::CACHE_WRITE) {
            return Err(Error::new(
                ErrorKind::StorageFull,
                "injected fault: cache.write",
            ));
        }
        std::fs::write(&tmp, encode_entry(spec, outcome).render())?;
        if faults::hit(faults::site::CACHE_RENAME) {
            let _ = std::fs::remove_file(&tmp);
            return Err(Error::other("injected fault: cache.rename"));
        }
        std::fs::rename(&tmp, &path)?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// One stderr summary line (the documented cache-stats line; stderr
    /// so stdout stays byte-identical across cache states). When a schema
    /// bump invalidated entries, the miss count is annotated so v1 → v2
    /// migrations are observable in sweep logs.
    pub fn report(&self) {
        let s = self.stats();
        let invalidated = if s.schema_invalidated > 0 {
            format!(" ({} schema-invalidated)", s.schema_invalidated)
        } else {
            String::new()
        };
        // Annotations appear only when non-zero, so the healthy-path
        // line stays byte-identical to what CI logs have always grepped.
        let store_failures = if s.store_failures > 0 {
            format!(", {} store-failures", s.store_failures)
        } else {
            String::new()
        };
        let degraded = if self.degraded {
            " [degraded: no-cache]"
        } else {
            ""
        };
        eprintln!(
            "[dmt-runner] cache: {} hits, {} misses{}, {} stored{} ({}){}",
            s.hits,
            s.misses,
            invalidated,
            s.stores,
            store_failures,
            self.dir.display(),
            degraded
        );
    }

    /// Scans every valid entry into a `(bench, arch) → max cycles` cost
    /// table for longest-job-first scheduling. Unreadable or invalid
    /// entries are skipped — the index is an optimization, never a
    /// correctness input.
    #[must_use]
    pub fn cost_index(&self) -> CostIndex {
        let mut index = CostIndex::default();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return index;
        };
        for entry in entries.flatten() {
            if entry.path().extension().is_none_or(|e| e != "json") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(entry.path()) else {
                continue;
            };
            let Ok(doc) = Json::parse(&text) else {
                continue;
            };
            if doc.get("schema_version").and_then(Json::as_u64) != Some(SCHEMA_VERSION)
                || doc.get("kind").and_then(Json::as_str) != Some("job_cache_entry")
            {
                continue;
            }
            let (Some(bench), Some(arch), Some(cycles)) = (
                doc.get("bench").and_then(Json::as_str),
                doc.get("arch").and_then(Json::as_str),
                doc.get("cycles").and_then(Json::as_u64),
            ) else {
                continue;
            };
            index.record(bench, arch, cycles);
        }
        index
    }
}

/// A `(bench, arch) → max observed cycles` table, the pool's job-cost
/// estimator.
#[derive(Debug, Clone, Default)]
pub struct CostIndex {
    by_point: HashMap<(String, String), u64>,
}

impl CostIndex {
    /// Records one observation, keeping the maximum per `(bench, arch)`.
    pub fn record(&mut self, bench: &str, arch: &str, cycles: u64) {
        let slot = self
            .by_point
            .entry((bench.to_owned(), arch.to_owned()))
            .or_insert(0);
        *slot = (*slot).max(cycles);
    }

    /// The cycle estimate for a job, when this `(bench, arch)` point has
    /// ever completed in the cache. Configuration changes scale a
    /// benchmark's cost far less than the benchmark/machine choice does,
    /// so the coarse key is a useful ranking even mid-sweep.
    #[must_use]
    pub fn estimate(&self, spec: &JobSpec) -> Option<u64> {
        self.by_point
            .get(&(spec.bench.clone(), spec.arch.key().to_owned()))
            .copied()
    }

    /// True when the index has no observations (cold cache).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_point.is_empty()
    }
}

/// Longest-expected-job-first execution order for `specs`: a permutation
/// of `0..specs.len()`.
///
/// Jobs with a cost estimate run first, longest first (ties and equal
/// estimates keep grid order — the sort is stable); jobs the index knows
/// nothing about follow in grid order. On a cold cache (no estimates at
/// all) this degenerates to exactly the grid order, so scheduling is
/// deterministic in every state. Only the *execution* order changes —
/// results are always aggregated by job index, so output bytes are
/// unaffected.
#[must_use]
pub fn cost_order(specs: &[&JobSpec], index: &CostIndex) -> Vec<usize> {
    let mut order: Vec<usize> = (0..specs.len()).collect();
    if index.is_empty() {
        return order;
    }
    order.sort_by_key(|&i| match index.estimate(specs[i]) {
        // Known costs first (longest first), then unknowns in grid order.
        Some(cycles) => (0u8, u64::MAX - cycles),
        None => (1u8, 0),
    });
    order
}

/// Encodes one completed job as a cache-entry document: the identity
/// header plus the shared per-job measurement shape
/// ([`crate::artifact::with_outcome`] — one definition for artifacts and
/// cache entries, so the two cannot drift).
#[must_use]
pub fn encode_entry(spec: &JobSpec, outcome: &JobOutcome) -> Json {
    let doc = Json::obj()
        .with("schema_version", SCHEMA_VERSION)
        .with("generator", "dmt-runner")
        .with("kind", "job_cache_entry")
        .with("job_hash", format!("{:#018x}", spec.job_hash()))
        .with("bench", spec.bench.as_str())
        .with("arch", spec.arch.key())
        .with("seed", spec.seed)
        .with("config_hash", format!("{:#018x}", spec.config_hash()));
    crate::artifact::with_outcome(doc, outcome)
}

/// How one on-disk entry answered a lookup.
enum EntryClass {
    /// Well-formed, current-schema, identity-matching: a hit.
    Valid(JobOutcome),
    /// Well-formed entry of another schema version: a miss, counted as
    /// invalidated-by-the-version-bump.
    StaleSchema,
    /// Anything else (corrupt, truncated, identity mismatch, missing or
    /// inconsistent fields): a plain miss.
    Defective,
}

/// Parses and fully validates one entry, classifying the failure mode.
fn classify_entry(text: &str, spec: &JobSpec) -> EntryClass {
    let Ok(doc) = Json::parse(text) else {
        return EntryClass::Defective;
    };
    if doc.get("kind").and_then(Json::as_str) != Some("job_cache_entry") {
        return EntryClass::Defective;
    }
    match doc.get("schema_version").and_then(Json::as_u64) {
        Some(SCHEMA_VERSION) => {}
        Some(_) => return EntryClass::StaleSchema,
        None => return EntryClass::Defective,
    }
    match decode_validated(&doc, spec) {
        Some(outcome) => EntryClass::Valid(outcome),
        None => EntryClass::Defective,
    }
}

/// Decodes a cache entry, validating it against the spec it is answering
/// for. `None` on any defect (including another schema version).
#[must_use]
pub fn decode_entry(text: &str, spec: &JobSpec) -> Option<JobOutcome> {
    match classify_entry(text, spec) {
        EntryClass::Valid(outcome) => Some(outcome),
        EntryClass::StaleSchema | EntryClass::Defective => None,
    }
}

/// The identity and measurement checks behind [`decode_entry`] (schema
/// version and kind already verified by the caller).
fn decode_validated(doc: &Json, spec: &JobSpec) -> Option<JobOutcome> {
    // The filename already encodes the job hash; re-checking it (and the
    // human-readable identity echo) guards against renamed files and the
    // astronomically unlikely hash collision turning into wrong numbers.
    if doc.get("job_hash").and_then(Json::as_str) != Some(&format!("{:#018x}", spec.job_hash()))
        || doc.get("bench").and_then(Json::as_str) != Some(spec.bench.as_str())
        || doc.get("arch").and_then(Json::as_str) != Some(spec.arch.key())
        || doc.get("seed").and_then(Json::as_u64) != Some(spec.seed)
    {
        return None;
    }
    match doc.get("status").and_then(Json::as_str)? {
        "infeasible" => Some(JobOutcome::Infeasible(
            doc.get("error")?.as_str()?.to_owned(),
        )),
        "ok" => {
            let mut stats = stats_from_json(doc.get("stats")?)?;
            stats.per_phase = phases_from_json(doc.get("phases")?)?;
            // A breakdown that does not sum to the totals would re-render
            // differently than it measured: treat it as corruption.
            if !stats.phase_sums_match() {
                return None;
            }
            Some(JobOutcome::completed(JobMetrics {
                kernel: doc.get("kernel")?.as_str()?.to_owned(),
                stats,
                energy: energy_from_json(doc.get("energy")?)?,
            }))
        }
        _ => None,
    }
}

// Both counter decoders are generated from the one counter list in
// `dmt_common::stats`: adding a counter there adds it to the structs, the
// serializers and these decoders in one edit — the four can never drift.
macro_rules! gen_counter_decoders {
    ($(($field:ident, $doc:literal)),+ $(,)?) => {
        /// Decodes a full [`RunStats`] totals block (the per-phase
        /// breakdown travels separately under `"phases"`; see
        /// [`phases_from_json`]). `None` when any counter is absent or
        /// mistyped.
        #[must_use]
        pub fn stats_from_json(j: &Json) -> Option<RunStats> {
            Some(RunStats {
                $($field: j.get(stringify!($field)).and_then(Json::as_u64)?,)+
                per_phase: Vec::new(),
            })
        }

        /// Decodes one [`PhaseStats`] record — the same counter set as
        /// [`stats_from_json`].
        #[must_use]
        pub fn phase_stats_from_json(j: &Json) -> Option<PhaseStats> {
            Some(PhaseStats {
                $($field: j.get(stringify!($field)).and_then(Json::as_u64)?,)+
            })
        }
    };
}

dmt_common::for_each_run_counter!(gen_counter_decoders);

/// Decodes the `"phases"` array into per-phase records. `None` when the
/// value is not an array or any phase record is defective.
#[must_use]
pub fn phases_from_json(j: &Json) -> Option<Vec<PhaseStats>> {
    j.as_arr()?.iter().map(phase_stats_from_json).collect()
}

/// Decodes an [`EnergyReport`] (exhaustive, like [`stats_from_json`]).
#[must_use]
pub fn energy_from_json(j: &Json) -> Option<EnergyReport> {
    let g = |name: &str| j.get(name).and_then(Json::as_f64);
    Some(EnergyReport {
        compute_j: g("compute_j")?,
        fetch_decode_j: g("fetch_decode_j")?,
        register_file_j: g("register_file_j")?,
        token_transport_j: g("token_transport_j")?,
        scratchpad_j: g("scratchpad_j")?,
        cache_j: g("cache_j")?,
        dram_j: g("dram_j")?,
        static_j: g("static_j")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::{Arch, SystemConfig};
    use std::sync::atomic::AtomicUsize;

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dmt_cache_unit_{}_{}_{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(bench: &str, arch: Arch, seed: u64) -> JobSpec {
        JobSpec::new(bench, arch, SystemConfig::default(), seed)
    }

    fn ok_outcome(cycles: u64) -> JobOutcome {
        JobOutcome::completed(JobMetrics {
            kernel: "k".into(),
            stats: RunStats {
                cycles,
                l2_misses: 3,
                ..Default::default()
            },
            energy: EnergyReport {
                compute_j: 1.25e-7,
                static_j: 0.5,
                ..Default::default()
            },
        })
    }

    #[test]
    fn store_then_lookup_round_trips_both_outcome_kinds() {
        let cache = Cache::open(tmp_dir("roundtrip")).unwrap();
        let ok_spec = spec("scan", Arch::DmtCgra, 1);
        let inf_spec = spec("reduce", Arch::DmtCgra, 1);
        cache.store(&ok_spec, &ok_outcome(123)).unwrap();
        cache
            .store(&inf_spec, &JobOutcome::Infeasible("window".into()))
            .unwrap();
        assert_eq!(cache.lookup(&ok_spec), Some(ok_outcome(123)));
        assert_eq!(
            cache.lookup(&inf_spec),
            Some(JobOutcome::Infeasible("window".into()))
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 2,
                misses: 0,
                stores: 2,
                schema_invalidated: 0,
                store_failures: 0
            }
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn transient_and_timed_out_outcomes_are_never_persisted() {
        let cache = Cache::open(tmp_dir("no_persist")).unwrap();
        let s = spec("scan", Arch::DmtCgra, 1);
        cache
            .store(&s, &JobOutcome::Failed("executor panicked".into()))
            .unwrap();
        cache
            .store(&s, &JobOutcome::TimedOut("deadline".into()))
            .unwrap();
        assert!(!cache.entry_path(&s).exists(), "nothing may hit the disk");
        assert_eq!(cache.stats().stores, 0);
        // A handcrafted entry with a non-cacheable status is defective on
        // read, so even a forged file cannot serve a failed outcome.
        let forged = encode_entry(&s, &ok_outcome(9))
            .render()
            .replace("\"status\": \"ok\"", "\"status\": \"failed\"");
        std::fs::write(cache.entry_path(&s), forged).unwrap();
        assert_eq!(cache.lookup(&s), None);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn degraded_handle_counts_misses_and_skipped_stores_without_io() {
        let parent = tmp_dir("degraded_parent");
        // A *file* where the cache directory should go: create_dir_all
        // fails, so open degrades instead of erroring.
        std::fs::create_dir_all(&parent).unwrap();
        let blocker = parent.join("cache");
        std::fs::write(&blocker, "a file, not a directory").unwrap();
        assert!(Cache::open(&blocker).is_err(), "open propagates");

        let cache = Cache::open_or_degraded(&blocker);
        assert!(cache.is_degraded());
        let s = spec("scan", Arch::DmtCgra, 1);
        assert_eq!(cache.lookup(&s), None);
        cache.store(&s, &ok_outcome(5)).unwrap();
        assert_eq!(cache.lookup(&s), None, "stores never land");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 2));
        assert_eq!((stats.stores, stats.store_failures), (0, 1));
        assert!(cache.cost_index().is_empty());
        let _ = std::fs::remove_dir_all(&parent);
    }

    #[test]
    fn injected_cache_faults_fail_reads_and_stores_deterministically() {
        use dmt_common::faults::{install_guarded, FaultPlan};
        let cache = Cache::open(tmp_dir("faults")).unwrap();
        let s = spec("scan", Arch::DmtCgra, 1);
        cache.store(&s, &ok_outcome(7)).unwrap();

        {
            let _guard = install_guarded(FaultPlan::parse("cache.read:nth=1").unwrap());
            assert_eq!(cache.lookup(&s), None, "injected read fault is a miss");
            assert_eq!(cache.lookup(&s), Some(ok_outcome(7)), "only hit 1 fires");
        }
        {
            let _guard = install_guarded(FaultPlan::parse("cache.write:nth=1").unwrap());
            let err = cache.store(&s, &ok_outcome(8)).unwrap_err();
            assert!(err.to_string().contains("injected fault: cache.write"));
        }
        {
            let _guard = install_guarded(FaultPlan::parse("cache.rename:nth=1").unwrap());
            let err = cache.store(&s, &ok_outcome(8)).unwrap_err();
            assert!(err.to_string().contains("injected fault: cache.rename"));
            let tmp_leftovers = std::fs::read_dir(cache.dir())
                .unwrap()
                .flatten()
                .filter(|e| e.path().to_string_lossy().contains(".tmp."))
                .count();
            assert_eq!(tmp_leftovers, 0, "failed rename cleans its temp file");
        }
        assert_eq!(cache.stats().store_failures, 2);
        // The original entry survived both failed stores.
        assert_eq!(cache.lookup(&s), Some(ok_outcome(7)));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn absent_corrupt_and_mismatched_entries_all_miss() {
        let cache = Cache::open(tmp_dir("defects")).unwrap();
        let s = spec("scan", Arch::DmtCgra, 1);

        // Absent.
        assert_eq!(cache.lookup(&s), None);

        // Truncated JSON.
        std::fs::write(cache.entry_path(&s), "{\"schema_version\": 1,").unwrap();
        assert_eq!(cache.lookup(&s), None);

        // Valid JSON, wrong schema version (counted as invalidated).
        let mut doc = encode_entry(&s, &ok_outcome(9)).render();
        doc = doc.replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 999",
        );
        std::fs::write(cache.entry_path(&s), &doc).unwrap();
        assert_eq!(cache.lookup(&s), None);
        assert_eq!(cache.stats().schema_invalidated, 1);

        // Valid entry filed under the wrong key (identity mismatch).
        let other = spec("reduce", Arch::FermiSm, 7);
        std::fs::write(
            cache.entry_path(&s),
            encode_entry(&other, &ok_outcome(9)).render(),
        )
        .unwrap();
        assert_eq!(cache.lookup(&s), None);

        // Entry missing a stats counter.
        let mut doc = encode_entry(&s, &ok_outcome(9)).render();
        doc = doc.replace("\"noc_hops\"", "\"not_a_counter\"");
        std::fs::write(cache.entry_path(&s), &doc).unwrap();
        assert_eq!(cache.lookup(&s), None);

        assert_eq!(cache.stats().misses, 5);
        assert_eq!(cache.stats().hits, 0);

        // Re-storing repairs the defective entry.
        cache.store(&s, &ok_outcome(9)).unwrap();
        assert_eq!(cache.lookup(&s), Some(ok_outcome(9)));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cost_index_keeps_max_cycles_per_point_and_skips_junk() {
        let cache = Cache::open(tmp_dir("index")).unwrap();
        cache
            .store(&spec("scan", Arch::DmtCgra, 1), &ok_outcome(100))
            .unwrap();
        cache
            .store(&spec("scan", Arch::DmtCgra, 2), &ok_outcome(400))
            .unwrap();
        cache
            .store(&spec("scan", Arch::FermiSm, 1), &ok_outcome(900))
            .unwrap();
        cache
            .store(
                &spec("reduce", Arch::DmtCgra, 1),
                &JobOutcome::Infeasible("no".into()),
            )
            .unwrap();
        std::fs::write(cache.dir().join("junk.json"), "not json").unwrap();
        std::fs::write(cache.dir().join("notes.txt"), "ignored").unwrap();

        let idx = cache.cost_index();
        assert_eq!(idx.estimate(&spec("scan", Arch::DmtCgra, 3)), Some(400));
        assert_eq!(idx.estimate(&spec("scan", Arch::FermiSm, 3)), Some(900));
        // Infeasible entries carry no cycles and never enter the index.
        assert_eq!(idx.estimate(&spec("reduce", Arch::DmtCgra, 1)), None);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cost_order_is_longest_first_with_cold_fallback() {
        let specs = [
            spec("a", Arch::DmtCgra, 1),
            spec("b", Arch::DmtCgra, 1),
            spec("c", Arch::DmtCgra, 1),
            spec("d", Arch::DmtCgra, 1),
        ];
        let refs: Vec<&JobSpec> = specs.iter().collect();

        // Cold cache: grid order.
        assert_eq!(cost_order(&refs, &CostIndex::default()), vec![0, 1, 2, 3]);

        // b is known-long, a known-short, c/d unknown: b, a, then c, d in
        // grid order.
        let mut idx = CostIndex::default();
        idx.record("a", Arch::DmtCgra.key(), 10);
        idx.record("b", Arch::DmtCgra.key(), 1000);
        assert_eq!(cost_order(&refs, &idx), vec![1, 0, 2, 3]);

        // Equal estimates keep grid order (stable sort).
        idx.record("a", Arch::DmtCgra.key(), 1000);
        assert_eq!(cost_order(&refs, &idx), vec![0, 1, 2, 3]);
    }

    #[test]
    fn entries_decode_only_for_their_own_spec() {
        let s = spec("scan", Arch::DmtCgra, 1);
        let text = encode_entry(&s, &ok_outcome(5)).render();
        assert!(decode_entry(&text, &s).is_some());
        assert!(decode_entry(&text, &spec("scan", Arch::DmtCgra, 2)).is_none());
        assert!(decode_entry(&text, &spec("scan", Arch::MtCgra, 1)).is_none());
        let mut other_cfg = s.clone();
        other_cfg.cfg.fabric.token_buffer_entries += 1;
        assert!(decode_entry(&text, &other_cfg).is_none());
    }
}
