//! Property tests for the stable config/job hash: the hash must be
//! invariant under field *reordering* and sensitive to any field *value*
//! change — the two guarantees artifact caching and job identity rest on.

use dmt_core::SystemConfig;
use dmt_runner::{config_hash, StableHasher};
use proptest::prelude::*;

/// Hash `values` as fields `f0..fN`, visiting them in the order given by
/// `order` (a permutation of `0..N`).
fn hash_in_order(values: &[u64], order: &[usize]) -> u64 {
    let names: Vec<String> = (0..values.len()).map(|i| format!("f{i}")).collect();
    let mut h = StableHasher::new();
    for &i in order {
        h.field_u64(&names[i], values[i]);
    }
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feeding the same (name, value) set in any order yields one hash.
    #[test]
    fn hash_is_invariant_under_field_reordering(
        values in proptest::collection::vec(0u64..1_000_000, 12),
        rot in 1usize..12,
        swap_a in 0usize..12,
        swap_b in 0usize..12,
    ) {
        let n = values.len();
        let natural: Vec<usize> = (0..n).collect();
        let reversed: Vec<usize> = (0..n).rev().collect();
        let rotated: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        let mut swapped = natural.clone();
        swapped.swap(swap_a, swap_b);

        let base = hash_in_order(&values, &natural);
        prop_assert_eq!(base, hash_in_order(&values, &reversed));
        prop_assert_eq!(base, hash_in_order(&values, &rotated));
        prop_assert_eq!(base, hash_in_order(&values, &swapped));
    }

    /// Changing any single field value changes the hash.
    #[test]
    fn hash_changes_when_any_field_changes(
        values in proptest::collection::vec(0u64..1_000_000, 12),
        idx in 0usize..12,
        delta in 1u64..1_000_000,
    ) {
        let order: Vec<usize> = (0..values.len()).collect();
        let base = hash_in_order(&values, &order);
        let mut mutated = values.clone();
        mutated[idx] = mutated[idx].wrapping_add(delta);
        prop_assert_ne!(base, hash_in_order(&mutated, &order));
    }

    /// The full SystemConfig hash is sensitive to representative knobs of
    /// every sub-struct (the exhaustive-destructuring visitor guarantees
    /// coverage of the rest at compile time).
    #[test]
    fn config_hash_tracks_real_config_knobs(
        tb in 1u32..512,
        inflight in 1u32..8192,
        l1_ways in 1u32..32,
        ghz_milli in 100u64..5000,
    ) {
        let base = SystemConfig::default();
        let base_hash = config_hash(&base);

        let mut c = base;
        c.fabric.token_buffer_entries = tb;
        prop_assert_eq!(config_hash(&c) == base_hash, tb == base.fabric.token_buffer_entries);

        let mut c = base;
        c.fabric.inflight_threads = inflight;
        prop_assert_eq!(config_hash(&c) == base_hash, inflight == base.fabric.inflight_threads);

        let mut c = base;
        c.mem.l1.ways = l1_ways;
        prop_assert_eq!(config_hash(&c) == base_hash, l1_ways == base.mem.l1.ways);

        let mut c = base;
        c.clocks.core_ghz = ghz_milli as f64 / 1000.0;
        prop_assert_eq!(
            config_hash(&c) == base_hash,
            c.clocks.core_ghz == base.clocks.core_ghz
        );
    }
}
