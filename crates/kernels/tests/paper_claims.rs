//! Suite-level checks that each benchmark's dMT variant uses exactly the
//! communication structure the paper describes for it.

use dmt_dfg::delta_stats::comm_sites;
use dmt_kernels::{suite, Benchmark};

fn sites_of(b: &dyn Benchmark) -> Vec<dmt_dfg::delta_stats::CommSite> {
    comm_sites(&b.dmt_kernel())
}

#[test]
fn scan_is_one_recurrent_unit_chain() {
    let s = sites_of(&dmt_kernels::scan::Scan::default());
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].primitive, "elevator");
    assert_eq!(s[0].linear_distance, 1);
}

#[test]
fn matmul_forwards_rows_and_columns_via_eldst() {
    let s = sites_of(&dmt_kernels::matmul::MatMul);
    assert!(s.iter().all(|x| x.primitive == "eldst"));
    let row = s.iter().filter(|x| x.linear_distance == 1).count();
    let col = s.iter().filter(|x| x.linear_distance == 16).count();
    assert_eq!(row, col, "A-row and B-column forwarding per unrolled step");
    assert_eq!(row + col, s.len());
}

#[test]
fn convolution_exchanges_both_neighbours() {
    let s = sites_of(&dmt_kernels::convolution::Convolution::default());
    assert_eq!(s.len(), 2);
    assert!(s
        .iter()
        .all(|x| x.primitive == "elevator" && x.linear_distance == 1));
}

#[test]
fn reduce_builds_a_windowed_log_tree() {
    let s = sites_of(&dmt_kernels::reduce::Reduce::default());
    assert_eq!(s.len(), 8, "log2(256) levels");
    for (l, site) in s.iter().enumerate() {
        assert_eq!(site.linear_distance, 1 << l);
        assert_eq!(u64::from(site.window), 2 << l);
    }
}

#[test]
fn stencils_exchange_four_neighbours() {
    for b in [
        &dmt_kernels::srad::Srad as &dyn Benchmark,
        &dmt_kernels::hotspot::Hotspot,
    ] {
        let s = sites_of(b);
        assert_eq!(s.len(), 4, "{}", b.info().name);
        let horizontal = s.iter().filter(|x| x.linear_distance == 1).count();
        let vertical = s.iter().filter(|x| x.linear_distance == 16).count();
        assert_eq!((horizontal, vertical), (2, 2), "{}", b.info().name);
    }
}

#[test]
fn bpnn_combines_broadcast_and_chain() {
    let s = sites_of(&dmt_kernels::bpnn::Bpnn);
    assert_eq!(s.len(), 2);
    assert!(s
        .iter()
        .any(|x| x.primitive == "eldst" && x.linear_distance == 1));
    assert!(s
        .iter()
        .any(|x| x.primitive == "elevator" && x.linear_distance == 16));
}

#[test]
fn pathfinder_reads_both_dp_neighbours() {
    let s = sites_of(&dmt_kernels::pathfinder::Pathfinder::default());
    assert_eq!(s.len(), 2);
    assert!(s
        .iter()
        .all(|x| x.primitive == "elevator" && x.euclidean == 1.0));
}

#[test]
fn every_dmt_kernel_fits_the_16_entry_buffer_except_reduce() {
    // The Fig 5 claim, per benchmark: only the reduction tree's upper
    // levels exceed one token buffer.
    for b in suite::all() {
        let over: Vec<u64> = sites_of(b.as_ref())
            .iter()
            .map(|s| s.linear_distance)
            .filter(|&d| d > 16)
            .collect();
        if b.info().name == "reduce" {
            assert_eq!(over, vec![32, 64, 128], "reduce's upper levels");
        } else {
            assert!(over.is_empty(), "{}: {over:?}", b.info().name);
        }
    }
}
