//! `convolution` — separable 1-D convolution (NVIDIA SDK
//! `convolutionRowGPU`), the paper's Fig 1 running example.
//!
//! Problem: `out[t] = k0·in[t-1] + k1·in[t] + k2·in[t+1]` with zero
//! padding at the margins.
//!
//! * **dMT variant** (Fig 1c): each thread loads *one* element; the left
//!   and right neighbours arrive as tokens from threads `t-1` / `t+1` via
//!   `fromThreadOrConst`, and the margin handling collapses into the
//!   fallback constant — "no special treatment is needed for the margins"
//!   (§5.2).
//! * **Shared variant** (Fig 1b): stage the image into a padded shared
//!   array, barrier, then read three scratchpad values per thread.

use crate::{BenchInfo, Benchmark, Workload};
use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::{Kernel, KernelBuilder};

/// The separable-convolution benchmark, parameterized by kernel radius
/// like the SDK original (`KERNEL_RADIUS`); the paper's running example is
/// the radius-1 instance.
#[derive(Debug, Clone)]
pub struct Convolution {
    n: u32,
    blocks: u32,
    radius: u32,
    weights: Vec<f32>,
}

impl Convolution {
    /// `blocks` independent 1-D convolutions over `n` elements each (one
    /// image row per block, as the SDK kernel tiles rows), radius 1.
    #[must_use]
    pub fn new(n: u32, blocks: u32) -> Convolution {
        Convolution::with_radius(n, blocks, 1)
    }

    /// A convolution with a `2·radius + 1`-tap binomial kernel. Radius > 1
    /// fans each loaded element out to `2·radius` neighbour threads over
    /// that many elevator nodes.
    ///
    /// # Panics
    ///
    /// Panics when `n` or `radius` are out of range (`radius < 8`,
    /// `2·radius < n`).
    #[must_use]
    pub fn with_radius(n: u32, blocks: u32, radius: u32) -> Convolution {
        assert!((4..=1024).contains(&n));
        assert!(blocks >= 1);
        assert!((1..8).contains(&radius) && 2 * radius < n);
        // Binomial weights (normalized Pascal row 2r): smooth and exactly
        // representable sums.
        let taps = (2 * radius + 1) as usize;
        let mut row = vec![1.0f64];
        for _ in 1..taps {
            let mut next = vec![1.0f64; row.len() + 1];
            for i in 1..row.len() {
                next[i] = row[i - 1] + row[i];
            }
            row = next;
        }
        let total: f64 = row.iter().sum();
        let weights = row.iter().map(|&w| (w / total) as f32).collect();
        Convolution {
            n,
            blocks,
            radius,
            weights,
        }
    }

    fn total(&self) -> u32 {
        self.n * self.blocks
    }

    fn out_base(&self) -> u64 {
        u64::from(self.total()) * 4
    }

    fn reference(&self, input: &[f32]) -> Vec<f32> {
        let n = input.len() as i64;
        let r = self.radius as i64;
        (0..n)
            .map(|t| {
                // Same association order as the kernels: ascending tap.
                let mut acc = 0.0f32;
                for (k, &w) in self.weights.iter().enumerate() {
                    let src = t + k as i64 - r;
                    let v = if (0..n).contains(&src) {
                        input[src as usize]
                    } else {
                        0.0
                    };
                    acc += v * w;
                }
                acc
            })
            .collect()
    }
}

impl Default for Convolution {
    fn default() -> Convolution {
        Convolution::new(256, 8)
    }
}

impl Benchmark for Convolution {
    fn info(&self) -> BenchInfo {
        BenchInfo {
            name: "convolution",
            domain: "Linear Algebra",
            kernel: "convolutionRowGPU",
            description: "Convolution filter",
        }
    }

    fn dmt_kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("convolution_dmt", Dim3::linear(self.n));
        kb.set_grid_blocks(self.blocks);
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(self.n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let a = kb.index_addr(inp, gtid, 4);
        let mem_elem = kb.load_global(a);
        kb.tag_value(mem_elem);
        // Wait for tokens from threads tid±1 … tid±radius (Fig 1c,
        // generalized to the SDK's KERNEL_RADIUS).
        let r = self.radius as i32;
        let mut acc = None;
        for (k, &w) in self.weights.iter().enumerate() {
            let delta = k as i32 - r;
            let v = if delta == 0 {
                mem_elem
            } else {
                kb.from_thread_or_const(mem_elem, Delta::new(delta), Word::from_f32(0.0), None)
            };
            let wc = kb.const_f(w);
            let p = kb.mul_f(v, wc);
            acc = Some(match acc {
                None => p,
                Some(a) => kb.add_f(a, p),
            });
        }
        let sum = acc.expect("at least one tap");
        let oa = kb.index_addr(out, gtid, 4);
        kb.store_global(oa, sum);
        kb.finish().expect("convolution dMT kernel is well-formed")
    }

    fn shared_kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("convolution_shared", Dim3::linear(self.n));
        kb.set_grid_blocks(self.blocks);
        let r = self.radius;
        // Padded image: `radius` zero words on each side (the margins).
        kb.set_shared_words(self.n + 2 * r);

        // Phase 0: sharedImage[tid + radius] = globalImage[tid].
        let inp = kb.param("in");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(self.n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let ga = kb.index_addr(inp, gtid, 4);
        let v = kb.load_global(ga);
        let pad = kb.const_i(r as i32 * 4);
        let sa = kb.index_addr(pad, tid, 4);
        kb.store_shared(sa, v);

        kb.barrier();

        // Phase 1: 2r+1 scratchpad reads per thread.
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(self.n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let mut acc = None;
        for (k, &w) in self.weights.iter().enumerate() {
            let off = kb.const_i(k as i32 * 4);
            let a = kb.index_addr(off, tid, 4);
            let v = kb.load_shared(a);
            let wc = kb.const_f(w);
            let p = kb.mul_f(v, wc);
            acc = Some(match acc {
                None => p,
                Some(x) => kb.add_f(x, p),
            });
        }
        let sum = acc.expect("at least one tap");
        let oa = kb.index_addr(out, gtid, 4);
        kb.store_global(oa, sum);
        kb.finish()
            .expect("convolution shared kernel is well-formed")
    }

    fn workload(&self, seed: u64) -> Workload {
        let data = crate::util::gen_f32(seed, self.total() as usize, -2.0, 2.0);
        let mut memory = MemImage::with_words(2 * self.total() as usize);
        memory.write_f32_slice(Addr(0), &data);
        Workload {
            params: vec![Word::from_u32(0), Word::from_u32(self.out_base() as u32)],
            memory,
        }
    }

    fn check(&self, seed: u64, memory: &MemImage) -> Result<(), String> {
        let data = crate::util::gen_f32(seed, self.total() as usize, -2.0, 2.0);
        let want: Vec<f32> = data
            .chunks(self.n as usize)
            .flat_map(|c| self.reference(c))
            .collect();
        crate::util::check_f32(memory, self.out_base(), &want, 1e-5, "conv")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp_check;
    use dmt_dfg::interp;

    #[test]
    fn both_variants_match_reference() {
        interp_check(&Convolution::default(), 11);
        interp_check(&Convolution::new(64, 2), 5);
    }

    #[test]
    fn wider_kernels_match_reference_too() {
        interp_check(&Convolution::with_radius(64, 2, 2), 9);
        interp_check(&Convolution::with_radius(128, 1, 4), 10);
    }

    #[test]
    fn radius_scales_the_elevator_fan() {
        for r in 1..=4u32 {
            let c = Convolution::with_radius(64, 1, r);
            let sites = dmt_dfg::delta_stats::comm_sites(&c.dmt_kernel());
            assert_eq!(sites.len(), 2 * r as usize, "radius {r}");
            let max = sites.iter().map(|s| s.linear_distance).max().unwrap();
            assert_eq!(max, u64::from(r));
        }
    }

    #[test]
    fn weights_are_normalized() {
        // Convolving a constant image preserves interior points exactly
        // when the taps sum to 1; margins attenuate under zero padding.
        let c = Convolution::with_radius(64, 1, 3);
        let img = vec![2.0f32; 64];
        let out = c.reference(&img);
        assert!((out[32] - 2.0).abs() < 1e-5, "interior point preserved");
        assert!(out[0] < 2.0, "margins attenuate (zero padding)");
    }

    #[test]
    fn dmt_loads_each_element_once() {
        let c = Convolution::new(256, 1);
        let dmt = interp::run(&c.dmt_kernel(), c.workload(1).launch()).unwrap();
        assert_eq!(dmt.stats.global_loads, 256, "one load per element");
        // Shared variant reads the scratchpad 3× per thread instead.
        let sh = interp::run(&c.shared_kernel(), c.workload(1).launch()).unwrap();
        assert_eq!(sh.stats.shared_loads, 3 * 256);
        assert_eq!(sh.stats.shared_stores, 256);
        assert_eq!(dmt.stats.shared_loads + dmt.stats.shared_stores, 0);
    }

    #[test]
    fn margins_use_fallback_constants() {
        let c = Convolution::new(16, 1);
        let dmt = interp::run(&c.dmt_kernel(), c.workload(2).launch()).unwrap();
        assert_eq!(
            dmt.stats.elevator_consts, 2,
            "left margin of the +1 elevator and right margin of the -1"
        );
    }
}
