//! `pathfinder` — dynamic programming on a 2-D grid (Rodinia
//! `dynproc_kernel`).
//!
//! Problem: one DP step of the shortest-path recurrence —
//! `out[t] = min(prev[t-1], prev[t], prev[t+1]) + cost[t]`, with
//! out-of-range neighbours treated as `i32::MAX` (saturating min
//! identity).
//!
//! * **dMT variant**: each thread loads `prev[t]` once; the left and right
//!   neighbour values arrive over elevator nodes with an `i32::MAX`
//!   fallback at the margins.
//! * **Shared variant**: `prev` staged in shared memory behind a barrier,
//!   margins handled with selects — the Rodinia ghost-zone pattern.

use crate::{BenchInfo, Benchmark, Workload};
use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::{Kernel, KernelBuilder};

/// The pathfinder benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Pathfinder {
    n: u32,
    blocks: u32,
}

impl Pathfinder {
    /// `blocks` independent DP rows of `n` columns each.
    #[must_use]
    pub fn new(n: u32, blocks: u32) -> Pathfinder {
        assert!((4..=1024).contains(&n));
        assert!(blocks >= 1);
        Pathfinder { n, blocks }
    }

    fn total(self) -> u32 {
        self.n * self.blocks
    }

    fn prev_base(self) -> u64 {
        0
    }
    fn cost_base(self) -> u64 {
        u64::from(self.total()) * 4
    }
    fn out_base(self) -> u64 {
        2 * u64::from(self.total()) * 4
    }

    fn inputs(self, seed: u64) -> (Vec<i32>, Vec<i32>) {
        let prev = crate::util::gen_i32(seed, self.total() as usize, 0, 1000);
        let cost = crate::util::gen_i32(seed ^ 0x7777, self.total() as usize, 0, 20);
        (prev, cost)
    }

    fn reference(self, prev: &[i32], cost: &[i32]) -> Vec<i32> {
        let n = prev.len();
        (0..n)
            .map(|t| {
                let lt = if t > 0 { prev[t - 1] } else { i32::MAX };
                let rt = if t + 1 < n { prev[t + 1] } else { i32::MAX };
                lt.min(prev[t]).min(rt).wrapping_add(cost[t])
            })
            .collect()
    }
}

impl Default for Pathfinder {
    fn default() -> Pathfinder {
        Pathfinder::new(256, 8)
    }
}

impl Benchmark for Pathfinder {
    fn info(&self) -> BenchInfo {
        BenchInfo {
            name: "pathfinder",
            domain: "Dynamic Programming",
            kernel: "dynproc_kernel",
            description: "Find the shortest path on a 2-D grid",
        }
    }

    fn dmt_kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("pathfinder_dmt", Dim3::linear(self.n));
        kb.set_grid_blocks(self.blocks);
        let prev = kb.param("prev");
        let cost = kb.param("cost");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(self.n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let pa = kb.index_addr(prev, gtid, 4);
        let p = kb.load_global(pa);
        kb.tag_value(p);
        let mx = Word::from_i32(i32::MAX);
        let lt = kb.from_thread_or_const(p, Delta::new(-1), mx, None);
        let rt = kb.from_thread_or_const(p, Delta::new(1), mx, None);
        let m1 = kb.min_i(lt, p);
        let m = kb.min_i(m1, rt);
        let ca = kb.index_addr(cost, gtid, 4);
        let c = kb.load_global(ca);
        let v = kb.add_i(m, c);
        let oa = kb.index_addr(out, gtid, 4);
        kb.store_global(oa, v);
        kb.finish().expect("pathfinder dMT kernel is well-formed")
    }

    fn shared_kernel(&self) -> Kernel {
        let n = self.n;
        let mut kb = KernelBuilder::new("pathfinder_shared", Dim3::linear(n));
        kb.set_grid_blocks(self.blocks);
        kb.set_shared_words(n);

        // Phase 0: stage prev.
        let prev = kb.param("prev");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let ga = kb.index_addr(prev, gtid, 4);
        let v = kb.load_global(ga);
        let zero = kb.const_i(0);
        let sa = kb.index_addr(zero, tid, 4);
        kb.store_shared(sa, v);

        kb.barrier();

        // Phase 1: min of three with margin selects.
        let cost = kb.param("cost");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let zero = kb.const_i(0);
        let one = kb.const_i(1);
        let maxi = kb.const_i(n as i32 - 1);
        let mx = kb.const_i(i32::MAX);

        let sa = kb.index_addr(zero, tid, 4);
        let p = kb.load_shared(sa);

        let lm = kb.sub_i(tid, one);
        let lc = kb.max_i(lm, zero);
        let la = kb.index_addr(zero, lc, 4);
        let lv = kb.load_shared(la);
        let l_ok = kb.le_s(one, tid);
        let lt = kb.select(l_ok, lv, mx);

        let rm = kb.add_i(tid, one);
        let rc = kb.min_i(rm, maxi);
        let ra = kb.index_addr(zero, rc, 4);
        let rv = kb.load_shared(ra);
        let r_ok = kb.lt_s(tid, maxi);
        let rt = kb.select(r_ok, rv, mx);

        let m1 = kb.min_i(lt, p);
        let m = kb.min_i(m1, rt);
        let ca = kb.index_addr(cost, gtid, 4);
        let c = kb.load_global(ca);
        let v = kb.add_i(m, c);
        let oa = kb.index_addr(out, gtid, 4);
        kb.store_global(oa, v);
        kb.finish()
            .expect("pathfinder shared kernel is well-formed")
    }

    fn workload(&self, seed: u64) -> Workload {
        let (prev, cost) = self.inputs(seed);
        let mut memory = MemImage::with_words(3 * self.total() as usize);
        memory.write_i32_slice(Addr(self.prev_base()), &prev);
        memory.write_i32_slice(Addr(self.cost_base()), &cost);
        Workload {
            params: vec![
                Word::from_u32(self.prev_base() as u32),
                Word::from_u32(self.cost_base() as u32),
                Word::from_u32(self.out_base() as u32),
            ],
            memory,
        }
    }

    fn check(&self, seed: u64, memory: &MemImage) -> Result<(), String> {
        let (prev, cost) = self.inputs(seed);
        let want: Vec<i32> = prev
            .chunks(self.n as usize)
            .zip(cost.chunks(self.n as usize))
            .flat_map(|(p, c)| self.reference(p, c))
            .collect();
        crate::util::check_i32(memory, self.out_base(), &want, "pathfinder")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp_check;

    #[test]
    fn both_variants_match_reference() {
        interp_check(&Pathfinder::default(), 6);
        interp_check(&Pathfinder::new(32, 3), 66);
    }

    #[test]
    fn margin_fallbacks_are_max() {
        // With MAX fallback the margins never win the min unless the real
        // neighbours are MAX themselves — checked implicitly by reference
        // equality on random inputs, and explicitly here on a tiny case.
        let p = Pathfinder::new(4, 1);
        let (prev, cost) = p.inputs(123);
        let r = p.reference(&prev, &cost);
        assert_eq!(r[0], prev[0].min(prev[1]).wrapping_add(cost[0]));
    }
}
