//! `BPNN` — back-propagation neural network, `layerforward` (Rodinia).
//!
//! Problem: one dense layer forward pass —
//! `hidden[j] = σ(Σ_i input[i] · w[i][j])` with `σ(x) = 1/(1+e^{-x})`,
//! 16 inputs × 16 hidden units, thread `(tx, ty)` handling weight
//! `w[ty][tx]`.
//!
//! * **dMT variant**: `input[ty]` is loaded once per row and forwarded
//!   along it by an eLDST; the per-column dot product accumulates through a
//!   recurrent elevator chain down the column (ΔTID = 16). §5.2 singles
//!   this kernel out: "the communication between adjacent threads limited
//!   the TLP and caused the slowdown" — the column chain is exactly that
//!   serialization, preserved here on purpose.
//! * **Shared variant**: partial products staged in shared memory, then a
//!   barrier-separated tree reduction along each column.

use crate::{BenchInfo, Benchmark, Workload};
use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::{Kernel, KernelBuilder};

/// Inputs and hidden units per layer (threads: SIDE × SIDE).
const SIDE: u32 = 16;

/// Independent layers (= thread blocks) per launch. Rodinia's
/// `layerforward` runs one layer per launch; the column chains then bound
/// TLP — the serialization §5.2 blames for BPNN's slowdown.
const TILES: u32 = 1;

/// The layer-forward benchmark: `TILES` independent layers (a batched
/// forward pass).
#[derive(Debug, Clone, Copy, Default)]
pub struct Bpnn;

impl Bpnn {
    fn input_base(self) -> u64 {
        0
    }
    fn w_base(self) -> u64 {
        u64::from(TILES) * u64::from(SIDE) * 4
    }
    fn hidden_base(self) -> u64 {
        self.w_base() + u64::from(TILES) * u64::from(SIDE * SIDE) * 4
    }
    fn dump_base(self) -> u64 {
        self.hidden_base() + u64::from(TILES) * u64::from(SIDE) * 4
    }

    fn inputs(self, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let input = crate::util::gen_f32(seed, TILES as usize * SIDE as usize, -1.0, 1.0);
        let w = crate::util::gen_f32(
            seed ^ 0xbeef,
            TILES as usize * (SIDE * SIDE) as usize,
            -0.5,
            0.5,
        );
        (input, w)
    }

    fn reference(self, input: &[f32], w: &[f32]) -> Vec<f32> {
        let s = SIDE as usize;
        (0..s)
            .map(|j| {
                let mut acc = 0.0f32;
                for i in 0..s {
                    acc += input[i] * w[i * s + j];
                }
                1.0 / (1.0 + (-acc).exp())
            })
            .collect()
    }
}

impl Benchmark for Bpnn {
    fn info(&self) -> BenchInfo {
        BenchInfo {
            name: "BPNN",
            domain: "Pattern Recognition",
            kernel: "layerforward",
            description: "Training of a neural network",
        }
    }

    fn dmt_kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("bpnn_dmt", Dim3::plane(SIDE, SIDE));
        kb.set_grid_blocks(TILES);
        let in_ptr = kb.param("input");
        let w_ptr = kb.param("w");
        let hidden = kb.param("hidden");
        let dump = kb.param("dump");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let zero = kb.const_i(0);
        let vec_bytes = kb.const_i(SIDE as i32 * 4);
        let mat_bytes = kb.const_i((SIDE * SIDE * 4) as i32);
        let voff = kb.mul_i(bid, vec_bytes);
        let moff = kb.mul_i(bid, mat_bytes);

        // input[ty]: one load per row, forwarded across it (eLDST).
        let in0 = kb.add_i(in_ptr, voff);
        let ia = kb.index_addr(in0, ty, 4);
        let lead = kb.eq_i(tx, zero);
        let xin = kb.from_thread_or_mem(ia, lead, Delta::new_2d(-1, 0), Some(SIDE));

        // w[ty][tx]: one weight per thread.
        let side = kb.const_i(SIDE as i32);
        let row = kb.mul_i(ty, side);
        let lin = kb.add_i(row, tx);
        let w0 = kb.add_i(w_ptr, moff);
        let wa = kb.index_addr(w0, lin, 4);
        let wv = kb.load_global(wa);
        let partial = kb.mul_f(xin, wv);

        // Column accumulation chain: sum[ty] = sum[ty-1] + partial.
        let (prev, rec) =
            kb.recurrent_from_thread_or_const(Delta::new_2d(0, -1), Word::from_f32(0.0), None);
        let sum = kb.add_f(prev, partial);
        kb.close_recurrence(rec, sum);

        // Sigmoid (everyone computes; only the last row's value matters).
        let ns = kb.neg_f(sum);
        let es = kb.exp_f(ns);
        let one = kb.const_f(1.0);
        let den = kb.add_f(one, es);
        let sig = kb.div_f(one, den);

        let last = kb.const_i(SIDE as i32 - 1);
        let is_last = kb.eq_i(ty, last);
        let h0 = kb.add_i(hidden, voff);
        let ha = kb.index_addr(h0, tx, 4);
        let d0 = kb.add_i(dump, moff);
        let da = kb.index_addr(d0, lin, 4);
        let addr = kb.select(is_last, ha, da);
        kb.store_global(addr, sig);
        kb.finish().expect("bpnn dMT kernel is well-formed")
    }

    fn shared_kernel(&self) -> Kernel {
        let s = SIDE as i32;
        let levels = SIDE.trailing_zeros();
        let mut kb = KernelBuilder::new("bpnn_shared", Dim3::plane(SIDE, SIDE));
        kb.set_grid_blocks(TILES);
        kb.set_shared_words(SIDE * SIDE);

        // Phase 0: partial products into shared memory.
        let in_ptr = kb.param("input");
        let w_ptr = kb.param("w");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let vec_bytes = kb.const_i(s * 4);
        let mat_bytes = kb.const_i(s * s * 4);
        let voff = kb.mul_i(bid, vec_bytes);
        let moff = kb.mul_i(bid, mat_bytes);
        let in0 = kb.add_i(in_ptr, voff);
        let ia = kb.index_addr(in0, ty, 4);
        let xin = kb.load_global(ia);
        let side = kb.const_i(s);
        let row = kb.mul_i(ty, side);
        let lin = kb.add_i(row, tx);
        let w0 = kb.add_i(w_ptr, moff);
        let wa = kb.index_addr(w0, lin, 4);
        let wv = kb.load_global(wa);
        let partial = kb.mul_f(xin, wv);
        let zero = kb.const_i(0);
        let sa = kb.index_addr(zero, lin, 4);
        kb.store_shared(sa, partial);

        // Column-wise tree reduction: sh[ty][tx] += sh[ty+d][tx].
        for l in (0..levels).rev() {
            kb.barrier();
            let d = 1i32 << l;
            let tx = kb.thread_idx(0);
            let ty = kb.thread_idx(1);
            let side = kb.const_i(s);
            let row = kb.mul_i(ty, side);
            let lin = kb.add_i(row, tx);
            let zero = kb.const_i(0);
            let sa = kb.index_addr(zero, lin, 4);
            let x = kb.load_shared(sa);
            let dc = kb.const_i(d);
            let py = kb.add_i(ty, dc);
            let maxy = kb.const_i(s - 1);
            let cy = kb.min_i(py, maxy);
            let crow = kb.mul_i(cy, side);
            let clin = kb.add_i(crow, tx);
            let pa = kb.index_addr(zero, clin, 4);
            let y = kb.load_shared(pa);
            let sum = kb.add_f(x, y);
            let active = kb.lt_s(ty, dc);
            let val = kb.select(active, sum, x);
            kb.store_shared(sa, val);
        }

        // Final phase: row 0 applies the sigmoid and publishes.
        kb.barrier();
        let hidden = kb.param("hidden");
        let dump = kb.param("dump");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let vec_bytes = kb.const_i(s * 4);
        let mat_bytes = kb.const_i(s * s * 4);
        let voff = kb.mul_i(bid, vec_bytes);
        let moff = kb.mul_i(bid, mat_bytes);
        let zero = kb.const_i(0);
        let sa = kb.index_addr(zero, tx, 4); // sh[0][tx]
        let acc = kb.load_shared(sa);
        let ns = kb.neg_f(acc);
        let es = kb.exp_f(ns);
        let one = kb.const_f(1.0);
        let den = kb.add_f(one, es);
        let sig = kb.div_f(one, den);
        let is_row0 = kb.eq_i(ty, zero);
        let side = kb.const_i(s);
        let row = kb.mul_i(ty, side);
        let lin = kb.add_i(row, tx);
        let h0 = kb.add_i(hidden, voff);
        let ha = kb.index_addr(h0, tx, 4);
        let d0 = kb.add_i(dump, moff);
        let da = kb.index_addr(d0, lin, 4);
        let addr = kb.select(is_row0, ha, da);
        kb.store_global(addr, sig);
        kb.finish().expect("bpnn shared kernel is well-formed")
    }

    fn workload(&self, seed: u64) -> Workload {
        let (input, w) = self.inputs(seed);
        let words = TILES as usize * (SIDE + SIDE * SIDE + SIDE + SIDE * SIDE) as usize;
        let mut memory = MemImage::with_words(words);
        memory.write_f32_slice(Addr(self.input_base()), &input);
        memory.write_f32_slice(Addr(self.w_base()), &w);
        Workload {
            params: vec![
                Word::from_u32(self.input_base() as u32),
                Word::from_u32(self.w_base() as u32),
                Word::from_u32(self.hidden_base() as u32),
                Word::from_u32(self.dump_base() as u32),
            ],
            memory,
        }
    }

    fn check(&self, seed: u64, memory: &MemImage) -> Result<(), String> {
        let (input, w) = self.inputs(seed);
        let want: Vec<f32> = input
            .chunks(SIDE as usize)
            .zip(w.chunks((SIDE * SIDE) as usize))
            .flat_map(|(i, wt)| self.reference(i, wt))
            .collect();
        crate::util::check_f32(memory, self.hidden_base(), &want, 1e-3, "hidden")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp_check;
    use dmt_dfg::interp;

    #[test]
    fn both_variants_match_reference() {
        interp_check(&Bpnn, 8);
        interp_check(&Bpnn, 4242);
    }

    #[test]
    fn input_vector_loaded_once_per_row() {
        let dmt = interp::run(&Bpnn.dmt_kernel(), Bpnn.workload(2).launch()).unwrap();
        // SIDE input loads (one per row leader) + SIDE² weight loads.
        assert_eq!(
            dmt.stats.global_loads,
            u64::from(TILES) * u64::from(SIDE + SIDE * SIDE)
        );
        assert_eq!(
            dmt.stats.eldst_forwards,
            u64::from(TILES) * u64::from(SIDE * (SIDE - 1))
        );
    }

    #[test]
    fn chain_serialization_is_visible_in_deltas() {
        let sites = dmt_dfg::delta_stats::comm_sites(&Bpnn.dmt_kernel());
        // One eLDST (row broadcast) + one elevator (column chain).
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().any(|s| s.primitive == "eldst"));
        assert!(sites
            .iter()
            .any(|s| s.primitive == "elevator" && s.linear_distance == u64::from(SIDE)));
    }
}
