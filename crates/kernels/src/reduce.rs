//! `reduce` — parallel sum reduction (NVIDIA SDK `reduce`).
//!
//! Problem: `result = Σ in[0..n]` for one block of `n` threads.
//!
//! * **dMT variant**: a log₂(n) tree of *window-bounded* elevator levels —
//!   exactly the pattern §3.2 motivates ("a bounded transmission window
//!   enables mapping distinct groups of communicating threads to separate
//!   segments at each level of the tree"). Level `l` communicates across
//!   ΔTID `2^l` with window `2^(l+1)`; the upper levels exceed the 16-entry
//!   token buffer and exercise the §4.3 long-distance machinery (cascades
//!   or Live-Value-Cache spills). Thread 0 accumulates the total.
//! * **Shared variant**: the classic shared-memory tree — `sh[t] +=
//!   sh[t+d]` for `d = n/2 … 1` with a barrier per level.
//!
//! Data is `i32` (wrapping), so all variants agree bit-exactly.

use crate::{BenchInfo, Benchmark, Workload};
use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::{Kernel, KernelBuilder};

/// The parallel-reduction benchmark; `n` must be a power of two. The
/// launch reduces `blocks` independent segments (the SDK kernel's
/// per-block partial sums).
#[derive(Debug, Clone, Copy)]
pub struct Reduce {
    n: u32,
    blocks: u32,
}

impl Reduce {
    /// Per-block sums of `blocks` segments of `n` elements each.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two in `4..=1024` or `blocks` is 0.
    #[must_use]
    pub fn new(n: u32, blocks: u32) -> Reduce {
        assert!(n.is_power_of_two() && (4..=1024).contains(&n));
        assert!(blocks >= 1);
        Reduce { n, blocks }
    }

    fn total(self) -> u32 {
        self.n * self.blocks
    }

    fn result_base(self) -> u64 {
        u64::from(self.total()) * 4
    }

    fn dump_base(self) -> u64 {
        self.result_base() + 4 * u64::from(self.blocks)
    }

    fn reference(self, input: &[i32]) -> i32 {
        input.iter().fold(0i32, |a, &v| a.wrapping_add(v))
    }
}

impl Default for Reduce {
    fn default() -> Reduce {
        Reduce::new(256, 8)
    }
}

impl Benchmark for Reduce {
    fn info(&self) -> BenchInfo {
        BenchInfo {
            name: "reduce",
            domain: "Data-Parallel Algorithms",
            kernel: "reduce",
            description: "Parallel Reduction",
        }
    }

    fn dmt_kernel(&self) -> Kernel {
        let n = self.n;
        let levels = n.trailing_zeros();
        let mut kb = KernelBuilder::new("reduce_dmt", Dim3::linear(n));
        kb.set_grid_blocks(self.blocks);
        let inp = kb.param("in");
        let result = kb.param("result");
        let dump = kb.param("dump");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let a = kb.index_addr(inp, gtid, 4);
        let mut s = kb.load_global(a);
        // Tree: at level l, threads receive the partial of tid + 2^l from
        // within their 2^(l+1)-thread window (threads whose partner falls
        // outside the window receive 0 and just carry their value).
        for l in 0..levels {
            let delta = 1i32 << l;
            let window = 1u32 << (l + 1);
            let partner =
                kb.from_thread_or_const(s, Delta::new(delta), Word::from_i32(0), Some(window));
            s = kb.add_i(s, partner);
        }
        // Thread 0 holds the block total: store it to `result[bid]`,
        // everyone else to the dump area (dataflow stores are
        // unconditional).
        let zero = kb.const_i(0);
        let is_root = kb.eq_i(tid, zero);
        let ra = kb.index_addr(result, bid, 4);
        let da = kb.index_addr(dump, gtid, 4);
        let addr = kb.select(is_root, ra, da);
        kb.store_global(addr, s);
        kb.finish().expect("reduce dMT kernel is well-formed")
    }

    fn shared_kernel(&self) -> Kernel {
        let n = self.n;
        let levels = n.trailing_zeros();
        let mut kb = KernelBuilder::new("reduce_shared", Dim3::linear(n));
        kb.set_grid_blocks(self.blocks);
        kb.set_shared_words(n);

        // Phase 0: stage.
        let inp = kb.param("in");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let ga = kb.index_addr(inp, gtid, 4);
        let v = kb.load_global(ga);
        let zero = kb.const_i(0);
        let sa = kb.index_addr(zero, tid, 4);
        kb.store_shared(sa, v);

        // Tree levels, top down: sh[t] += sh[t+d] for t < d.
        for l in (0..levels).rev() {
            kb.barrier();
            let d = 1i32 << l;
            let tid = kb.thread_idx(0);
            let zero = kb.const_i(0);
            let sa = kb.index_addr(zero, tid, 4);
            let x = kb.load_shared(sa);
            let dc = kb.const_i(d);
            let partner = kb.add_i(tid, dc);
            let maxi = kb.const_i(n as i32 - 1);
            let clamped = kb.min_i(partner, maxi);
            let pa = kb.index_addr(zero, clamped, 4);
            let y = kb.load_shared(pa);
            let sum = kb.add_i(x, y);
            let active = kb.lt_s(tid, dc);
            let val = kb.select(active, sum, x);
            kb.store_shared(sa, val);
        }

        // Final phase: thread 0 publishes sh[0]; the rest write the dump.
        kb.barrier();
        let result = kb.param("result");
        let dump = kb.param("dump");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let zero = kb.const_i(0);
        let sa = kb.index_addr(zero, zero, 4);
        let total = kb.load_shared(sa);
        let is_root = kb.eq_i(tid, zero);
        let ra = kb.index_addr(result, bid, 4);
        let da = kb.index_addr(dump, gtid, 4);
        let addr = kb.select(is_root, ra, da);
        kb.store_global(addr, total);
        kb.finish().expect("reduce shared kernel is well-formed")
    }

    fn workload(&self, seed: u64) -> Workload {
        let data = crate::util::gen_i32(seed, self.total() as usize, -1000, 1000);
        // in + per-block results + dump
        let mut memory = MemImage::with_words(2 * self.total() as usize + self.blocks as usize);
        memory.write_i32_slice(Addr(0), &data);
        Workload {
            params: vec![
                Word::from_u32(0),
                Word::from_u32(self.result_base() as u32),
                Word::from_u32(self.dump_base() as u32),
            ],
            memory,
        }
    }

    fn check(&self, seed: u64, memory: &MemImage) -> Result<(), String> {
        let data = crate::util::gen_i32(seed, self.total() as usize, -1000, 1000);
        let want: Vec<i32> = data
            .chunks(self.n as usize)
            .map(|c| self.reference(c))
            .collect();
        crate::util::check_i32(memory, self.result_base(), &want, "reduce")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp_check;
    use dmt_dfg::delta_stats;

    #[test]
    fn both_variants_match_reference() {
        interp_check(&Reduce::default(), 13);
        interp_check(&Reduce::new(64, 4), 21);
    }

    #[test]
    fn small_instances_work() {
        interp_check(&Reduce::new(4, 1), 0);
        interp_check(&Reduce::new(16, 2), 1);
    }

    #[test]
    fn delta_profile_has_a_long_tail() {
        let sites = delta_stats::comm_sites(&Reduce::default().dmt_kernel());
        assert_eq!(sites.len(), 8, "log2(256) levels");
        let max = sites.iter().map(|s| s.linear_distance).max().unwrap();
        assert_eq!(max, 128, "top level spans half the block");
        // Fig 5 structure: a fraction of traffic crosses ΔTID > 16.
        let frac16 =
            delta_stats::fraction_within(&sites, delta_stats::DistanceMetric::Linear, 16.0);
        assert!(frac16 > 0.5 && frac16 < 1.0, "got {frac16}");
    }

    #[test]
    fn window_semantics_confine_each_level() {
        let k = Reduce::new(64, 1).dmt_kernel();
        let phase = &k.phases()[0];
        for id in phase.node_ids() {
            if let Some(comm) = phase.kind(id).comm() {
                assert_eq!(
                    u64::from(comm.window),
                    2 * comm.shift.unsigned_abs(),
                    "window is twice the level's Δ"
                );
            }
        }
    }
}
