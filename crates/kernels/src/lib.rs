//! The paper's benchmark suite (Table 3), implemented against the dMT-CGRA
//! programming model.
//!
//! Each of the nine benchmarks provides **two kernel variants over one
//! problem definition**:
//!
//! * a **shared-memory variant** (CUDA-style staging + barriers) — what the
//!   Fermi-SM and baseline MT-CGRA machines run, mirroring the NVIDIA
//!   SDK / Rodinia originals;
//! * a **dMT variant** using `fromThreadOrConst` / `fromThreadOrMem` — no
//!   scratchpad, no barriers, exactly the rewrites §5.1 describes.
//!
//! Both variants are validated against a host (CPU) reference with
//! identical arithmetic, so every backend's output is checked
//! end-to-end.
//!
//! | Benchmark | Domain | Communication pattern |
//! |---|---|---|
//! | [`scan`] | Data-Parallel Algorithms | recurrent Δ=−1 chain (Fig 6) |
//! | [`matmul`] | Linear Algebra | row/column `fromThreadOrMem` (Fig 2b/3) |
//! | [`convolution`] | Linear Algebra | Δ=±1 halo exchange (Fig 1c) |
//! | [`reduce`] | Data-Parallel Algorithms | windowed log-tree, Δ up to 128 |
//! | [`lud`] | Linear Algebra | matmul-style forwarding (§5.2) |
//! | [`srad`] | Ultrasonic/Radar Imaging | 4-neighbour stencil elevators |
//! | [`bpnn`] | Pattern Recognition | column reduction chain + eLDST |
//! | [`hotspot`] | Physics Simulation | 4-neighbour stencil elevators |
//! | [`pathfinder`] | Dynamic Programming | Δ=±1 min-propagation |

pub mod bpnn;
pub mod convolution;
pub mod hotspot;
pub mod lud;
pub mod matmul;
pub mod pathfinder;
pub mod reduce;
pub mod scan;
pub mod srad;
pub mod suite;
pub mod util;

use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::Kernel;

/// Table 3 metadata for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchInfo {
    /// Application name (Table 3 column 1).
    pub name: &'static str,
    /// Application domain (Table 3 column 2).
    pub domain: &'static str,
    /// Kernel name (Table 3 column 3).
    pub kernel: &'static str,
    /// Kernel description (Table 3 column 4).
    pub description: &'static str,
}

/// A generated problem instance: launch parameters plus the initial memory
/// image (shared by both kernel variants).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Scalar launch parameters in declaration order.
    pub params: Vec<Word>,
    /// Initial global memory.
    pub memory: MemImage,
}

impl Workload {
    /// Converts into a `LaunchInput` (cloning for repeated runs).
    #[must_use]
    pub fn launch(&self) -> dmt_dfg::LaunchInput {
        dmt_dfg::LaunchInput::new(self.params.clone(), self.memory.clone())
    }
}

/// One benchmark: problem definition, two kernel variants, input
/// generation and output validation.
pub trait Benchmark {
    /// Table 3 metadata.
    fn info(&self) -> BenchInfo;

    /// The shared-memory variant (Fermi SM / MT-CGRA).
    fn shared_kernel(&self) -> Kernel;

    /// The inter-thread-communication variant (dMT-CGRA).
    fn dmt_kernel(&self) -> Kernel;

    /// Generates a seeded problem instance.
    fn workload(&self, seed: u64) -> Workload;

    /// Validates a final memory image against the CPU reference for the
    /// same seed. Returns a description of the first mismatch.
    fn check(&self, seed: u64, memory: &MemImage) -> Result<(), String>;
}

/// Convenience: run both variants through the functional interpreter and
/// validate them — the cheapest full correctness check, used by unit tests
/// in every benchmark module.
///
/// # Panics
///
/// Panics (with context) when interpretation or validation fails.
pub fn interp_check(bench: &dyn Benchmark, seed: u64) {
    let info = bench.info();
    for (variant, kernel) in [
        ("dmt", bench.dmt_kernel()),
        ("shared", bench.shared_kernel()),
    ] {
        let w = bench.workload(seed);
        let out = dmt_dfg::interp::run(&kernel, w.launch())
            .unwrap_or_else(|e| panic!("{}/{variant}: interp failed: {e}", info.name));
        bench
            .check(seed, &out.memory)
            .unwrap_or_else(|e| panic!("{}/{variant}: validation failed: {e}", info.name));
    }
}
