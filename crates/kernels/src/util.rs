//! Shared helpers for benchmark construction: seeded input generation and
//! validation utilities.

use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform `f32` values in `[lo, hi)`.
#[must_use]
pub fn gen_f32(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Uniform `i32` values in `[lo, hi)`.
#[must_use]
pub fn gen_i32(seed: u64, n: usize, lo: i32, hi: i32) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Compares `f32` output at `base` against `want`, with relative tolerance.
pub fn check_f32(
    memory: &MemImage,
    base: u64,
    want: &[f32],
    rel_tol: f32,
    what: &str,
) -> Result<(), String> {
    let got = memory.read_f32_slice(Addr(base), want.len());
    match dmt_common::value::first_f32_mismatch(&got, want, rel_tol) {
        None => Ok(()),
        Some(i) => Err(format!(
            "{what}[{i}]: got {}, want {} (tol {rel_tol})",
            got[i], want[i]
        )),
    }
}

/// Compares exact `i32` output at `base` against `want`.
pub fn check_i32(memory: &MemImage, base: u64, want: &[i32], what: &str) -> Result<(), String> {
    let got = memory.read_i32_slice(Addr(base), want.len());
    for (i, (&g, &w)) in got.iter().zip(want.iter()).enumerate() {
        if g != w {
            return Err(format!("{what}[{i}]: got {g}, want {w}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seeded() {
        assert_eq!(gen_f32(7, 16, 0.0, 1.0), gen_f32(7, 16, 0.0, 1.0));
        assert_ne!(gen_f32(7, 16, 0.0, 1.0), gen_f32(8, 16, 0.0, 1.0));
        assert_eq!(gen_i32(7, 16, -5, 5), gen_i32(7, 16, -5, 5));
    }

    #[test]
    fn check_reports_position() {
        let mut m = MemImage::with_words(4);
        m.write_i32_slice(Addr(0), &[1, 2, 3, 4]);
        assert!(check_i32(&m, 0, &[1, 2, 3, 4], "x").is_ok());
        let err = check_i32(&m, 0, &[1, 2, 9, 4], "x").unwrap_err();
        assert!(err.contains("x[2]"), "{err}");
    }
}
