//! The assembled benchmark suite (Table 3).

use crate::Benchmark;
use crate::{
    bpnn::Bpnn, convolution::Convolution, hotspot::Hotspot, lud::Lud, matmul::MatMul,
    pathfinder::Pathfinder, reduce::Reduce, scan::Scan, srad::Srad,
};

/// Every benchmark, in the paper's Table 3 order.
#[must_use]
pub fn all() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Scan::default()),
        Box::new(MatMul),
        Box::new(Convolution::default()),
        Box::new(Reduce::default()),
        Box::new(Lud),
        Box::new(Srad),
        Box::new(Bpnn),
        Box::new(Hotspot),
        Box::new(Pathfinder::default()),
    ]
}

/// Renders Table 3.
#[must_use]
pub fn table3() -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<12} {:<28} {:<20} {}\n",
        "Application", "Application Domain", "Kernel", "Description"
    ));
    s.push_str(&"-".repeat(100));
    s.push('\n');
    for b in all() {
        let i = b.info();
        s.push_str(&format!(
            "{:<12} {:<28} {:<20} {}\n",
            i.name, i.domain, i.kernel, i.description
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_nine_benchmarks() {
        let names: Vec<&str> = all().iter().map(|b| b.info().name).collect();
        assert_eq!(
            names,
            [
                "scan",
                "matrixMul",
                "convolution",
                "reduce",
                "lud",
                "srad",
                "BPNN",
                "hotspot",
                "pathfinder"
            ]
        );
    }

    #[test]
    fn table3_mentions_every_kernel() {
        let t = table3();
        for k in [
            "scan_naive",
            "matrixMul",
            "convolutionRowGPU",
            "reduce",
            "lud_internal",
            "srad",
            "layerforward",
            "hotspot_kernel",
            "dynproc_kernel",
        ] {
            assert!(t.contains(k), "missing {k}");
        }
    }

    #[test]
    fn every_dmt_variant_uses_comm_and_no_scratchpad() {
        for b in all() {
            let k = b.dmt_kernel();
            assert!(
                k.uses_inter_thread_comm(),
                "{} dMT variant has no communication",
                b.info().name
            );
            assert!(
                !k.uses_shared_memory(),
                "{} dMT variant still touches the scratchpad",
                b.info().name
            );
            assert_eq!(
                k.phases().len(),
                1,
                "{} dMT variant should have no barriers",
                b.info().name
            );
        }
    }

    #[test]
    fn every_shared_variant_uses_scratchpad_and_no_comm() {
        for b in all() {
            let k = b.shared_kernel();
            assert!(
                !k.uses_inter_thread_comm(),
                "{} shared variant uses dMT primitives",
                b.info().name
            );
            assert!(
                k.uses_shared_memory(),
                "{} shared variant does not use the scratchpad",
                b.info().name
            );
            assert!(k.phases().len() >= 2, "{}", b.info().name);
        }
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        for b in all() {
            let w1 = b.workload(5);
            let w2 = b.workload(5);
            assert_eq!(w1.memory, w2.memory, "{}", b.info().name);
            assert_eq!(w1.params, w2.params, "{}", b.info().name);
        }
    }
}
