//! `hotspot` — thermal simulation (Rodinia `hotspot_kernel`).
//!
//! Problem: one time step of the chip-temperature update on a 2-D grid:
//!
//! ```text
//! T'[c] = T[c] + step · ( P[c]
//!                       + (T[n] + T[s] − 2T[c]) · Ry
//!                       + (T[e] + T[w] − 2T[c]) · Rx
//!                       + (Tamb − T[c]) · Rz )
//! ```
//!
//! with a zero-valued halo outside the tile (both variants and the
//! reference use identical halo semantics and expression order).
//!
//! * **dMT variant**: each thread loads its own `T` and `P`; the four
//!   neighbour temperatures arrive over elevator nodes.
//! * **Shared variant**: the `T` tile is staged in shared memory behind a
//!   barrier; `P` is read directly from global memory.

use crate::{BenchInfo, Benchmark, Workload};
use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::{Kernel, KernelBuilder, ValueRef};

/// Tile side.
const SIDE: u32 = 16;
const STEP: f32 = 0.1;
const RX: f32 = 0.4;
const RY: f32 = 0.35;
const RZ: f32 = 0.05;
const TAMB: f32 = 80.0;

/// Tiles (= thread blocks) per launch.
const TILES: u32 = 8;
/// Bytes per SIDE×SIDE tile.
const TILE_BYTES: i32 = (SIDE * SIDE * 4) as i32;

/// The hotspot benchmark over `TILES` chip tiles.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hotspot;

impl Hotspot {
    fn tile_words(self) -> usize {
        (SIDE * SIDE) as usize
    }
    fn t_base(self) -> u64 {
        0
    }
    fn p_base(self) -> u64 {
        u64::from(TILES) * u64::from(SIDE * SIDE) * 4
    }
    fn out_base(self) -> u64 {
        2 * u64::from(TILES) * u64::from(SIDE * SIDE) * 4
    }

    fn inputs(self, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let n = TILES as usize * self.tile_words();
        let t = crate::util::gen_f32(seed, n, 40.0, 90.0);
        let p = crate::util::gen_f32(seed ^ 0x1234, n, 0.0, 2.0);
        (t, p)
    }

    fn update(self, tc: f32, tn: f32, ts: f32, tw: f32, te: f32, p: f32) -> f32 {
        let vertical = (tn + ts - 2.0 * tc) * RY;
        let horizontal = (te + tw - 2.0 * tc) * RX;
        let ambient = (TAMB - tc) * RZ;
        tc + STEP * (((p + vertical) + horizontal) + ambient)
    }

    fn reference(self, t: &[f32], p: &[f32]) -> Vec<f32> {
        let s = SIDE as usize;
        let mut out = vec![0.0f32; s * s];
        for y in 0..s {
            for x in 0..s {
                let tc = t[y * s + x];
                let tn = if y > 0 { t[(y - 1) * s + x] } else { 0.0 };
                let ts = if y + 1 < s { t[(y + 1) * s + x] } else { 0.0 };
                let tw = if x > 0 { t[y * s + x - 1] } else { 0.0 };
                let te = if x + 1 < s { t[y * s + x + 1] } else { 0.0 };
                out[y * s + x] = self.update(tc, tn, ts, tw, te, p[y * s + x]);
            }
        }
        out
    }

    /// Emits the update formula (shared by both kernel variants).
    #[allow(clippy::too_many_arguments)] // mirrors the 5-point stencil + params
    fn emit_update(
        self,
        kb: &mut KernelBuilder,
        tc: ValueRef,
        tn: ValueRef,
        ts: ValueRef,
        tw: ValueRef,
        te: ValueRef,
        p: ValueRef,
    ) -> ValueRef {
        let two = kb.const_f(2.0);
        let tc2 = kb.mul_f(two, tc);
        let vsum = kb.add_f(tn, ts);
        let vd = kb.sub_f(vsum, tc2);
        let ry = kb.const_f(RY);
        let vertical = kb.mul_f(vd, ry);
        let hsum = kb.add_f(te, tw);
        let hd = kb.sub_f(hsum, tc2);
        let rx = kb.const_f(RX);
        let horizontal = kb.mul_f(hd, rx);
        let tamb = kb.const_f(TAMB);
        let ad = kb.sub_f(tamb, tc);
        let rz = kb.const_f(RZ);
        let ambient = kb.mul_f(ad, rz);
        let s1 = kb.add_f(p, vertical);
        let s2 = kb.add_f(s1, horizontal);
        let s3 = kb.add_f(s2, ambient);
        let step = kb.const_f(STEP);
        let delta = kb.mul_f(step, s3);
        kb.add_f(tc, delta)
    }
}

impl Benchmark for Hotspot {
    fn info(&self) -> BenchInfo {
        BenchInfo {
            name: "hotspot",
            domain: "Physics Simulation",
            kernel: "hotspot_kernel",
            description: "Thermal simulation tool",
        }
    }

    fn dmt_kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("hotspot_dmt", Dim3::plane(SIDE, SIDE));
        kb.set_grid_blocks(TILES);
        let t_ptr = kb.param("t");
        let p_ptr = kb.param("p");
        let out_ptr = kb.param("out");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let side = kb.const_i(SIDE as i32);
        let row = kb.mul_i(ty, side);
        let lin = kb.add_i(row, tx);
        let t0 = kb.add_i(t_ptr, boff);
        let ta = kb.index_addr(t0, lin, 4);
        let tc = kb.load_global(ta);
        kb.tag_value(tc);
        let p0 = kb.add_i(p_ptr, boff);
        let pa = kb.index_addr(p0, lin, 4);
        let p = kb.load_global(pa);
        let z = Word::from_f32(0.0);
        let tn = kb.from_thread_or_const(tc, Delta::new_2d(0, -1), z, None);
        let ts = kb.from_thread_or_const(tc, Delta::new_2d(0, 1), z, None);
        let tw = kb.from_thread_or_const(tc, Delta::new_2d(-1, 0), z, Some(SIDE));
        let te = kb.from_thread_or_const(tc, Delta::new_2d(1, 0), z, Some(SIDE));
        let t_new = self.emit_update(&mut kb, tc, tn, ts, tw, te, p);
        let o0 = kb.add_i(out_ptr, boff);
        let oa = kb.index_addr(o0, lin, 4);
        kb.store_global(oa, t_new);
        kb.finish().expect("hotspot dMT kernel is well-formed")
    }

    fn shared_kernel(&self) -> Kernel {
        let s = SIDE as i32;
        let mut kb = KernelBuilder::new("hotspot_shared", Dim3::plane(SIDE, SIDE));
        kb.set_grid_blocks(TILES);
        kb.set_shared_words(SIDE * SIDE);

        // Phase 0: stage T.
        let t_ptr = kb.param("t");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let side = kb.const_i(s);
        let row = kb.mul_i(ty, side);
        let lin = kb.add_i(row, tx);
        let t0 = kb.add_i(t_ptr, boff);
        let ga = kb.index_addr(t0, lin, 4);
        let v = kb.load_global(ga);
        let zero = kb.const_i(0);
        let sa = kb.index_addr(zero, lin, 4);
        kb.store_shared(sa, v);

        kb.barrier();

        // Phase 1: neighbours from the scratchpad (linear-index clamping,
        // see srad), P from global.
        let p_ptr = kb.param("p");
        let out_ptr = kb.param("out");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let side = kb.const_i(s);
        let row = kb.mul_i(ty, side);
        let lin = kb.add_i(row, tx);
        let zero = kb.const_i(0);
        let one = kb.const_i(1);
        let maxc = kb.const_i(s - 1);
        let maxlin = kb.const_i(s * s - 1);
        let fz = kb.const_f(0.0);
        let sa = kb.index_addr(zero, lin, 4);
        let tc = kb.load_shared(sa);
        let neighbour = |kb: &mut KernelBuilder, dx: i32, dy: i32| {
            let (axis, toward_zero) = if dx != 0 { (tx, dx < 0) } else { (ty, dy < 0) };
            let off = kb.const_i(if dx != 0 { dx } else { dy * s });
            let nlin = kb.add_i(lin, off);
            let idx = if toward_zero {
                kb.max_i(nlin, zero)
            } else {
                kb.min_i(nlin, maxlin)
            };
            let valid = if toward_zero {
                kb.le_s(one, axis)
            } else {
                kb.lt_s(axis, maxc)
            };
            let na = kb.index_addr(zero, idx, 4);
            let nv = kb.load_shared(na);
            kb.select(valid, nv, fz)
        };
        let tw = neighbour(&mut kb, -1, 0);
        let te = neighbour(&mut kb, 1, 0);
        let tn = neighbour(&mut kb, 0, -1);
        let ts = neighbour(&mut kb, 0, 1);
        let p1 = kb.add_i(p_ptr, boff);
        let pa = kb.index_addr(p1, lin, 4);
        let p = kb.load_global(pa);
        let t_new = self.emit_update(&mut kb, tc, tn, ts, tw, te, p);
        let o0 = kb.add_i(out_ptr, boff);
        let oa = kb.index_addr(o0, lin, 4);
        kb.store_global(oa, t_new);
        kb.finish().expect("hotspot shared kernel is well-formed")
    }

    fn workload(&self, seed: u64) -> Workload {
        let (t, p) = self.inputs(seed);
        let mut memory = MemImage::with_words(3 * TILES as usize * self.tile_words());
        memory.write_f32_slice(Addr(self.t_base()), &t);
        memory.write_f32_slice(Addr(self.p_base()), &p);
        Workload {
            params: vec![
                Word::from_u32(self.t_base() as u32),
                Word::from_u32(self.p_base() as u32),
                Word::from_u32(self.out_base() as u32),
            ],
            memory,
        }
    }

    fn check(&self, seed: u64, memory: &MemImage) -> Result<(), String> {
        let (t, p) = self.inputs(seed);
        let want: Vec<f32> = t
            .chunks(self.tile_words())
            .zip(p.chunks(self.tile_words()))
            .flat_map(|(tt, tp)| self.reference(tt, tp))
            .collect();
        crate::util::check_f32(memory, self.out_base(), &want, 1e-3, "hotspot")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp_check;
    use dmt_dfg::interp;

    #[test]
    fn both_variants_match_reference() {
        interp_check(&Hotspot, 9);
        interp_check(&Hotspot, 1000);
    }

    #[test]
    fn dmt_variant_halves_loads() {
        let dmt = interp::run(&Hotspot.dmt_kernel(), Hotspot.workload(1).launch()).unwrap();
        let sh = interp::run(&Hotspot.shared_kernel(), Hotspot.workload(1).launch()).unwrap();
        // dMT: T + P once each.
        assert_eq!(
            dmt.stats.global_loads,
            2 * u64::from(TILES) * u64::from(SIDE * SIDE)
        );
        assert_eq!(
            sh.stats.global_loads,
            2 * u64::from(TILES) * u64::from(SIDE * SIDE)
        );
        // But the shared variant adds 5 scratchpad reads + 1 write each.
        assert_eq!(
            sh.stats.shared_loads,
            5 * u64::from(TILES) * u64::from(SIDE * SIDE)
        );
        assert_eq!(dmt.stats.shared_loads + dmt.stats.shared_stores, 0);
    }
}
