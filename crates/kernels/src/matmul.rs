//! `matrixMul` — dense matrix multiplication, the paper's Fig 2/3.
//!
//! Problem: `C = A × B` with `A: N×K`, `B: K×M`, one thread per element of
//! `C` (thread `(tx, ty)` computes `C[ty][tx]`), `N = M = 16`, `K = 12`
//! (stored padded to stride 16).
//!
//! * **dMT variant** (Fig 2b): `fromThreadOrMem` forwards each element of
//!   `A` along a row of threads (only `tx == 0` loads) and each element of
//!   `B` down a column (only `ty == 0` loads), cutting loads from
//!   `N·K·M` to `N·K + K·M` — the Fig 3 data flow.
//! * **Shared variant**: the classic tiled kernel — stage `A` and `B` into
//!   shared memory, barrier, then dot-product from the scratchpad.
//!
//! The inner loop is statically unrolled in both variants ("the loop is
//! statically unrolled to compute the indices at compile time", Fig 2b).

use crate::{BenchInfo, Benchmark, Workload};
use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::{Kernel, KernelBuilder};

/// Matrix dimensions: `C(N×M) = A(N×K) × B(K×M)` with `N = M = SIDE`.
const SIDE: u32 = 16;
/// Inner dimension (≤ SIDE; storage is padded to SIDE-stride).
const K: u32 = 12;

/// Tiles (= thread blocks) per launch.
const TILES: u32 = 8;
/// Bytes per SIDE×SIDE tile.
const TILE_BYTES: i32 = (SIDE * SIDE * 4) as i32;

/// The matrix-multiplication benchmark: `TILES` independent SIDE×SIDE
/// products (a blocked multiply's independent output tiles).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatMul;

impl MatMul {
    fn tile_words(self) -> usize {
        (SIDE * SIDE) as usize
    }
    fn a_base(self) -> u64 {
        0
    }
    fn b_base(self) -> u64 {
        u64::from(TILES) * u64::from(SIDE * SIDE) * 4
    }
    fn c_base(self) -> u64 {
        2 * u64::from(TILES) * u64::from(SIDE * SIDE) * 4
    }

    /// Reference multiply with the kernels' summation order (ascending i).
    fn reference(self, a: &[f32], b: &[f32]) -> Vec<f32> {
        let s = SIDE as usize;
        let mut c = vec![0.0f32; s * s];
        for ty in 0..s {
            for tx in 0..s {
                let mut acc = a[ty * s] * b[tx];
                for i in 1..K as usize {
                    acc += a[ty * s + i] * b[i * s + tx];
                }
                c[ty * s + tx] = acc;
            }
        }
        c
    }

    /// One tile pair; padded storage (columns K.. of A, rows K.. of B are
    /// zero).
    fn tile_inputs(self, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let s = SIDE as usize;
        let mut a = vec![0.0f32; s * s];
        let mut b = vec![0.0f32; s * s];
        let ra = crate::util::gen_f32(seed, s * K as usize, -1.0, 1.0);
        let rb = crate::util::gen_f32(seed ^ 0x9e37_79b9, K as usize * s, -1.0, 1.0);
        for ty in 0..s {
            for i in 0..K as usize {
                a[ty * s + i] = ra[ty * K as usize + i];
            }
        }
        for i in 0..K as usize {
            for tx in 0..s {
                b[i * s + tx] = rb[i * s + tx];
            }
        }
        (a, b)
    }

    fn inputs(self, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for t in 0..TILES {
            let (ta, tb) = self.tile_inputs(seed.wrapping_add(u64::from(t)));
            a.extend(ta);
            b.extend(tb);
        }
        (a, b)
    }
}

impl Benchmark for MatMul {
    fn info(&self) -> BenchInfo {
        BenchInfo {
            name: "matrixMul",
            domain: "Linear Algebra",
            kernel: "matrixMul",
            description: "Matrix multiplication",
        }
    }

    fn dmt_kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("matmul_dmt", Dim3::plane(SIDE, SIDE));
        kb.set_grid_blocks(TILES);
        let a_ptr = kb.param("a");
        let b_ptr = kb.param("b");
        let c_ptr = kb.param("c");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let zero = kb.const_i(0);
        // Memory-access predicates (Fig 2b).
        let en_a = kb.eq_i(tx, zero); // column 0 loads A rows
        let en_b = kb.eq_i(ty, zero); // row 0 loads B columns

        // Strength-reduced unrolled addressing within the block's tile:
        //   a_addr_i = a + tile + (ty*SIDE + i)*4   (+4 per step)
        //   b_addr_i = b + tile + (i*SIDE + tx)*4   (+SIDE*4 per step)
        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let row_stride = kb.const_i(SIDE as i32 * 4);
        let ty_off = kb.mul_i(ty, row_stride);
        let four = kb.const_i(4);
        let tx_off = kb.mul_i(tx, four);
        let a0 = kb.add_i(a_ptr, boff);
        let mut a_addr = kb.add_i(a0, ty_off);
        let b0 = kb.add_i(b_ptr, boff);
        let mut b_addr = kb.add_i(b0, tx_off);

        let mut acc = None;
        for i in 0..K {
            if i > 0 {
                a_addr = kb.add_i(a_addr, four);
                b_addr = kb.add_i(b_addr, row_stride);
            }
            // a forwarded along the row (from thread (tx-1, ty)), b down
            // the column (from thread (tx, ty-1)).
            let a = kb.from_thread_or_mem(a_addr, en_a, Delta::new_2d(-1, 0), Some(SIDE));
            let b = kb.from_thread_or_mem(b_addr, en_b, Delta::new_2d(0, -1), None);
            let prod = kb.mul_f(a, b);
            acc = Some(match acc {
                None => prod,
                Some(acc) => kb.add_f(acc, prod),
            });
        }
        let acc = acc.expect("K > 0");
        let c0 = kb.add_i(c_ptr, boff);
        let c1 = kb.add_i(c0, ty_off);
        let ca = kb.add_i(c1, tx_off);
        kb.store_global(ca, acc);
        kb.finish().expect("matmul dMT kernel is well-formed")
    }

    fn shared_kernel(&self) -> Kernel {
        let s = SIDE as i32;
        let mut kb = KernelBuilder::new("matmul_shared", Dim3::plane(SIDE, SIDE));
        kb.set_grid_blocks(TILES);
        // Shared: A tile at word 0, B tile at word SIDE².
        kb.set_shared_words(2 * SIDE * SIDE);

        // Phase 0: each thread stages one element of A and one of B.
        let a_ptr = kb.param("a");
        let b_ptr = kb.param("b");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let side = kb.const_i(s);
        let row = kb.mul_i(ty, side);
        let lin = kb.add_i(row, tx);
        let a0 = kb.add_i(a_ptr, boff);
        let ga = kb.index_addr(a0, lin, 4);
        let va = kb.load_global(ga);
        let zero = kb.const_i(0);
        let sa = kb.index_addr(zero, lin, 4);
        kb.store_shared(sa, va);
        let b0 = kb.add_i(b_ptr, boff);
        let gb = kb.index_addr(b0, lin, 4);
        let vb = kb.load_global(gb);
        let b_sh = kb.const_i(s * s * 4);
        let sb = kb.index_addr(b_sh, lin, 4);
        kb.store_shared(sb, vb);

        kb.barrier();

        // Phase 1: unrolled dot product from the scratchpad.
        let c_ptr = kb.param("c");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let four = kb.const_i(4);
        let row_stride = kb.const_i(s * 4);
        let ty_off = kb.mul_i(ty, row_stride);
        let mut a_addr = ty_off; // shared A base is word 0
        let b_base = kb.const_i(s * s * 4);
        let tx_off = kb.mul_i(tx, four);
        let mut b_addr = kb.add_i(b_base, tx_off);
        let mut acc = None;
        for i in 0..K {
            if i > 0 {
                a_addr = kb.add_i(a_addr, four);
                b_addr = kb.add_i(b_addr, row_stride);
            }
            let a = kb.load_shared(a_addr);
            let b = kb.load_shared(b_addr);
            let prod = kb.mul_f(a, b);
            acc = Some(match acc {
                None => prod,
                Some(acc) => kb.add_f(acc, prod),
            });
        }
        let acc = acc.expect("K > 0");
        let c0 = kb.add_i(c_ptr, boff);
        let c1 = kb.add_i(c0, ty_off);
        let ca = kb.add_i(c1, tx_off);
        kb.store_global(ca, acc);
        kb.finish().expect("matmul shared kernel is well-formed")
    }

    fn workload(&self, seed: u64) -> Workload {
        let (a, b) = self.inputs(seed);
        let mut memory = MemImage::with_words(3 * TILES as usize * self.tile_words());
        memory.write_f32_slice(Addr(self.a_base()), &a);
        memory.write_f32_slice(Addr(self.b_base()), &b);
        Workload {
            params: vec![
                Word::from_u32(self.a_base() as u32),
                Word::from_u32(self.b_base() as u32),
                Word::from_u32(self.c_base() as u32),
            ],
            memory,
        }
    }

    fn check(&self, seed: u64, memory: &MemImage) -> Result<(), String> {
        let (a, b) = self.inputs(seed);
        let want: Vec<f32> = a
            .chunks(self.tile_words())
            .zip(b.chunks(self.tile_words()))
            .flat_map(|(ta, tb)| self.reference(ta, tb))
            .collect();
        crate::util::check_f32(memory, self.c_base(), &want, 1e-4, "C")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp_check;
    use dmt_dfg::interp;

    #[test]
    fn both_variants_match_reference() {
        interp_check(&MatMul, 3);
        interp_check(&MatMul, 99);
    }

    #[test]
    fn dmt_variant_eliminates_redundant_loads() {
        let m = MatMul;
        let w = m.workload(1);
        let dmt = interp::run(&m.dmt_kernel(), w.launch()).unwrap();
        let w = m.workload(1);
        let sh = interp::run(&m.shared_kernel(), w.launch()).unwrap();
        // dMT: loaders only — SIDE rows × K of A + K×SIDE of B, per tile.
        assert_eq!(
            dmt.stats.global_loads,
            u64::from(TILES) * u64::from(SIDE * K + K * SIDE),
            "one load per matrix element actually needed"
        );
        // Shared variant: every thread stages 2 elements from global.
        assert_eq!(
            sh.stats.global_loads,
            u64::from(TILES) * u64::from(2 * SIDE * SIDE)
        );
        // And the forwarding replaced (SIDE-1)/SIDE of the dMT loads.
        assert_eq!(
            dmt.stats.eldst_forwards,
            u64::from(TILES) * u64::from(2 * K * SIDE * (SIDE - 1))
        );
    }

    #[test]
    fn variant_properties() {
        let dmt = MatMul.dmt_kernel();
        assert_eq!(dmt.phases().len(), 1);
        assert!(dmt.uses_inter_thread_comm());
        let sh = MatMul.shared_kernel();
        assert_eq!(sh.phases().len(), 2);
        assert!(sh.uses_shared_memory());
    }

    #[test]
    fn column_forwarding_distance_is_one_row() {
        let sites = dmt_dfg::delta_stats::comm_sites(&MatMul.dmt_kernel());
        assert_eq!(sites.len(), 2 * K as usize);
        assert!(sites.iter().any(|s| s.linear_distance == 1));
        assert!(sites.iter().any(|s| s.linear_distance == u64::from(SIDE)));
        // Euclidean distance is 1 in both directions (Fig 5 metric).
        assert!(sites.iter().all(|s| (s.euclidean - 1.0).abs() < 1e-9));
    }
}
