//! `srad` — Speckle-Reducing Anisotropic Diffusion (Rodinia), the
//! diffusion-coefficient kernel.
//!
//! Problem: for each pixel of a 2-D image `J`, compute the diffusion
//! coefficient from the four-neighbour derivatives:
//!
//! ```text
//! dN..dE = J[neigh] − Jc            (zero-valued halo outside the tile)
//! G2 = (dN²+dS²+dW²+dE²) / (Jc²+ε)
//! L  = (dN+dS+dW+dE) / (Jc+ε)
//! num = ½·G2 − (1/16)·L²,   den = 1 + ¼·L
//! q  = num / (den²+ε)
//! c  = clamp(1 / (1 + (q − q0)/(q0·(1+q0)+ε)), 0, 1)
//! ```
//!
//! This is the division-heavy core of Rodinia's `srad` kernel and drives
//! the grid's special compute units.
//!
//! * **dMT variant**: the four neighbour values of `J` arrive over
//!   elevator nodes (ΔTID (±1,0) and (0,±1)); each element is loaded once.
//! * **Shared variant**: the tile is staged in shared memory; each thread
//!   then reads five scratchpad values with explicit margin selects.

use crate::{BenchInfo, Benchmark, Workload};
use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::{Kernel, KernelBuilder, ValueRef};

/// Tile side.
const SIDE: u32 = 16;
const EPS: f32 = 1e-6;
const Q0: f32 = 0.5;

/// Tiles (= thread blocks) per launch.
const TILES: u32 = 8;
/// Bytes per SIDE×SIDE tile.
const TILE_BYTES: i32 = (SIDE * SIDE * 4) as i32;

/// The SRAD diffusion-coefficient benchmark over `TILES` image tiles.
#[derive(Debug, Clone, Copy, Default)]
pub struct Srad;

impl Srad {
    fn tile_words(self) -> usize {
        (SIDE * SIDE) as usize
    }

    fn out_base(self) -> u64 {
        u64::from(TILES) * u64::from(SIDE * SIDE) * 4
    }

    fn inputs(self, seed: u64) -> Vec<f32> {
        crate::util::gen_f32(seed, TILES as usize * self.tile_words(), 0.1, 1.1)
    }

    #[allow(clippy::many_single_char_names)]
    fn coefficient(self, jc: f32, jn: f32, js: f32, jw: f32, je: f32) -> f32 {
        let dn = jn - jc;
        let ds = js - jc;
        let dw = jw - jc;
        let de = je - jc;
        let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc + EPS);
        let l = (dn + ds + dw + de) / (jc + EPS);
        let num = 0.5 * g2 - 0.0625 * (l * l);
        let den = 1.0 + 0.25 * l;
        let q = num / (den * den + EPS);
        let c = 1.0 / (1.0 + (q - Q0) / (Q0 * (1.0 + Q0) + EPS));
        c.clamp(0.0, 1.0)
    }

    fn reference(self, j: &[f32]) -> Vec<f32> {
        let s = SIDE as usize;
        let mut out = vec![0.0f32; s * s];
        for y in 0..s {
            for x in 0..s {
                let jc = j[y * s + x];
                let jn = if y > 0 { j[(y - 1) * s + x] } else { 0.0 };
                let js = if y + 1 < s { j[(y + 1) * s + x] } else { 0.0 };
                let jw = if x > 0 { j[y * s + x - 1] } else { 0.0 };
                let je = if x + 1 < s { j[y * s + x + 1] } else { 0.0 };
                out[y * s + x] = self.coefficient(jc, jn, js, jw, je);
            }
        }
        out
    }

    /// Emits the coefficient computation (shared by both kernel variants,
    /// so all backends compute the exact same expression tree).
    #[allow(clippy::many_single_char_names)]
    fn emit_coefficient(
        self,
        kb: &mut KernelBuilder,
        jc: ValueRef,
        jn: ValueRef,
        js: ValueRef,
        jw: ValueRef,
        je: ValueRef,
    ) -> ValueRef {
        let dn = kb.sub_f(jn, jc);
        let ds = kb.sub_f(js, jc);
        let dw = kb.sub_f(jw, jc);
        let de = kb.sub_f(je, jc);
        let dn2 = kb.mul_f(dn, dn);
        let ds2 = kb.mul_f(ds, ds);
        let dw2 = kb.mul_f(dw, dw);
        let de2 = kb.mul_f(de, de);
        let s1 = kb.add_f(dn2, ds2);
        let s2 = kb.add_f(dw2, de2);
        let sum2 = kb.add_f(s1, s2);
        let jc2 = kb.mul_f(jc, jc);
        let eps = kb.const_f(EPS);
        let jc2e = kb.add_f(jc2, eps);
        let g2 = kb.div_f(sum2, jc2e);
        let t1 = kb.add_f(dn, ds);
        let t2 = kb.add_f(dw, de);
        let lsum = kb.add_f(t1, t2);
        let jce = kb.add_f(jc, eps);
        let l = kb.div_f(lsum, jce);
        let half = kb.const_f(0.5);
        let g2h = kb.mul_f(half, g2);
        let l2 = kb.mul_f(l, l);
        let sixteenth = kb.const_f(0.0625);
        let l2s = kb.mul_f(sixteenth, l2);
        let num = kb.sub_f(g2h, l2s);
        let quarter = kb.const_f(0.25);
        let lq = kb.mul_f(quarter, l);
        let one = kb.const_f(1.0);
        let den = kb.add_f(one, lq);
        let den2 = kb.mul_f(den, den);
        let den2e = kb.add_f(den2, eps);
        let q = kb.div_f(num, den2e);
        let q0 = kb.const_f(Q0);
        let qd = kb.sub_f(q, q0);
        let q0s = kb.const_f(Q0 * (1.0 + Q0) + EPS);
        let frac = kb.div_f(qd, q0s);
        let cden = kb.add_f(one, frac);
        let c = kb.div_f(one, cden);
        let zero = kb.const_f(0.0);
        let cmax = kb.max_f(c, zero);
        kb.min_f(cmax, one)
    }
}

impl Benchmark for Srad {
    fn info(&self) -> BenchInfo {
        BenchInfo {
            name: "srad",
            domain: "Ultrasonic/Radar Imaging",
            kernel: "srad",
            description: "Speckle Reducing Anisotropic Diffusion",
        }
    }

    fn dmt_kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("srad_dmt", Dim3::plane(SIDE, SIDE));
        kb.set_grid_blocks(TILES);
        let j_ptr = kb.param("j");
        let out_ptr = kb.param("out");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let side = kb.const_i(SIDE as i32);
        let row = kb.mul_i(ty, side);
        let lin = kb.add_i(row, tx);
        let j0 = kb.add_i(j_ptr, boff);
        let ja = kb.index_addr(j0, lin, 4);
        let jc = kb.load_global(ja);
        kb.tag_value(jc);
        let z = Word::from_f32(0.0);
        // Four-neighbour halo exchange over the fabric.
        let jn = kb.from_thread_or_const(jc, Delta::new_2d(0, -1), z, None);
        let js = kb.from_thread_or_const(jc, Delta::new_2d(0, 1), z, None);
        let jw = kb.from_thread_or_const(jc, Delta::new_2d(-1, 0), z, Some(SIDE));
        let je = kb.from_thread_or_const(jc, Delta::new_2d(1, 0), z, Some(SIDE));
        let c = self.emit_coefficient(&mut kb, jc, jn, js, jw, je);
        let o0 = kb.add_i(out_ptr, boff);
        let oa = kb.index_addr(o0, lin, 4);
        kb.store_global(oa, c);
        kb.finish().expect("srad dMT kernel is well-formed")
    }

    fn shared_kernel(&self) -> Kernel {
        let s = SIDE as i32;
        let mut kb = KernelBuilder::new("srad_shared", Dim3::plane(SIDE, SIDE));
        kb.set_grid_blocks(TILES);
        kb.set_shared_words(SIDE * SIDE);

        // Phase 0: stage the tile.
        let j_ptr = kb.param("j");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let side = kb.const_i(s);
        let row = kb.mul_i(ty, side);
        let lin = kb.add_i(row, tx);
        let j0 = kb.add_i(j_ptr, boff);
        let ga = kb.index_addr(j0, lin, 4);
        let v = kb.load_global(ga);
        let zero = kb.const_i(0);
        let sa = kb.index_addr(zero, lin, 4);
        kb.store_shared(sa, v);

        kb.barrier();

        // Phase 1: five scratchpad reads with margin selects. Neighbour
        // addresses clamp the *linear* index (always in-bounds; the margin
        // select discards wrapped values), which keeps the phase within
        // the 32-ALU pool.
        let out_ptr = kb.param("out");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let side = kb.const_i(s);
        let row = kb.mul_i(ty, side);
        let lin = kb.add_i(row, tx);
        let zero = kb.const_i(0);
        let one = kb.const_i(1);
        let maxc = kb.const_i(s - 1);
        let maxlin = kb.const_i(s * s - 1);
        let fz = kb.const_f(0.0);

        let sa = kb.index_addr(zero, lin, 4);
        let jc = kb.load_shared(sa);

        let neighbour = |kb: &mut KernelBuilder, dx: i32, dy: i32| {
            let (axis, toward_zero) = if dx != 0 { (tx, dx < 0) } else { (ty, dy < 0) };
            let off = kb.const_i(if dx != 0 { dx } else { dy * s });
            let nlin = kb.add_i(lin, off);
            let idx = if toward_zero {
                kb.max_i(nlin, zero)
            } else {
                kb.min_i(nlin, maxlin)
            };
            let valid = if toward_zero {
                kb.le_s(one, axis) // axis >= 1
            } else {
                kb.lt_s(axis, maxc) // axis < SIDE-1
            };
            let na = kb.index_addr(zero, idx, 4);
            let nv = kb.load_shared(na);
            kb.select(valid, nv, fz)
        };
        let jw = neighbour(&mut kb, -1, 0);
        let je = neighbour(&mut kb, 1, 0);
        let jn = neighbour(&mut kb, 0, -1);
        let js = neighbour(&mut kb, 0, 1);

        let c = self.emit_coefficient(&mut kb, jc, jn, js, jw, je);
        let o0 = kb.add_i(out_ptr, boff);
        let oa = kb.index_addr(o0, lin, 4);
        kb.store_global(oa, c);
        kb.finish().expect("srad shared kernel is well-formed")
    }

    fn workload(&self, seed: u64) -> Workload {
        let j = self.inputs(seed);
        let mut memory = MemImage::with_words(2 * TILES as usize * self.tile_words());
        memory.write_f32_slice(Addr(0), &j);
        Workload {
            params: vec![Word::from_u32(0), Word::from_u32(self.out_base() as u32)],
            memory,
        }
    }

    fn check(&self, seed: u64, memory: &MemImage) -> Result<(), String> {
        let j = self.inputs(seed);
        let want: Vec<f32> = j
            .chunks(self.tile_words())
            .flat_map(|t| self.reference(t))
            .collect();
        crate::util::check_f32(memory, self.out_base(), &want, 1e-3, "srad")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp_check;

    #[test]
    fn both_variants_match_reference() {
        interp_check(&Srad, 3);
        interp_check(&Srad, 77);
    }

    #[test]
    fn stencil_uses_four_elevators() {
        let k = Srad.dmt_kernel();
        let sites = dmt_dfg::delta_stats::comm_sites(&k);
        assert_eq!(sites.len(), 4);
        // Vertical neighbours flatten to ΔTID = 16, horizontal to 1; the
        // Fig 5 Euclidean metric sees all four as distance 1.
        assert!(sites.iter().all(|s| (s.euclidean - 1.0).abs() < 1e-9));
        let linear: Vec<u64> = sites.iter().map(|s| s.linear_distance).collect();
        assert!(linear.contains(&1));
        assert!(linear.contains(&(u64::from(SIDE))));
    }
}
