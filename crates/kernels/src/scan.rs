//! `scan` — prefix sum (NVIDIA SDK `scan_naive`), the paper's Fig 6.
//!
//! Problem: `out[t] = Σ in[0..=t]` (inclusive scan over one block).
//!
//! * **dMT variant** (Fig 6b): a recurrent elevator chain —
//!   `sum = fromThreadOrConst<sum, -1, 0>() + mem_val; tagValue<sum>()`.
//!   No shared memory, no barriers; the dataflow firing rule serializes
//!   exactly the data-dependent chain and nothing else.
//! * **Shared variant**: the Hillis–Steele `scan_naive` from the SDK —
//!   log₂(n) ping-pong passes over shared memory with a barrier between
//!   each (the paper calls scan "a very sequential algorithm" whose win is
//!   mostly energy).
//!
//! Data is `i32`, so both variants and the reference agree bit-exactly
//! despite different addition orders.

use crate::{BenchInfo, Benchmark, Workload};
use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::{Kernel, KernelBuilder};

/// The scan benchmark; `n` must be a power of two (block size). The launch
/// runs `blocks` independent per-block scans (the SDK `scan_naive`
/// semantics), which keeps the machines in steady state.
#[derive(Debug, Clone, Copy)]
pub struct Scan {
    n: u32,
    blocks: u32,
}

impl Scan {
    /// Creates a scan over `blocks` segments of `n` elements each.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or exceeds 1024, or `blocks`
    /// is 0.
    #[must_use]
    pub fn new(n: u32, blocks: u32) -> Scan {
        assert!(n.is_power_of_two() && (2..=1024).contains(&n));
        assert!(blocks >= 1);
        Scan { n, blocks }
    }

    fn total(self) -> u32 {
        self.n * self.blocks
    }

    fn in_base(self) -> u64 {
        0
    }

    fn out_base(self) -> u64 {
        u64::from(self.total()) * 4
    }

    fn reference(self, input: &[i32]) -> Vec<i32> {
        let mut acc = 0i32;
        input
            .iter()
            .map(|&v| {
                acc = acc.wrapping_add(v);
                acc
            })
            .collect()
    }
}

impl Default for Scan {
    fn default() -> Scan {
        Scan::new(1024, 2)
    }
}

impl Benchmark for Scan {
    fn info(&self) -> BenchInfo {
        BenchInfo {
            name: "scan",
            domain: "Data-Parallel Algorithms",
            kernel: "scan_naive",
            description: "Prefix sum",
        }
    }

    fn dmt_kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("scan_dmt", Dim3::linear(self.n));
        kb.set_grid_blocks(self.blocks);
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(self.n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let a = kb.index_addr(inp, gtid, 4);
        let mem_val = kb.load_global(a);
        // sum = fromThreadOrConst<sum, -1, 0>() + mem_val
        let (prev, rec) =
            kb.recurrent_from_thread_or_const(Delta::new(-1), Word::from_i32(0), None);
        let sum = kb.add_i(prev, mem_val);
        kb.close_recurrence(rec, sum); // tagValue<sum>()
        let oa = kb.index_addr(out, gtid, 4);
        kb.store_global(oa, sum);
        kb.finish().expect("scan dMT kernel is well-formed")
    }

    fn shared_kernel(&self) -> Kernel {
        let n = self.n;
        let steps = n.trailing_zeros();
        let mut kb = KernelBuilder::new("scan_shared", Dim3::linear(n));
        kb.set_grid_blocks(self.blocks);
        // Ping-pong buffers A at word 0, B at word n.
        kb.set_shared_words(2 * n);

        // Phase 0: stage input into buffer A.
        let inp = kb.param("in");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let ga = kb.index_addr(inp, gtid, 4);
        let v = kb.load_global(ga);
        let zero = kb.const_i(0);
        let sa = kb.index_addr(zero, tid, 4);
        kb.store_shared(sa, v);

        // log2(n) Hillis–Steele passes, barrier-separated.
        let mut cur_base = 0i32;
        let mut nxt_base = n as i32 * 4;
        for d in 0..steps {
            kb.barrier();
            let off = 1i32 << d;
            let tid = kb.thread_idx(0);
            let cur = kb.const_i(cur_base);
            let sa = kb.index_addr(cur, tid, 4);
            let x = kb.load_shared(sa);
            // Clamped neighbour index: max(tid - off, 0).
            let offc = kb.const_i(off);
            let shifted = kb.sub_i(tid, offc);
            let z = kb.const_i(0);
            let clamped = kb.max_i(shifted, z);
            let na = kb.index_addr(cur, clamped, 4);
            let y = kb.load_shared(na);
            let sum = kb.add_i(x, y);
            let active = kb.le_s(offc, tid); // off <= tid
            let val = kb.select(active, sum, x);
            let nxt = kb.const_i(nxt_base);
            let da = kb.index_addr(nxt, tid, 4);
            kb.store_shared(da, val);
            std::mem::swap(&mut cur_base, &mut nxt_base);
        }

        // Final phase: write the result buffer out.
        kb.barrier();
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(n as i32);
        let base = kb.mul_i(bid, seg);
        let gtid = kb.add_i(base, tid);
        let cur = kb.const_i(cur_base);
        let sa = kb.index_addr(cur, tid, 4);
        let v = kb.load_shared(sa);
        let oa = kb.index_addr(out, gtid, 4);
        kb.store_global(oa, v);
        kb.finish().expect("scan shared kernel is well-formed")
    }

    fn workload(&self, seed: u64) -> Workload {
        let data = crate::util::gen_i32(seed, self.total() as usize, -100, 100);
        let mut memory = MemImage::with_words(2 * self.total() as usize);
        memory.write_i32_slice(Addr(self.in_base()), &data);
        Workload {
            params: vec![
                Word::from_u32(self.in_base() as u32),
                Word::from_u32(self.out_base() as u32),
            ],
            memory,
        }
    }

    fn check(&self, seed: u64, memory: &MemImage) -> Result<(), String> {
        let data = crate::util::gen_i32(seed, self.total() as usize, -100, 100);
        // Independent scan per block segment.
        let want: Vec<i32> = data
            .chunks(self.n as usize)
            .flat_map(|c| self.reference(c))
            .collect();
        crate::util::check_i32(memory, self.out_base(), &want, "scan")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp_check;

    #[test]
    fn both_variants_match_reference() {
        interp_check(&Scan::default(), 42);
        interp_check(&Scan::new(64, 2), 7);
    }

    #[test]
    fn variant_properties() {
        let s = Scan::default();
        let dmt = s.dmt_kernel();
        assert!(dmt.uses_inter_thread_comm());
        assert!(!dmt.uses_shared_memory());
        assert_eq!(dmt.phases().len(), 1, "no barriers in the dMT variant");
        let sh = s.shared_kernel();
        assert!(!sh.uses_inter_thread_comm());
        assert!(sh.uses_shared_memory());
        assert_eq!(sh.phases().len(), 12, "load + 10 passes + writeback");
    }

    #[test]
    fn delta_profile_is_unit_distance() {
        let sites = dmt_dfg::delta_stats::comm_sites(&Scan::default().dmt_kernel());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].linear_distance, 1);
    }
}
