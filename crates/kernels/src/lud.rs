//! `lud` — LU decomposition, internal-block update (`lud_internal` from
//! Rodinia).
//!
//! The internal kernel updates each element of the trailing submatrix:
//! `C[ty][tx] = D[ty][tx] − Σ_k L[ty][k] · U[k][tx]`.
//!
//! §5.2 notes "the LUD kernel in which we used our implementation of
//! matrix multiplication" — accordingly, both variants are the matmul
//! structure plus the diagonal-block load and subtraction: the dMT version
//! forwards `L` rows and `U` columns through eLDST units; the shared
//! version stages the `L` and `U` tiles behind a barrier.

use crate::{BenchInfo, Benchmark, Workload};
use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::{Kernel, KernelBuilder};

/// Tile side (threads per dimension).
const SIDE: u32 = 16;
/// Perimeter depth (inner dimension of the update; padded to SIDE-stride
/// storage).
const K: u32 = 8;

/// Tiles (= thread blocks) per launch.
const TILES: u32 = 8;
/// Bytes per SIDE×SIDE tile.
const TILE_BYTES: i32 = (SIDE * SIDE * 4) as i32;

/// The LU-decomposition internal-block benchmark: `TILES` independent
/// trailing-submatrix tiles updated against their perimeter blocks.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lud;

impl Lud {
    fn tile_words(self) -> usize {
        (SIDE * SIDE) as usize
    }
    fn l_base(self) -> u64 {
        0
    }
    fn u_base(self) -> u64 {
        u64::from(TILES) * u64::from(SIDE * SIDE) * 4
    }
    fn d_base(self) -> u64 {
        2 * u64::from(TILES) * u64::from(SIDE * SIDE) * 4
    }
    fn out_base(self) -> u64 {
        3 * u64::from(TILES) * u64::from(SIDE * SIDE) * 4
    }

    fn tile_inputs(self, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let s = SIDE as usize;
        let mut l = vec![0.0f32; s * s];
        let mut u = vec![0.0f32; s * s];
        let rl = crate::util::gen_f32(seed, s * K as usize, -1.0, 1.0);
        let ru = crate::util::gen_f32(seed ^ 0xabcd, K as usize * s, -1.0, 1.0);
        for ty in 0..s {
            for i in 0..K as usize {
                l[ty * s + i] = rl[ty * K as usize + i];
            }
        }
        for i in 0..K as usize {
            for tx in 0..s {
                u[i * s + tx] = ru[i * s + tx];
            }
        }
        let d = crate::util::gen_f32(seed ^ 0x5555, s * s, -4.0, 4.0);
        (l, u, d)
    }

    fn inputs(self, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let (mut l, mut u, mut d) = (Vec::new(), Vec::new(), Vec::new());
        for t in 0..TILES {
            let (tl, tu, td) = self.tile_inputs(seed.wrapping_add(u64::from(t)));
            l.extend(tl);
            u.extend(tu);
            d.extend(td);
        }
        (l, u, d)
    }

    fn reference(self, l: &[f32], u: &[f32], d: &[f32]) -> Vec<f32> {
        let s = SIDE as usize;
        let mut out = vec![0.0f32; s * s];
        for ty in 0..s {
            for tx in 0..s {
                let mut acc = l[ty * s] * u[tx];
                for i in 1..K as usize {
                    acc += l[ty * s + i] * u[i * s + tx];
                }
                out[ty * s + tx] = d[ty * s + tx] - acc;
            }
        }
        out
    }
}

impl Benchmark for Lud {
    fn info(&self) -> BenchInfo {
        BenchInfo {
            name: "lud",
            domain: "Linear Algebra",
            kernel: "lud_internal",
            description: "Matrix decomposition",
        }
    }

    fn dmt_kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("lud_dmt", Dim3::plane(SIDE, SIDE));
        kb.set_grid_blocks(TILES);
        let l_ptr = kb.param("l");
        let u_ptr = kb.param("u");
        let d_ptr = kb.param("d");
        let out_ptr = kb.param("out");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let zero = kb.const_i(0);
        let en_l = kb.eq_i(tx, zero);
        let en_u = kb.eq_i(ty, zero);

        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let row_stride = kb.const_i(SIDE as i32 * 4);
        let four = kb.const_i(4);
        let ty_off = kb.mul_i(ty, row_stride);
        let l0 = kb.add_i(l_ptr, boff);
        let mut l_addr = kb.add_i(l0, ty_off);
        let tx_off = kb.mul_i(tx, four);
        let u0 = kb.add_i(u_ptr, boff);
        let mut u_addr = kb.add_i(u0, tx_off);
        let mut acc = None;
        for i in 0..K {
            if i > 0 {
                l_addr = kb.add_i(l_addr, four);
                u_addr = kb.add_i(u_addr, row_stride);
            }
            let lv = kb.from_thread_or_mem(l_addr, en_l, Delta::new_2d(-1, 0), Some(SIDE));
            let uv = kb.from_thread_or_mem(u_addr, en_u, Delta::new_2d(0, -1), None);
            let prod = kb.mul_f(lv, uv);
            acc = Some(match acc {
                None => prod,
                Some(a) => kb.add_f(a, prod),
            });
        }
        let acc = acc.expect("K > 0");
        let d0 = kb.add_i(d_ptr, boff);
        let d1 = kb.add_i(d0, ty_off);
        let da = kb.add_i(d1, tx_off);
        let dv = kb.load_global(da);
        let val = kb.sub_f(dv, acc);
        let o0 = kb.add_i(out_ptr, boff);
        let o1 = kb.add_i(o0, ty_off);
        let oa = kb.add_i(o1, tx_off);
        kb.store_global(oa, val);
        kb.finish().expect("lud dMT kernel is well-formed")
    }

    fn shared_kernel(&self) -> Kernel {
        let s = SIDE as i32;
        let mut kb = KernelBuilder::new("lud_shared", Dim3::plane(SIDE, SIDE));
        kb.set_grid_blocks(TILES);
        kb.set_shared_words(2 * SIDE * SIDE);

        // Phase 0: stage L and U tiles.
        let l_ptr = kb.param("l");
        let u_ptr = kb.param("u");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let side = kb.const_i(s);
        let row = kb.mul_i(ty, side);
        let lin = kb.add_i(row, tx);
        let l0 = kb.add_i(l_ptr, boff);
        let gl = kb.index_addr(l0, lin, 4);
        let vl = kb.load_global(gl);
        let zero = kb.const_i(0);
        let sl = kb.index_addr(zero, lin, 4);
        kb.store_shared(sl, vl);
        let u0 = kb.add_i(u_ptr, boff);
        let gu = kb.index_addr(u0, lin, 4);
        let vu = kb.load_global(gu);
        let u_sh = kb.const_i(s * s * 4);
        let su = kb.index_addr(u_sh, lin, 4);
        kb.store_shared(su, vu);

        kb.barrier();

        // Phase 1: dot product from the scratchpad, then D − acc.
        let d_ptr = kb.param("d");
        let out_ptr = kb.param("out");
        let tx = kb.thread_idx(0);
        let ty = kb.thread_idx(1);
        let bid = kb.block_idx();
        let tile = kb.const_i(TILE_BYTES);
        let boff = kb.mul_i(bid, tile);
        let four = kb.const_i(4);
        let row_stride = kb.const_i(s * 4);
        let ty_off = kb.mul_i(ty, row_stride);
        let mut l_addr = ty_off;
        let u_base = kb.const_i(s * s * 4);
        let tx_off = kb.mul_i(tx, four);
        let mut u_addr = kb.add_i(u_base, tx_off);
        let mut acc = None;
        for i in 0..K {
            if i > 0 {
                l_addr = kb.add_i(l_addr, four);
                u_addr = kb.add_i(u_addr, row_stride);
            }
            let lv = kb.load_shared(l_addr);
            let uv = kb.load_shared(u_addr);
            let prod = kb.mul_f(lv, uv);
            acc = Some(match acc {
                None => prod,
                Some(a) => kb.add_f(a, prod),
            });
        }
        let acc = acc.expect("K > 0");
        let d0 = kb.add_i(d_ptr, boff);
        let d1 = kb.add_i(d0, ty_off);
        let da = kb.add_i(d1, tx_off);
        let dv = kb.load_global(da);
        let val = kb.sub_f(dv, acc);
        let o0 = kb.add_i(out_ptr, boff);
        let o1 = kb.add_i(o0, ty_off);
        let oa = kb.add_i(o1, tx_off);
        kb.store_global(oa, val);
        kb.finish().expect("lud shared kernel is well-formed")
    }

    fn workload(&self, seed: u64) -> Workload {
        let (l, u, d) = self.inputs(seed);
        let mut memory = MemImage::with_words(4 * TILES as usize * self.tile_words());
        memory.write_f32_slice(Addr(self.l_base()), &l);
        memory.write_f32_slice(Addr(self.u_base()), &u);
        memory.write_f32_slice(Addr(self.d_base()), &d);
        Workload {
            params: vec![
                Word::from_u32(self.l_base() as u32),
                Word::from_u32(self.u_base() as u32),
                Word::from_u32(self.d_base() as u32),
                Word::from_u32(self.out_base() as u32),
            ],
            memory,
        }
    }

    fn check(&self, seed: u64, memory: &MemImage) -> Result<(), String> {
        let (l, u, d) = self.inputs(seed);
        let want: Vec<f32> = l
            .chunks(self.tile_words())
            .zip(u.chunks(self.tile_words()))
            .zip(d.chunks(self.tile_words()))
            .flat_map(|((tl, tu), td)| self.reference(tl, tu, td))
            .collect();
        crate::util::check_f32(memory, self.out_base(), &want, 1e-4, "lud")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp_check;
    use dmt_dfg::interp;

    #[test]
    fn both_variants_match_reference() {
        interp_check(&Lud, 17);
        interp_check(&Lud, 1234);
    }

    #[test]
    fn forwarding_saves_loads() {
        let w = Lud.workload(5);
        let dmt = interp::run(&Lud.dmt_kernel(), w.launch()).unwrap();
        let w = Lud.workload(5);
        let sh = interp::run(&Lud.shared_kernel(), w.launch()).unwrap();
        // dMT: K per L-row + K per U-column + one D load per thread.
        assert_eq!(
            dmt.stats.global_loads,
            u64::from(TILES) * u64::from(SIDE * K + K * SIDE + SIDE * SIDE)
        );
        assert!(sh.stats.global_loads > dmt.stats.global_loads);
        assert!(dmt.stats.eldst_forwards > 0);
    }
}
