//! The user-facing machine: pick an architecture, run kernels.

use dmt_common::config::SystemConfig;
use dmt_common::memimg::MemImage;
use dmt_common::stats::RunStats;
use dmt_common::{Error, Result, RunLimits};
use dmt_dfg::{Kernel, LaunchInput};
use dmt_energy::{ArchKind, EnergyModel, EnergyReport};
use dmt_fabric::FabricMachine;
use dmt_gpu::GpuMachine;
use dmt_obs::Obs;
use std::fmt;

/// The three machines the paper evaluates (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Von Neumann GPGPU baseline (one Fermi-class SM).
    FermiSm,
    /// Multithreaded CGRA without inter-thread communication (SGMF): runs
    /// shared-memory kernels on the fabric.
    MtCgra,
    /// The paper's contribution: MT-CGRA with elevator nodes and eLDST
    /// units.
    DmtCgra,
}

impl Arch {
    /// All architectures, in the paper's presentation order.
    pub const ALL: [Arch; 3] = [Arch::FermiSm, Arch::MtCgra, Arch::DmtCgra];

    /// The energy-model family for this architecture.
    #[must_use]
    pub fn kind(self) -> ArchKind {
        match self {
            Arch::FermiSm => ArchKind::FermiSm,
            Arch::MtCgra => ArchKind::MtCgra,
            Arch::DmtCgra => ArchKind::DmtCgra,
        }
    }

    /// A stable machine-readable identifier, used by job descriptors and
    /// JSON artifacts (`Display` is the human-facing paper name).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Arch::FermiSm => "fermi_sm",
            Arch::MtCgra => "mt_cgra",
            Arch::DmtCgra => "dmt_cgra",
        }
    }
}

impl std::str::FromStr for Arch {
    type Err = String;

    /// Parses either the stable [`Arch::key`] form or the paper name.
    fn from_str(s: &str) -> std::result::Result<Arch, String> {
        match s {
            "fermi_sm" | "Fermi SM" => Ok(Arch::FermiSm),
            "mt_cgra" | "MT-CGRA" => Ok(Arch::MtCgra),
            "dmt_cgra" | "dMT-CGRA" => Ok(Arch::DmtCgra),
            other => Err(format!(
                "unknown architecture {other:?}; expected fermi_sm, mt_cgra or dmt_cgra"
            )),
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.kind(), f)
    }
}

/// Everything a kernel run produces: the final memory, raw event counters,
/// and modelled energy.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which machine ran.
    pub arch: Arch,
    /// Kernel name.
    pub kernel: String,
    /// Final global memory image.
    pub memory: MemImage,
    /// Cycle and event counters.
    pub stats: RunStats,
    /// Energy breakdown.
    pub energy: EnergyReport,
}

impl RunReport {
    /// Execution time in core cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Total energy in joules.
    #[must_use]
    pub fn total_joules(&self) -> f64 {
        self.energy.total_j()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {} cycles, {:.3} µJ",
            self.kernel,
            self.arch,
            self.cycles(),
            self.total_joules() * 1e6
        )
    }
}

/// A configured machine instance.
///
/// # Examples
///
/// ```
/// use dmt_core::{Arch, Machine};
/// use dmt_common::{SystemConfig, MemImage, Word};
/// use dmt_common::geom::Dim3;
/// use dmt_dfg::{KernelBuilder, LaunchInput};
///
/// let mut kb = KernelBuilder::new("ids", Dim3::linear(32));
/// let out = kb.param("out");
/// let tid = kb.thread_idx(0);
/// let a = kb.index_addr(out, tid, 4);
/// kb.store_global(a, tid);
/// let kernel = kb.finish()?;
///
/// let m = Machine::new(Arch::DmtCgra, SystemConfig::default());
/// let report = m.run(&kernel, LaunchInput::new(
///     vec![Word::from_u32(0)],
///     MemImage::with_words(32),
/// ))?;
/// assert!(report.cycles() > 0);
/// # Ok::<(), dmt_common::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    arch: Arch,
    cfg: SystemConfig,
    energy: EnergyModel,
}

impl Machine {
    /// A machine of the given architecture with this configuration and the
    /// default energy constants.
    #[must_use]
    pub fn new(arch: Arch, cfg: SystemConfig) -> Machine {
        Machine {
            arch,
            cfg,
            energy: EnergyModel::default(),
        }
    }

    /// Replaces the energy model.
    #[must_use]
    pub fn with_energy_model(mut self, model: EnergyModel) -> Machine {
        self.energy = model;
        self
    }

    /// The architecture this machine models.
    #[must_use]
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs `kernel` to completion.
    ///
    /// # Errors
    ///
    /// * [`Error::Compile`] when the kernel needs capabilities the
    ///   architecture lacks (inter-thread communication on `FermiSm` or
    ///   `MtCgra`), or cannot be placed/routed;
    /// * [`Error::CapacityExceeded`] when the kernel graph outgrows the
    ///   grid;
    /// * [`Error::Runtime`] / [`Error::Deadlock`] for execution failures.
    pub fn run(&self, kernel: &Kernel, input: LaunchInput) -> Result<RunReport> {
        self.run_observed(kernel, input, &mut Obs::disabled())
    }

    /// [`Machine::run`] with an observation handle: the backend engine
    /// reports phase spans, firings, token traffic and counter samples
    /// into `obs` (see `dmt_obs`). A disabled handle (what
    /// [`Machine::run`] passes) costs one branch per report site, so
    /// observed and unobserved runs are result-identical.
    ///
    /// # Errors
    ///
    /// As [`Machine::run`].
    pub fn run_observed(
        &self,
        kernel: &Kernel,
        input: LaunchInput,
        obs: &mut Obs,
    ) -> Result<RunReport> {
        self.run_limited(kernel, input, obs, &RunLimits::unlimited())
    }

    /// [`Machine::run_observed`] under cooperative [`RunLimits`]: the
    /// backend engine checks the simulated-cycle deadline and the
    /// cancellation token every cycle. The compile step is not covered
    /// by the budget (it is not cycle-accurate work).
    ///
    /// # Errors
    ///
    /// As [`Machine::run`], plus [`Error::TimedOut`] /
    /// [`Error::Cancelled`] when a limit trips.
    pub fn run_limited(
        &self,
        kernel: &Kernel,
        input: LaunchInput,
        obs: &mut Obs,
        limits: &RunLimits<'_>,
    ) -> Result<RunReport> {
        let (memory, stats) = match self.arch {
            Arch::FermiSm => {
                let run = GpuMachine::new(self.cfg).run_limited(kernel, input, obs, limits)?;
                (run.memory, run.stats)
            }
            Arch::MtCgra => {
                if kernel.uses_inter_thread_comm() {
                    return Err(Error::Compile(format!(
                        "kernel {} uses direct inter-thread communication; the baseline \
                         MT-CGRA has no elevator/eLDST units — target Arch::DmtCgra",
                        kernel.name()
                    )));
                }
                self.run_fabric(kernel, input, obs, limits)?
            }
            Arch::DmtCgra => self.run_fabric(kernel, input, obs, limits)?,
        };
        let energy = self
            .energy
            .evaluate(self.arch.kind(), &stats, self.cfg.clocks.core_ghz);
        Ok(RunReport {
            arch: self.arch,
            kernel: kernel.name().to_owned(),
            memory,
            stats,
            energy,
        })
    }

    fn run_fabric(
        &self,
        kernel: &Kernel,
        input: LaunchInput,
        obs: &mut Obs,
        limits: &RunLimits<'_>,
    ) -> Result<(MemImage, RunStats)> {
        let program = dmt_compiler::compile(kernel, &self.cfg)?;
        let run = FabricMachine::new(self.cfg).run_limited(&program, input, obs, limits)?;
        Ok((run.memory, run.stats))
    }
}
