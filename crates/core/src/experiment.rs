//! Cross-architecture comparison helpers: the arithmetic behind Figs 11
//! and 12.

use crate::machine::RunReport;

/// Speedup of `test` over `base` (>1 means `test` is faster).
#[must_use]
pub fn speedup(base: &RunReport, test: &RunReport) -> f64 {
    base.cycles() as f64 / test.cycles() as f64
}

/// Energy efficiency of `test` relative to `base` (>1 means `test` uses
/// less energy for the whole task — the paper's Fig 12 metric).
#[must_use]
pub fn energy_efficiency(base: &RunReport, test: &RunReport) -> f64 {
    base.total_joules() / test.total_joules()
}

/// Geometric mean of a set of ratios (the paper reports geomeans).
///
/// Returns `None` for an empty set or non-positive entries.
#[must_use]
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[2.0, 0.0]), None);
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        let g3 = geomean(&[2.0, 2.0, 2.0]).unwrap();
        assert!((g3 - 2.0).abs() < 1e-12);
    }
}
