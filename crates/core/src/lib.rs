//! # dMT-CGRA: direct inter-thread communication on a multithreaded CGRA
//!
//! A full-system reproduction of Voitsechov & Etsion, *"Inter-Thread
//! Communication in Multithreaded, Reconfigurable Coarse-Grain Arrays"*
//! (MICRO 2018). This crate is the public entry point; the heavy lifting
//! lives in the workspace crates it re-exports:
//!
//! | Crate | Role |
//! |---|---|
//! | `dmt-dfg` | Kernel IR + the Table 1 programming model (`fromThreadOrConst`, `tagValue`, `fromThreadOrMem`) + reference interpreter |
//! | `dmt-compiler` | DFG → placed/routed fabric programs (cascading, spills, replication) |
//! | `dmt-fabric` | Cycle-level MT-CGRA/dMT-CGRA core (elevator + eLDST units) |
//! | `dmt-gpu` | Fermi-class SIMT SM baseline |
//! | `dmt-mem` | Shared L1/L2/DRAM + scratchpad + Live Value Cache timing |
//! | `dmt-energy` | GPUWattch-style event-count energy model |
//!
//! ## Quickstart
//!
//! Build a kernel with the paper's primitives and compare all three
//! machines:
//!
//! ```
//! use dmt_core::{Arch, Machine, experiment};
//! use dmt_common::{SystemConfig, MemImage, Word};
//! use dmt_common::geom::{Delta, Dim3};
//! use dmt_common::ids::Addr;
//! use dmt_dfg::{KernelBuilder, LaunchInput};
//!
//! // dMT-CGRA version of a neighbour sum: no shared memory, no barrier —
//! // thread t reads thread t-1's loaded value straight from the fabric.
//! let n = 64u32;
//! let mut kb = KernelBuilder::new("neighbour_sum", Dim3::linear(n));
//! let inp = kb.param("in");
//! let out = kb.param("out");
//! let tid = kb.thread_idx(0);
//! let addr = kb.index_addr(inp, tid, 4);
//! let x = kb.load_global(addr);
//! kb.tag_value(x);
//! let prev = kb.from_thread_or_const(x, Delta::new(-1), Word::from_i32(0), None);
//! let sum = kb.add_i(prev, x);
//! let oaddr = kb.index_addr(out, tid, 4);
//! kb.store_global(oaddr, sum);
//! let kernel = kb.finish()?;
//!
//! let mut mem = MemImage::with_words(2 * n as usize);
//! mem.write_i32_slice(Addr(0), &(0..n as i32).collect::<Vec<_>>());
//! let input = LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4 * n)], mem);
//!
//! let dmt = Machine::new(Arch::DmtCgra, SystemConfig::default());
//! let report = dmt.run(&kernel, input)?;
//! assert_eq!(report.memory.read_i32_slice(Addr(4 * n as u64), 3), vec![0, 1, 3]);
//! println!("{report}");
//! # Ok::<(), dmt_common::Error>(())
//! ```
//!
//! The nine paper benchmarks (Table 3) live in the `dmt-kernels` crate;
//! the figure/table harnesses in `dmt-bench`.

pub mod experiment;
pub mod machine;

pub use dmt_common::{self as common, Error, MemImage, Result, SystemConfig, Word};
pub use dmt_compiler as compiler;
pub use dmt_dfg::{self as dfg, Kernel, KernelBuilder, LaunchInput};
pub use dmt_energy::{self as energy, EnergyModel, EnergyParams, EnergyReport};
pub use dmt_fabric as fabric;
pub use dmt_gpu as gpu;
pub use dmt_mem as mem;
pub use machine::{Arch, Machine, RunReport};

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_common::geom::{Delta, Dim3};
    use dmt_common::ids::Addr;

    fn comm_kernel(n: u32) -> Kernel {
        let mut kb = KernelBuilder::new("comm", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(inp, tid, 4);
        let x = kb.load_global(a);
        let prev = kb.from_thread_or_const(x, Delta::new(-1), Word::from_i32(0), None);
        let sum = kb.add_i(prev, x);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, sum);
        kb.finish().unwrap()
    }

    #[test]
    fn arch_keys_round_trip() {
        for a in Arch::ALL {
            assert_eq!(a.key().parse::<Arch>().unwrap(), a);
            assert_eq!(a.to_string().parse::<Arch>().unwrap(), a);
        }
        assert!("voodoo".parse::<Arch>().is_err());
    }

    #[test]
    fn mt_cgra_rejects_comm_kernels() {
        let k = comm_kernel(32);
        let m = Machine::new(Arch::MtCgra, SystemConfig::default());
        let err = m
            .run(
                &k,
                LaunchInput::new(
                    vec![Word::ZERO, Word::from_u32(128)],
                    MemImage::with_words(64),
                ),
            )
            .unwrap_err();
        assert!(err.to_string().contains("MT-CGRA"), "{err}");
    }

    #[test]
    fn dmt_runs_comm_kernels_and_reports_energy() {
        let n = 32;
        let k = comm_kernel(n);
        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_i32_slice(Addr(0), &(0..n as i32).collect::<Vec<_>>());
        let m = Machine::new(Arch::DmtCgra, SystemConfig::default());
        let r = m
            .run(
                &k,
                LaunchInput::new(vec![Word::ZERO, Word::from_u32(4 * n)], mem),
            )
            .unwrap();
        assert!(r.total_joules() > 0.0);
        assert!(r.cycles() > 0);
        assert_eq!(r.arch, Arch::DmtCgra);
        assert!(r.to_string().contains("dMT-CGRA"));
    }

    #[test]
    fn all_archs_agree_on_a_plain_kernel() {
        let n = 64u32;
        let mut kb = KernelBuilder::new("map", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(inp, tid, 4);
        let x = kb.load_global(a);
        let y = kb.mul_i(x, x);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, y);
        let k = kb.finish().unwrap();

        let mk_input = || {
            let mut mem = MemImage::with_words(2 * n as usize);
            mem.write_i32_slice(Addr(0), &(0..n as i32).collect::<Vec<_>>());
            LaunchInput::new(vec![Word::ZERO, Word::from_u32(4 * n)], mem)
        };
        let runs: Vec<RunReport> = Arch::ALL
            .iter()
            .map(|&a| {
                Machine::new(a, SystemConfig::default())
                    .run(&k, mk_input())
                    .unwrap()
            })
            .collect();
        assert_eq!(runs[0].memory, runs[1].memory);
        assert_eq!(runs[1].memory, runs[2].memory);
    }
}
