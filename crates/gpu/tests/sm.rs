//! SM-model behaviour tests: the timing mechanisms behind the baseline.

use dmt_common::geom::Dim3;
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_common::SystemConfig;
use dmt_dfg::{Kernel, KernelBuilder, LaunchInput};
use dmt_gpu::GpuMachine;

fn machine() -> GpuMachine {
    GpuMachine::new(SystemConfig::default())
}

fn id_kernel(n: u32, blocks: u32) -> Kernel {
    let mut kb = KernelBuilder::new("ids", Dim3::linear(n));
    kb.set_grid_blocks(blocks);
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let bid = kb.block_idx();
    let seg = kb.const_i(n as i32);
    let base = kb.mul_i(bid, seg);
    let g = kb.add_i(base, tid);
    let oa = kb.index_addr(out, g, 4);
    kb.store_global(oa, g);
    kb.finish().unwrap()
}

#[test]
fn partial_warps_execute_correctly() {
    // 40 threads = one full warp + one 8-lane warp.
    let k = id_kernel(40, 1);
    let run = machine()
        .run(
            &k,
            LaunchInput::new(vec![Word::from_u32(0)], MemImage::with_words(40)),
        )
        .unwrap();
    assert_eq!(
        run.memory.read_i32_slice(Addr(0), 40),
        (0..40).collect::<Vec<_>>()
    );
    assert_eq!(
        run.stats.gpu_thread_instructions % 40,
        0,
        "40 lanes per instr"
    );
}

#[test]
fn concurrent_blocks_hide_memory_latency() {
    // A latency-bound kernel (cold load feeding the store): co-resident
    // blocks overlap each other's DRAM round trips; a one-block-at-a-time
    // SM serializes them.
    let n = 64u32;
    let blocks = 12u32;
    let mut kb = KernelBuilder::new("latency", Dim3::linear(n));
    kb.set_grid_blocks(blocks);
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let bid = kb.block_idx();
    let seg = kb.const_i(n as i32);
    let base = kb.mul_i(bid, seg);
    let g = kb.add_i(base, tid);
    let a = kb.index_addr(inp, g, 4);
    let x = kb.load_global(a);
    let oa = kb.index_addr(out, g, 4);
    kb.store_global(oa, x);
    let k = kb.finish().unwrap();

    let total = (n * blocks) as usize;
    let mk = || {
        let mut mem = MemImage::with_words(2 * total);
        mem.write_i32_slice(Addr(0), &(0..total as i32).collect::<Vec<_>>());
        LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4 * n * blocks)], mem)
    };
    let resident = machine().run(&k, mk()).unwrap();
    let mut serial_cfg = SystemConfig::default();
    serial_cfg.gpu.max_warps = 2; // room for exactly one 2-warp block
    let serial = GpuMachine::new(serial_cfg).run(&k, mk()).unwrap();
    assert_eq!(resident.memory, serial.memory);
    assert!(
        resident.stats.cycles * 2 < serial.stats.cycles,
        "co-resident {} vs serial {} — residency is broken",
        resident.stats.cycles,
        serial.stats.cycles
    );
}

#[test]
fn sfu_instructions_throttle_issue() {
    let build = |use_sfu: bool| {
        let mut kb = KernelBuilder::new("sfu", Dim3::linear(256));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let f = kb.i2f(tid);
        let mut v = f;
        for _ in 0..8 {
            v = if use_sfu {
                kb.sqrt_f(v)
            } else {
                kb.add_f(v, f)
            };
        }
        let i = kb.f2i(v);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, i);
        kb.finish().unwrap()
    };
    let run = |k: &Kernel| {
        machine()
            .run(
                k,
                LaunchInput::new(vec![Word::from_u32(0)], MemImage::with_words(256)),
            )
            .unwrap()
            .stats
            .cycles
    };
    let with_sfu = run(&build(true));
    let without = run(&build(false));
    assert!(
        with_sfu > without,
        "sqrt chain ({with_sfu}) must be slower than add chain ({without})"
    );
}

#[test]
fn barrier_waits_for_global_loads_to_settle() {
    // Phase 0 loads from DRAM-cold memory and stages to shared; the
    // barrier must not release before the data arrived (checked
    // functionally: phase 1 reads the staged values).
    let n = 64u32;
    let mut kb = KernelBuilder::new("settle", Dim3::linear(n));
    kb.set_shared_words(n);
    let inp = kb.param("in");
    let tid = kb.thread_idx(0);
    let ga = kb.index_addr(inp, tid, 4);
    let v = kb.load_global(ga);
    let z = kb.const_i(0);
    let sa = kb.index_addr(z, tid, 4);
    kb.store_shared(sa, v);
    kb.barrier();
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let z = kb.const_i(0);
    // Read the *other end* of shared memory so warp-local forwarding
    // can't mask a broken barrier.
    let last = kb.const_i(n as i32 - 1);
    let flipped = kb.sub_i(last, tid);
    let sa = kb.index_addr(z, flipped, 4);
    let x = kb.load_shared(sa);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, x);
    let kernel = kb.finish().unwrap();

    let mut mem = MemImage::with_words(2 * n as usize);
    mem.write_i32_slice(Addr(0), &(0..n as i32).map(|i| i * 11).collect::<Vec<_>>());
    let run = machine()
        .run(
            &kernel,
            LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4 * n)], mem),
        )
        .unwrap();
    let got = run.memory.read_i32_slice(Addr(4 * n as u64), n as usize);
    for (t, &v) in got.iter().enumerate() {
        assert_eq!(v, ((n as usize - 1 - t) as i32) * 11);
    }
    assert!(run.stats.barriers > 0);
}

#[test]
fn register_traffic_scales_with_operands() {
    let k = id_kernel(256, 1);
    let run = machine()
        .run(
            &k,
            LaunchInput::new(vec![Word::from_u32(0)], MemImage::with_words(256)),
        )
        .unwrap();
    // Every executed thread-instruction writes one register.
    assert_eq!(run.stats.register_writes, run.stats.gpu_thread_instructions);
    assert!(run.stats.register_reads > run.stats.register_writes);
}
