//! Kernel dataflow graphs → linear SIMT instruction streams.
//!
//! The von Neumann baseline executes the *same* kernels as the CGRA
//! backends (their shared-memory variants), lowered to an in-order
//! instruction sequence: one instruction per non-source dataflow node, in
//! topological order, with virtual registers identified with node ids.
//! Barrier-delimited phases are concatenated with an explicit `Barrier`
//! instruction — CUDA `__syncthreads()`.
//!
//! Kernels that use the dMT-CGRA communication primitives cannot be
//! lowered: a von Neumann GPU has no elevator nodes — that is the paper's
//! point — so lowering them is a compile error.

use dmt_common::ids::NodeId;
use dmt_common::{Error, Result};
use dmt_dfg::node::{MemSpace, NodeKind};
use dmt_dfg::Kernel;

/// Functional-unit class an instruction issues to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueClass {
    /// Integer pipeline.
    Alu,
    /// Floating-point pipeline.
    Fpu,
    /// Special-function unit (div/sqrt/exp) — low throughput.
    Sfu,
    /// Global-memory load.
    LoadGlobal,
    /// Shared-memory load.
    LoadShared,
    /// Global-memory store.
    StoreGlobal,
    /// Shared-memory store.
    StoreShared,
}

/// One lowered warp instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuInstr {
    /// Execute dataflow node `node` (its operands are the node's inputs,
    /// already materialized in registers).
    Op {
        /// The dataflow node this instruction computes.
        node: NodeId,
        /// Pipeline it issues to.
        class: IssueClass,
    },
    /// Block-wide barrier (`__syncthreads()`).
    Barrier,
}

/// A lowered kernel: one instruction stream per phase, executed back to
/// back with barriers in between (and an implicit barrier at each phase
/// boundary, which is exactly what the source kernels encode).
#[derive(Debug, Clone)]
pub struct GpuProgram {
    /// Instruction streams, one per phase.
    pub phases: Vec<Vec<GpuInstr>>,
}

impl GpuProgram {
    /// Total dynamic warp-instructions per warp for one full kernel
    /// execution (including inter-phase barriers).
    #[must_use]
    pub fn instructions_per_warp(&self) -> u64 {
        let ops: usize = self.phases.iter().map(Vec::len).sum();
        let barriers = self.phases.len().saturating_sub(1);
        (ops + barriers) as u64
    }
}

/// Lowers a kernel to SIMT instructions.
///
/// # Errors
///
/// Returns [`Error::Compile`] when the kernel uses inter-thread
/// communication primitives (elevator / eLDST) — those require the
/// dMT-CGRA fabric.
pub fn lower(kernel: &Kernel) -> Result<GpuProgram> {
    let mut phases = Vec::with_capacity(kernel.phases().len());
    for graph in kernel.phases() {
        let mut instrs = Vec::new();
        for id in graph.topo_order()? {
            let class = match graph.kind(id) {
                NodeKind::Elevator { .. } | NodeKind::ELoad { .. } => {
                    return Err(Error::Compile(format!(
                        "kernel {}: node {id} uses direct inter-thread communication, which \
                         the von Neumann GPU baseline does not support",
                        kernel.name()
                    )));
                }
                k if k.is_source() => continue, // registers/immediates; no instruction
                // Ordering joins and fan-out splits are CGRA structural
                // artifacts; on a register machine they are register
                // aliases and cost nothing.
                NodeKind::Join | NodeKind::Split => continue,
                NodeKind::Alu(_) => IssueClass::Alu,
                NodeKind::Unary(op) => match op.unit_class() {
                    dmt_common::config::UnitClass::Fpu => IssueClass::Fpu,
                    _ => IssueClass::Alu,
                },
                NodeKind::Fpu(_) => IssueClass::Fpu,
                NodeKind::Special(_) => IssueClass::Sfu,
                NodeKind::Ctrl(_) | NodeKind::Select => IssueClass::Alu,
                NodeKind::Load(MemSpace::Global) => IssueClass::LoadGlobal,
                NodeKind::Load(MemSpace::Shared) => IssueClass::LoadShared,
                NodeKind::Store(MemSpace::Global) => IssueClass::StoreGlobal,
                NodeKind::Store(MemSpace::Shared) => IssueClass::StoreShared,
                NodeKind::Const(_)
                | NodeKind::ThreadIdx(_)
                | NodeKind::BlockIdx
                | NodeKind::Param(_) => unreachable!("sources skipped above"),
            };
            instrs.push(GpuInstr::Op { node: id, class });
        }
        phases.push(instrs);
    }
    Ok(GpuProgram { phases })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_common::geom::{Delta, Dim3};
    use dmt_common::value::Word;
    use dmt_dfg::KernelBuilder;

    #[test]
    fn lowering_counts_real_instructions_only() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(32));
        let p = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(p, tid, 4); // const + mul + add → 2 instrs
        kb.store_global(a, tid); // 1 instr
        let k = kb.finish().unwrap();
        let prog = lower(&k).unwrap();
        assert_eq!(prog.phases.len(), 1);
        assert_eq!(prog.phases[0].len(), 3, "mul, add, store");
        assert_eq!(prog.instructions_per_warp(), 3);
    }

    #[test]
    fn barrier_appears_between_phases() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(8));
        kb.set_shared_words(8);
        let tid = kb.thread_idx(0);
        let z = kb.const_i(0);
        let sa = kb.index_addr(z, tid, 4);
        kb.store_shared(sa, tid);
        kb.barrier();
        let tid2 = kb.thread_idx(0);
        let out = kb.param("out");
        let z2 = kb.const_i(0);
        let sa2 = kb.index_addr(z2, tid2, 4);
        let v = kb.load_shared(sa2);
        let oa = kb.index_addr(out, tid2, 4);
        kb.store_global(oa, v);
        let k = kb.finish().unwrap();
        let prog = lower(&k).unwrap();
        assert_eq!(prog.phases.len(), 2);
        // barriers are implicit between phases in instructions_per_warp
        assert_eq!(
            prog.instructions_per_warp(),
            (prog.phases[0].len() + prog.phases[1].len() + 1) as u64
        );
    }

    #[test]
    fn inter_thread_comm_rejected() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(8));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let v = kb.from_thread_or_const(tid, Delta::new(-1), Word::ZERO, None);
        let a = kb.index_addr(out, tid, 4);
        kb.store_global(a, v);
        let k = kb.finish().unwrap();
        let err = lower(&k).unwrap_err();
        assert!(err.to_string().contains("inter-thread"), "{err}");
    }

    #[test]
    fn special_ops_issue_to_sfu() {
        let mut kb = KernelBuilder::new("t", Dim3::linear(8));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let f = kb.i2f(tid);
        let s = kb.sqrt_f(f);
        let v = kb.f2i(s);
        let a = kb.index_addr(out, tid, 4);
        kb.store_global(a, v);
        let k = kb.finish().unwrap();
        let prog = lower(&k).unwrap();
        let sfu = prog.phases[0]
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    GpuInstr::Op {
                        class: IssueClass::Sfu,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(sfu, 1);
    }
}
