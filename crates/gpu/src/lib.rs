//! The von Neumann GPGPU baseline (Fermi-class SM).
//!
//! The paper's headline numbers are relative to an NVIDIA Fermi SM
//! simulated with GPGPU-Sim (§5.1). This crate is the corresponding
//! substitute: an in-order, scoreboarded, 32-wide SIMT core running the
//! *same kernels* (their shared-memory variants) against the *same memory
//! hierarchy* (`dmt-mem`), so cross-architecture comparisons hold
//! everything except the execution model constant.
//!
//! See [`mod@lower`] for the DFG → SIMT instruction lowering and [`machine`]
//! for the timing model. Like the fabric, the GPU is functionally
//! bit-identical to the `dmt-dfg` reference interpreter.
//!
//! # Examples
//!
//! ```
//! use dmt_gpu::GpuMachine;
//! use dmt_dfg::{KernelBuilder, LaunchInput};
//! use dmt_common::{SystemConfig, MemImage, Word};
//! use dmt_common::geom::Dim3;
//! use dmt_common::ids::Addr;
//!
//! let mut kb = KernelBuilder::new("double", Dim3::linear(64));
//! let inp = kb.param("in");
//! let out = kb.param("out");
//! let tid = kb.thread_idx(0);
//! let a = kb.index_addr(inp, tid, 4);
//! let x = kb.load_global(a);
//! let y = kb.add_i(x, x);
//! let oa = kb.index_addr(out, tid, 4);
//! kb.store_global(oa, y);
//! let kernel = kb.finish()?;
//!
//! let mut mem = MemImage::with_words(128);
//! mem.write_i32_slice(Addr(0), &(0..64).collect::<Vec<_>>());
//! let run = GpuMachine::new(SystemConfig::default()).run(
//!     &kernel,
//!     LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(256)], mem),
//! )?;
//! assert_eq!(run.memory.read_i32_slice(Addr(256), 3), vec![0, 2, 4]);
//! # Ok::<(), dmt_common::Error>(())
//! ```

pub mod lower;
pub mod machine;

pub use lower::{lower, GpuInstr, GpuProgram, IssueClass};
pub use machine::{GpuMachine, GpuRunResult};
